//! Workspace-level integration tests: the facade crate driving the whole
//! stack, checked against brute-force oracles, under churn, and across
//! administrative boundaries.

use rbay::core::Federation;
use rbay::query::{parse_query, AttrValue};
use rbay::simnet::{NodeAddr, SimDuration, SiteId, Topology};
use rbay::workloads::{
    populate_ec2_federation, QueryGen, ScenarioConfig, EC2_INSTANCE_TYPES, WORKLOAD_PASSWORD,
};

fn maintain(fed: &mut Federation, rounds: u32) {
    fed.run_maintenance(rounds, SimDuration::from_millis(200));
    fed.settle();
}

/// Query answers agree with a brute-force scan over every node's
/// attribute map.
#[test]
fn query_results_match_brute_force_oracle() {
    let mut fed = Federation::new(Topology::aws_ec2_8_sites(10), 21);
    let cfg = ScenarioConfig {
        extra_attrs_per_node: 4,
        password_policy: false,
        ..ScenarioConfig::default()
    };
    let assigned = populate_ec2_federation(&mut fed, 22, &cfg);
    maintain(&mut fed, 5);

    for (qi, itype) in ["t2.micro", "c3.8xlarge", "m3.large"].iter().enumerate() {
        let text =
            format!("SELECT 50 FROM * WHERE instance = \"{itype}\" AND CPU_utilization < 60");
        let parsed = parse_query(&text).unwrap();
        // Oracle: scan the ground truth.
        let oracle: Vec<NodeAddr> = (0..fed.sim().topology().node_count() as u32)
            .map(NodeAddr)
            .filter(|n| {
                let host = &fed.node(*n).host;
                assigned[n.index()] == *itype && parsed.matches_all(|a| host.attrs.get(a))
            })
            .collect();
        let origin = NodeAddr(7 + qi as u32);
        let id = fed.issue_query(origin, &text, None).unwrap();
        fed.settle();
        let rec = fed.query_record(origin, id).unwrap();
        let mut got: Vec<NodeAddr> = rec.result.iter().map(|c| c.addr).collect();
        got.sort();
        let mut want = oracle.clone();
        want.sort();
        // k=50 exceeds any tree here, so the query must find exactly the
        // oracle set.
        assert_eq!(got, want, "{itype}");
        // Wait out reservations before the next query so candidates are
        // free again.
        let horizon = fed.sim().now() + SimDuration::from_secs(8);
        fed.run_until(horizon);
    }
}

/// Node failure mid-operation: queries still terminate, and repaired
/// trees keep answering afterwards.
#[test]
fn churn_during_queries_is_survivable() {
    let mut fed = Federation::new(Topology::single_site(80, 0.5), 23);
    let holders: Vec<NodeAddr> = (10..20).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 4);

    // Fail one holder plus one random non-holder, notify the overlay.
    let dead = [NodeAddr(15), NodeAddr(55)];
    for &d in &dead {
        fed.sim_mut().fail_node(d);
    }
    for i in 0..80u32 {
        let n = NodeAddr(i);
        if dead.contains(&n) {
            continue;
        }
        let now = fed.sim().now();
        fed.sim_mut().schedule_call(now, n, move |a, ctx| {
            let mut net = rbay::pastry::SimNet::new(ctx);
            for d in dead {
                a.pastry.handle_failure(&mut net, d);
            }
            let mut net = rbay::pastry::SimNet::new(ctx);
            for d in dead {
                a.scribe
                    .handle_failure(&mut a.pastry, &mut net, &mut a.host, d);
            }
        });
    }
    fed.settle();
    maintain(&mut fed, 4);

    // 9 live holders remain; ask for all of them.
    let id = fed
        .issue_query(NodeAddr(70), "SELECT 9 FROM * WHERE GPU = true", None)
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(70), id).unwrap();
    assert!(
        rec.completed_at.is_some(),
        "query must terminate under churn"
    );
    assert!(
        rec.result.len() >= 8,
        "most live holders reachable after repair: {:?}",
        rec.result.len()
    );
    assert!(rec.result.iter().all(|c| c.addr != NodeAddr(15)));
}

/// Site-scoped queries never touch nodes outside the requested sites, and
/// per-site trees have per-site roots (administrative isolation).
#[test]
fn administrative_isolation_holds() {
    let mut fed = Federation::new(Topology::aws_ec2_8_sites(12), 25);
    for s in 0..8u16 {
        for off in 2..6usize {
            let n = fed.sim().topology().nodes_of_site(SiteId(s))[off];
            fed.post_resource(n, "SSD", AttrValue::Bool(true));
        }
    }
    fed.settle();
    maintain(&mut fed, 4);

    let id = fed
        .issue_query(
            NodeAddr(1),
            r#"SELECT 4 FROM "Ireland" WHERE SSD = true"#,
            None,
        )
        .unwrap();
    fed.settle();
    let rec = fed.query_record(NodeAddr(1), id).unwrap();
    assert!(rec.satisfied);
    assert!(
        rec.result.iter().all(|c| c.site == SiteId(3)),
        "all results from Ireland: {:?}",
        rec.result
    );

    // The SSD trees are distinct per site: each site's scoped topic has
    // its own root inside that site.
    for s in 0..8u16 {
        let topic = fed.node(NodeAddr(0)).host.tree_topic("SSD=true", SiteId(s));
        let roots: Vec<NodeAddr> = (0..fed.sim().topology().node_count() as u32)
            .map(NodeAddr)
            .filter(|n| {
                fed.node(*n)
                    .scribe
                    .topic(topic)
                    .is_some_and(|st| st.is_root)
            })
            .collect();
        assert_eq!(roots.len(), 1, "site {s}");
        assert_eq!(fed.sim().topology().site_of(roots[0]), SiteId(s));
    }
}

/// The full EC2 workload on all eight sites answers the paper's composite
/// query mix with the password policy active.
#[test]
fn ec2_workload_composite_queries_succeed() {
    let mut fed = Federation::new(Topology::aws_ec2_8_sites(16), 27);
    let cfg = ScenarioConfig {
        extra_attrs_per_node: 5,
        ..ScenarioConfig::default()
    };
    populate_ec2_federation(&mut fed, 28, &cfg);
    maintain(&mut fed, 5);

    let mut qg = QueryGen::new(29, rbay::workloads::aws8_site_names(), 5);
    let mut satisfied = 0;
    let total = 12;
    for i in 0..total {
        let home = SiteId((i % 8) as u16);
        let origin = fed.sim().topology().nodes_of_site(home)[4];
        let text = qg.composite(home, 1 + (i % 8), 1);
        let id = fed
            .issue_query(origin, &text, Some(WORKLOAD_PASSWORD))
            .unwrap();
        fed.settle();
        let rec = fed.query_record(origin, id).unwrap();
        assert!(rec.completed_at.is_some(), "{text}");
        if rec.satisfied {
            satisfied += 1;
        }
        let horizon = fed.sim().now() + SimDuration::from_secs(6);
        fed.run_until(horizon);
    }
    // With 128 nodes over 23 types, a Gaussian-center type exists in most
    // site subsets; the overwhelming majority of queries must succeed.
    assert!(
        satisfied >= total * 3 / 4,
        "only {satisfied}/{total} composite queries satisfied"
    );
}

/// Every instance tree's root aggregate converges to the true tree size.
#[test]
fn aggregation_converges_for_the_instance_trees() {
    let mut fed = Federation::new(Topology::single_site(120, 0.5), 31);
    let cfg = ScenarioConfig {
        extra_attrs_per_node: 0,
        password_policy: false,
        ..ScenarioConfig::default()
    };
    let assigned = populate_ec2_federation(&mut fed, 32, &cfg);
    maintain(&mut fed, 8);

    for itype in EC2_INSTANCE_TYPES {
        let truth = assigned.iter().filter(|t| **t == itype).count() as u64;
        if truth == 0 {
            continue;
        }
        let topic = fed
            .node(NodeAddr(0))
            .host
            .tree_topic(&format!("instance={itype}"), SiteId(0));
        let root_agg = (0..120u32)
            .map(NodeAddr)
            .find_map(|n| {
                let node = fed.node(n);
                let st = node.scribe.topic(topic)?;
                if st.is_root {
                    node.scribe.root_aggregate(topic)
                } else {
                    None
                }
            })
            .unwrap_or_else(|| panic!("no root aggregate for {itype}"));
        assert_eq!(
            root_agg.as_count(),
            Some(truth),
            "{itype} tree size at root"
        );
    }
}

/// The paper's full "global view" aggregate (§II.B.3): the tree root
/// learns not just the tree size but the average/min/max of a configured
/// attribute, and an admin anywhere can probe it.
#[test]
fn tree_stats_probe_returns_size_and_utilization_stats() {
    use rbay::core::RbayConfig;
    let cfg = RbayConfig {
        aggregate_attr: Some("CPU_utilization".into()),
        ..RbayConfig::default()
    };
    let mut fed = rbay::core::Federation::with_config(Topology::single_site(50, 0.5), 51, cfg);
    let utils = [10.0, 20.0, 30.0, 40.0];
    for (i, u) in utils.iter().enumerate() {
        let n = NodeAddr(5 + i as u32);
        fed.update_attr(n, "CPU_utilization", AttrValue::Num(*u));
        fed.post_resource(n, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 6);

    fed.probe_tree_stats(NodeAddr(40), "GPU=true", SiteId(0));
    fed.settle();
    let stats = &fed.node(NodeAddr(40)).host.tree_stats;
    let (agg, exists, _) = stats.get("GPU=true").expect("probe answered");
    assert!(*exists);
    let agg = agg.as_ref().expect("aggregate present");
    assert_eq!(agg.as_count(), Some(4), "tree size");
    let mean = agg.component(1).unwrap().as_f64();
    assert!((mean - 25.0).abs() < 1e-9, "mean utilization, got {mean}");
    assert_eq!(agg.component(2).unwrap().as_f64(), 10.0, "min");
    assert_eq!(agg.component(3).unwrap().as_f64(), 40.0, "max");
}

/// Attribute updates are reflected in the aggregate after the next
/// maintenance rounds (each member refreshes its contribution).
#[test]
fn tree_stats_track_attribute_updates() {
    use rbay::core::RbayConfig;
    let cfg = RbayConfig {
        aggregate_attr: Some("CPU_utilization".into()),
        ..RbayConfig::default()
    };
    let mut fed = rbay::core::Federation::with_config(Topology::single_site(40, 0.5), 53, cfg);
    for i in 0..4u32 {
        fed.update_attr(NodeAddr(i), "CPU_utilization", AttrValue::Num(50.0));
        fed.post_resource(NodeAddr(i), "SSD", AttrValue::Bool(true));
    }
    fed.settle();
    maintain(&mut fed, 6);
    fed.probe_tree_stats(NodeAddr(30), "SSD=true", SiteId(0));
    fed.settle();
    let first = fed.node(NodeAddr(30)).host.tree_stats["SSD=true"]
        .0
        .as_ref()
        .unwrap()
        .component(1)
        .unwrap()
        .as_f64();
    assert!((first - 50.0).abs() < 1e-9);

    // Everyone's utilization drops to 10.
    for i in 0..4u32 {
        fed.update_attr(NodeAddr(i), "CPU_utilization", AttrValue::Num(10.0));
    }
    fed.settle();
    maintain(&mut fed, 6);
    fed.probe_tree_stats(NodeAddr(30), "SSD=true", SiteId(0));
    fed.settle();
    let second = fed.node(NodeAddr(30)).host.tree_stats["SSD=true"]
        .0
        .as_ref()
        .unwrap()
        .component(1)
        .unwrap()
        .as_f64();
    assert!((second - 10.0).abs() < 1e-9, "got {second}");
}
