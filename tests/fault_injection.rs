//! Fault-injection tests: the whole stack under message loss. Joins,
//! aggregation, and queries recover through maintenance retries and
//! query-attempt retries — no protocol ever hangs on a lost packet.

use rbay::core::{Federation, RbayConfig};
use rbay::query::AttrValue;
use rbay::simnet::{NodeAddr, SimDuration, Topology};

fn lossy_federation(nodes: usize, loss: f64, seed: u64) -> Federation {
    let mut topo = Topology::single_site(nodes, 0.5);
    topo.set_loss_prob(loss);
    let cfg = RbayConfig {
        commit_results: false,
        query_timeout: SimDuration::from_millis(1_500),
        ..RbayConfig::default()
    };
    Federation::with_config(topo, seed, cfg)
}

#[test]
fn tree_joins_survive_message_loss() {
    // 10% of all messages vanish; maintenance re-issues lost joins.
    let mut fed = lossy_federation(60, 0.10, 61);
    let holders: Vec<NodeAddr> = (5..25).map(NodeAddr).collect();
    for &h in &holders {
        fed.post_resource(h, "GPU", AttrValue::Bool(true));
    }
    fed.settle();
    // Enough maintenance rounds for lost joins to be retried.
    fed.run_maintenance(10, SimDuration::from_millis(300));
    fed.settle();

    let topic = fed
        .node(NodeAddr(0))
        .host
        .tree_topic("GPU=true", rbay::simnet::SiteId(0));
    let attached = holders
        .iter()
        .filter(|h| {
            fed.node(**h)
                .scribe
                .topic(topic)
                .is_some_and(|st| st.is_root || st.parent.is_some())
        })
        .count();
    assert_eq!(
        attached,
        holders.len(),
        "every subscriber eventually attached"
    );
}

#[test]
fn queries_complete_under_loss() {
    let mut fed = lossy_federation(50, 0.05, 63);
    for n in [7u32, 11, 13] {
        fed.post_resource(NodeAddr(n), "SSD", AttrValue::Bool(true));
    }
    fed.settle();
    fed.run_maintenance(8, SimDuration::from_millis(300));
    fed.settle();

    let mut satisfied = 0;
    let attempts = 6;
    for i in 0..attempts {
        let origin = NodeAddr(30 + i);
        let id = fed
            .issue_query(origin, "SELECT 1 FROM * WHERE SSD = true", None)
            .unwrap();
        fed.settle();
        let rec = fed.query_record(origin, id).unwrap();
        assert!(rec.completed_at.is_some(), "query {i} must terminate");
        if rec.satisfied {
            satisfied += 1;
        }
        let horizon = fed.sim().now() + SimDuration::from_secs(6);
        fed.run_until(horizon);
    }
    // With 5% loss and per-attempt retries, the vast majority succeed.
    assert!(
        satisfied >= attempts - 1,
        "only {satisfied}/{attempts} queries satisfied under loss"
    );
    // Drops really happened (the fault injection is active).
    assert!(fed.sim().stats().dropped() > 0);
}

#[test]
fn zero_loss_is_the_default() {
    let topo = Topology::single_site(4, 0.5);
    assert_eq!(topo.loss_prob(), 0.0);
}
