//! Interactive demo: a populated eight-site federation you can query from
//! a REPL.
//!
//! ```sh
//! cargo run --release --bin rbay_demo
//! ```
//!
//! Commands:
//!
//! ```text
//! SELECT 2 FROM * WHERE instance = "c3.8xlarge";   -- any query (Fig. 6 syntax)
//! :password 3053482032                             -- set the onGet password
//! :stats instance=c3.8xlarge Virginia              -- probe a tree's global view
//! :help  :quit
//! ```

use rbay::core::{Federation, RbayConfig};
use rbay::simnet::{NodeAddr, SimDuration, SiteId, Topology};
use rbay::workloads::{populate_ec2_federation, ScenarioConfig, WORKLOAD_PASSWORD};
use std::io::{BufRead, Write};

fn main() {
    println!("Bringing up an 8-site federation (40 nodes/site, EC2 workload)…");
    let cfg = RbayConfig {
        commit_results: false,
        aggregate_attr: Some("CPU_utilization".into()),
        ..RbayConfig::default()
    };
    let mut fed = Federation::with_config(Topology::aws_ec2_8_sites(40), 42, cfg);
    populate_ec2_federation(
        &mut fed,
        42,
        &ScenarioConfig {
            extra_attrs_per_node: 5,
            ..ScenarioConfig::default()
        },
    );
    fed.run_maintenance(5, SimDuration::from_millis(250));
    fed.settle();
    let origin = NodeAddr(3); // a Virginia customer
    let mut password = Some(WORKLOAD_PASSWORD.to_owned());
    println!(
        "ready. querying as {origin} (Virginia). password = {:?}. try:",
        password.as_deref().unwrap_or("<none>")
    );
    println!("  SELECT 2 FROM * WHERE instance = \"c3.8xlarge\" GROUPBY CPU_utilization ASC;");
    println!("  :stats instance=c3.8xlarge Virginia    :help    :quit");

    let stdin = std::io::stdin();
    loop {
        print!("rbay> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":help" {
            println!(
                "  SELECT k FROM *|\"Site\",… WHERE attr op value [AND …] [GROUPBY attr ASC|DESC];"
            );
            println!("  :password <pw>    set the password presented to onGet handlers");
            println!("  :stats <tree> <Site>   probe a tree root's size/mean/min/max");
            println!("  :quit");
            continue;
        }
        if let Some(pw) = line.strip_prefix(":password ") {
            password = Some(pw.trim().to_owned());
            println!("password set");
            continue;
        }
        if let Some(rest) = line.strip_prefix(":stats ") {
            let mut parts = rest.split_whitespace();
            let (Some(tree), Some(site_name)) = (parts.next(), parts.next()) else {
                println!("usage: :stats <tree> <Site>");
                continue;
            };
            let Some(site) = (0..fed.sim().topology().site_count() as u16)
                .map(SiteId)
                .find(|s| {
                    fed.sim()
                        .topology()
                        .site(*s)
                        .name
                        .eq_ignore_ascii_case(site_name)
                })
            else {
                println!("unknown site `{site_name}`");
                continue;
            };
            fed.probe_tree_stats(origin, tree, site);
            fed.settle();
            match fed.node(origin).host.tree_stats.get(tree) {
                Some((Some(agg), true, _)) => {
                    println!("  size = {}", agg.as_count().unwrap_or(0));
                    if let Some(mean) = agg.component(1) {
                        println!("  mean CPU_utilization = {:.1}", mean.as_f64());
                    }
                    if let (Some(min), Some(max)) = (agg.component(2), agg.component(3)) {
                        println!("  min/max = {:.1}/{:.1}", min.as_f64(), max.as_f64());
                    }
                }
                Some((_, false, _)) => println!("  tree does not exist in {site_name}"),
                _ => println!("  no answer (root unreachable?)"),
            }
            continue;
        }

        // Anything else is a query.
        match fed.issue_query(origin, line, password.as_deref()) {
            Err(e) => println!("parse error: {e}"),
            Ok(id) => {
                fed.settle();
                let rec = fed.query_record(origin, id).expect("record exists");
                let ms = rec
                    .completed_at
                    .map(|d| d.saturating_since(rec.issued_at).as_millis_f64())
                    .unwrap_or(f64::NAN);
                println!(
                    "  satisfied={} latency={ms:.1}ms attempts={}",
                    rec.satisfied,
                    rec.attempts + 1
                );
                for c in &rec.result {
                    let site = fed.sim().topology().site(c.site).name.clone();
                    println!(
                        "   -> node {} at {} ({site}) sort_key={:?}",
                        c.id, c.addr, c.sort_key
                    );
                }
                // Let reservations lapse so the demo can re-query freely.
                let horizon = fed.sim().now() + SimDuration::from_secs(6);
                fed.run_until(horizon);
            }
        }
    }
    println!("bye");
}
