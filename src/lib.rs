//! # rbay — facade crate for the RBAY reproduction
//!
//! Re-exports the public API of every crate in the workspace. See the
//! individual crates for details; the README has a quickstart.

#![forbid(unsafe_code)]

pub use aascript;
pub use pastry;
pub use rbay_baselines as baselines;
pub use rbay_core as core;
pub use rbay_query as query;
pub use rbay_workloads as workloads;
pub use scribe;
pub use simnet;
