//! Vendored, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the proptest 1.x API its tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_recursive`,
//! [`Just`], ranges and regex-like string patterns as strategies, tuples,
//! [`collection::vec`] / [`collection::btree_set`], [`option::of`],
//! `prop_oneof!`, `any::<T>()`, and the [`proptest!`] test macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream: cases are generated from a seed derived from
//! the test name (fully deterministic run-to-run), and failing cases are
//! reported but **not shrunk**. That trade-off keeps the vendored crate
//! small while preserving what the workspace relies on: broad randomized
//! coverage with reproducible failures.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Test RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all value generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for a named test: the seed is a hash of the name, so
    /// every run of the same test explores the same cases.
    pub fn seed_for(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Errors & config
// ---------------------------------------------------------------------------

/// Why a generated test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected (e.g. by `prop_assume!`); another is generated.
    Reject(String),
    /// The property failed for this case.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one property: generates and checks cases until `config.cases`
/// pass, a case fails (panics with the message), or too many are rejected.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_for(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(16) + 100,
                    "proptest `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {passed} passing case(s): {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (regenerating otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds recursive structures: `self` generates leaves and `branch`
    /// wraps an inner strategy into one more level, up to `depth` levels.
    /// The size hints of upstream proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = branch(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 tries: {}", self.reason)
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given (non-empty) alternatives.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        Union(alts)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].gen_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, strings, tuples, any
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// One parsed element of a string pattern: a character class repeated
/// between `min` and `max` times.
struct PatternElem {
    /// Inclusive char ranges; a literal is a single-char range.
    ranges: Vec<(char, char)>,
    min: u32,
    max: u32,
}

/// Parses the regex subset the workspace's patterns use: literals,
/// `[...]` classes with `a-z` ranges (a `-` first or last is literal), and
/// `{n}` / `{m,n}` repetition.
fn parse_pattern(pat: &str) -> Vec<PatternElem> {
    let chars: Vec<char> = pat.chars().collect();
    let mut elems = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = if chars[i] == '[' {
            let mut ranges = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let c = chars[i];
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    ranges.push((c, chars[i + 2]));
                    i += 3;
                } else {
                    ranges.push((c, c));
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern `{pat}`");
            i += 1; // past ']'
            ranges
        } else {
            let c = chars[i];
            i += 1;
            vec![(c, c)]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        elems.push(PatternElem { ranges, min, max });
    }
    elems
}

fn gen_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(a, b)| (b as u64) - (a as u64) + 1)
        .sum();
    let mut k = rng.below(total);
    for &(a, b) in ranges {
        let span = (b as u64) - (a as u64) + 1;
        if k < span {
            return char::from_u32(a as u32 + k as u32).expect("valid char");
        }
        k -= span;
    }
    unreachable!("class sampling out of bounds")
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for elem in parse_pattern(self) {
            let span = (elem.max - elem.min + 1) as u64;
            let n = elem.min + rng.below(span) as u32;
            for _ in 0..n {
                out.push(gen_from_class(&elem.ranges, rng));
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broadly ranged values (upstream `any::<f64>()` includes
        // specials; the workspace never relies on them).
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collection & option strategies
// ---------------------------------------------------------------------------

/// Strategies for collections (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Generates a `Vec` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates a `BTreeSet` whose size is drawn from `size` (best-effort:
    /// if the element domain is too small the set may come out smaller).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < target && tries < target * 10 + 16 {
                out.insert(self.element.gen_value(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Strategies for `Option` (mirrors `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `Some` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_proptest`] over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::gen_value(&($strat), __proptest_rng);)+
                let mut __proptest_case =
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                __proptest_case()
            });
        }
    )*};
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = crate::TestRng::seed_for("pattern");
        for _ in 0..200 {
            let s = crate::Strategy::gen_value(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "`{s}`");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = crate::Strategy::gen_value(&"[A-Za-z_][A-Za-z0-9_]{0,8}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 9);
            let first = t.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');

            let u = crate::Strategy::gen_value(&"[A-Za-z0-9 ._-]{0,16}", &mut rng);
            assert!(u.len() <= 16);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ._-".contains(c)));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let strat = crate::collection::vec(0i32..100, 0..10);
        let mut a = crate::TestRng::seed_for("x");
        let mut b = crate::TestRng::seed_for("x");
        for _ in 0..50 {
            assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -50i32..50, y in 0usize..9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(y < 9);
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn recursive_terminates(depth_probe in recursive_depth()) {
            prop_assert!(depth_probe <= 5);
        }
    }

    fn recursive_depth() -> impl Strategy<Value = u32> {
        Just(0u32).prop_recursive(5, 16, 2, |inner| inner.prop_map(|d| d + 1))
    }
}
