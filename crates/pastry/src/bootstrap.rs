//! Omniscient overlay bootstrap.
//!
//! The RBAY evaluation runs over a *stabilized* overlay of up to 16,000
//! agents; replaying 16,000 sequential protocol joins before every
//! experiment would dominate run time without affecting the measured
//! quantities. This module constructs the exact routing state a long-running
//! Pastry overlay converges to — complete leaf sets and proximity-preferring
//! routing tables — directly from global knowledge. The protocol join path
//! ([`crate::PastryNode::join`]) remains fully implemented and is exercised
//! by tests on smaller networks.

use crate::id::{NodeId, DIGIT_BASE, ID_DIGITS};
use crate::node::PastryNode;
use crate::state::{LeafSet, NodeInfo, RoutingTable, LEAF_SET_SIDE};
use simnet::SiteId;

/// How many candidates (in id order) we examine per routing-table slot when
/// choosing the lowest-latency one. Ids are uniform, so sites among the
/// first few candidates are already diverse.
const PROXIMITY_SCAN: usize = 16;

/// Seeds every node in `nodes` with converged routing state, using
/// `rtt_ms` for proximity preferences. Also builds the site-local
/// structures used for administrative isolation.
///
/// # Panics
///
/// Panics if two nodes share a NodeId.
pub fn seed_overlay(nodes: &mut [PastryNode], rtt_ms: impl Fn(SiteId, SiteId) -> f64) {
    let infos: Vec<NodeInfo> = nodes.iter().map(|n| n.info()).collect();

    let mut sorted = infos.clone();
    sorted.sort_by_key(|e| e.id);
    for w in sorted.windows(2) {
        assert!(w[0].id != w[1].id, "duplicate NodeId in overlay");
    }

    // Per-site sorted views for the isolation structures.
    let mut site_sorted: Vec<Vec<NodeInfo>> = Vec::new();
    for e in &sorted {
        let s = e.site.0 as usize;
        if site_sorted.len() <= s {
            site_sorted.resize(s + 1, Vec::new());
        }
        site_sorted[s].push(*e);
    }

    for node in nodes.iter_mut() {
        let me = node.info();
        let leaf = build_leaf(&sorted, me);
        let rt = build_rt(&sorted, me, &rtt_ms);
        let in_site = &site_sorted[me.site.0 as usize];
        let site_leaf = build_leaf(in_site, me);
        let site_rt = build_rt(in_site, me, &rtt_ms);
        node.seed_state(rt, leaf, site_rt, site_leaf);
    }
}

/// The leaf set of `me` given the full id-sorted membership.
fn build_leaf(sorted: &[NodeInfo], me: NodeInfo) -> LeafSet {
    let mut leaf = LeafSet::new(me.id);
    let n = sorted.len();
    if n <= 1 {
        return leaf;
    }
    let pos = sorted
        .binary_search_by_key(&me.id, |e| e.id)
        .expect("self present in membership");
    let take = LEAF_SET_SIDE.min(n - 1);
    for k in 1..=take {
        leaf.insert(sorted[(pos + k) % n]);
        leaf.insert(sorted[(pos + n - k) % n]);
    }
    leaf
}

/// The routing table of `me` given the full id-sorted membership, choosing
/// the lowest-latency candidate for each slot.
fn build_rt(
    sorted: &[NodeInfo],
    me: NodeInfo,
    rtt_ms: &impl Fn(SiteId, SiteId) -> f64,
) -> RoutingTable {
    let mut rt = RoutingTable::new(me.id);
    for row in 0..ID_DIGITS {
        // If nobody else shares our `row`-digit prefix, deeper rows are
        // empty and we are done.
        let (plo, phi) = prefix_range(me.id, row);
        let sharers = count_in(sorted, plo, phi);
        if row > 0 && sharers <= 1 {
            break;
        }
        let my_digit = me.id.digit(row);
        for d in 0..DIGIT_BASE {
            if d == my_digit {
                continue;
            }
            // Ids matching our first `row` digits with digit `row` == d form
            // a contiguous id range.
            let slot_lo = replace_digit(plo, row, d);
            let slot_hi = slot_lo | suffix_mask(row + 1);
            let lo_idx = sorted.partition_point(|e| e.id.0 < slot_lo);
            let hi_idx = sorted.partition_point(|e| e.id.0 <= slot_hi);
            if lo_idx == hi_idx {
                continue;
            }
            let best = sorted[lo_idx..hi_idx]
                .iter()
                .take(PROXIMITY_SCAN)
                .min_by(|a, b| {
                    rtt_ms(me.site, a.site)
                        .partial_cmp(&rtt_ms(me.site, b.site))
                        .expect("RTTs are finite")
                })
                .expect("non-empty range");
            rt.insert(*best);
        }
    }
    rt
}

/// The id range sharing the first `digits` digits of `id`: `(lo, hi)` where
/// `hi = lo | suffix_mask`.
fn prefix_range(id: NodeId, digits: usize) -> (u128, u128) {
    let mask = suffix_mask(digits);
    let lo = id.0 & !mask;
    (lo, lo | mask)
}

/// A mask of the low bits *after* the first `digits` digits.
fn suffix_mask(digits: usize) -> u128 {
    if digits == 0 {
        u128::MAX
    } else if digits >= ID_DIGITS {
        0
    } else {
        u128::MAX >> (digits * 4)
    }
}

fn replace_digit(prefix_lo: u128, row: usize, digit: usize) -> u128 {
    let shift = 128 - 4 * (row + 1);
    let cleared = prefix_lo & !(0xFu128 << shift);
    cleared | ((digit as u128) << shift)
}

fn count_in(sorted: &[NodeInfo], lo: u128, hi: u128) -> usize {
    let a = sorted.partition_point(|e| e.id.0 < lo);
    let b = sorted.partition_point(|e| e.id.0 <= hi);
    b - a
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeAddr;

    fn mk_nodes(n: usize, sites: usize) -> Vec<PastryNode> {
        (0..n)
            .map(|i| {
                PastryNode::new(NodeInfo {
                    id: NodeId::hash_of(format!("node:{i}").as_bytes()),
                    addr: NodeAddr(i as u32),
                    site: SiteId((i % sites) as u16),
                })
            })
            .collect()
    }

    #[test]
    fn seeded_nodes_are_joined_with_full_leaves() {
        let mut nodes = mk_nodes(100, 4);
        seed_overlay(&mut nodes, |_, _| 0.0);
        for node in &nodes {
            assert!(node.is_joined());
            assert!(node.leaf_set().is_full(), "100 nodes >> leaf capacity");
            assert!(!node.routing_table().is_empty());
        }
    }

    #[test]
    fn leaf_sets_contain_true_ring_neighbors() {
        let mut nodes = mk_nodes(50, 1);
        seed_overlay(&mut nodes, |_, _| 0.0);
        let mut sorted: Vec<NodeInfo> = nodes.iter().map(|n| n.info()).collect();
        sorted.sort_by_key(|e| e.id);
        for node in &nodes {
            let pos = sorted.binary_search_by_key(&node.id(), |e| e.id).unwrap();
            let succ = sorted[(pos + 1) % sorted.len()];
            let pred = sorted[(pos + sorted.len() - 1) % sorted.len()];
            let members: Vec<_> = node.leaf_set().members().map(|e| e.id).collect();
            assert!(members.contains(&succ.id), "missing successor");
            assert!(members.contains(&pred.id), "missing predecessor");
        }
    }

    #[test]
    fn routing_tables_respect_prefix_constraint() {
        let mut nodes = mk_nodes(200, 8);
        seed_overlay(&mut nodes, |_, _| 0.0);
        for node in &nodes {
            for e in node.routing_table().entries() {
                let l = node.id().common_prefix_len(e.id);
                // The entry sits in row `l`, so it must differ from self at
                // digit `l` — guaranteed by construction; check it resolves.
                assert!(l < ID_DIGITS);
                assert_ne!(e.id, node.id());
            }
        }
    }

    #[test]
    fn proximity_prefers_low_rtt_sites() {
        // Two sites, site 1 is "far". Slots contested between sites should
        // prefer site 0 for a site-0 node.
        let mut nodes = mk_nodes(300, 2);
        seed_overlay(&mut nodes, |a, b| if a == b { 0.5 } else { 200.0 });
        let node0 = nodes.iter().find(|n| n.info().site == SiteId(0)).unwrap();
        let same: usize = node0
            .routing_table()
            .entries()
            .filter(|e| e.site == SiteId(0))
            .count();
        let total = node0.routing_table().len();
        assert!(
            same * 2 > total,
            "expected same-site majority, got {same}/{total}"
        );
    }

    #[test]
    fn single_node_overlay_is_fine() {
        let mut nodes = mk_nodes(1, 1);
        seed_overlay(&mut nodes, |_, _| 0.0);
        assert!(nodes[0].is_joined());
        assert!(nodes[0].leaf_set().is_empty());
    }

    #[test]
    fn prefix_helpers() {
        let id = NodeId(0xABCD_0000_0000_0000_0000_0000_0000_0000);
        let (lo, hi) = prefix_range(id, 2);
        assert_eq!(lo, 0xAB00_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(hi, 0xABFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF);
        let r = replace_digit(lo, 2, 0xF);
        assert_eq!(r, 0xABF0_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(suffix_mask(ID_DIGITS), 0);
        assert_eq!(suffix_mask(0), u128::MAX);
    }
}
