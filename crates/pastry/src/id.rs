//! 128-bit ring identifiers.
//!
//! Pastry assigns every node a uniformly distributed 128-bit `NodeId` — the
//! SHA-1 hash of its address — and routes by matching successively longer
//! prefixes of base-16 digits (`b = 4`, so ⌈log₁₆ N⌉ expected hops).

use crate::sha1::sha1_u128;
use core::fmt;

/// Number of bits per routing digit (the paper's `b`, typical value 4).
pub const BITS_PER_DIGIT: u32 = 4;
/// Radix of a routing digit (`2^b = 16`).
pub const DIGIT_BASE: usize = 1 << BITS_PER_DIGIT;
/// Number of digits in a 128-bit identifier (128 / 4 = 32).
pub const ID_DIGITS: usize = 128 / BITS_PER_DIGIT as usize;

/// A 128-bit identifier on the Pastry ring.
///
/// Used both for nodes (`NodeId = SHA-1(address)`) and for Scribe trees
/// (`TreeId = SHA-1(topic ++ creator)`); the node whose id is numerically
/// closest to a TreeId is that tree's rendezvous root.
///
/// ```
/// use pastry::NodeId;
/// let a = NodeId::hash_of(b"node-1");
/// let b = NodeId::hash_of(b"node-2");
/// assert_ne!(a, b);
/// assert_eq!(a.common_prefix_len(a), 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u128);

impl NodeId {
    /// Identifier formed from the first 128 bits of `SHA-1(data)`.
    pub fn hash_of(data: &[u8]) -> Self {
        NodeId(sha1_u128(data))
    }

    /// The `i`-th base-16 digit, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn digit(self, i: usize) -> usize {
        assert!(i < ID_DIGITS, "digit index {i} out of range");
        let shift = 128 - BITS_PER_DIGIT as usize * (i + 1);
        ((self.0 >> shift) & 0xF) as usize
    }

    /// Length of the common digit prefix shared with `other` (0..=32).
    pub fn common_prefix_len(self, other: NodeId) -> usize {
        if self == other {
            return ID_DIGITS;
        }
        ((self.0 ^ other.0).leading_zeros() / BITS_PER_DIGIT) as usize
    }

    /// Clockwise ring distance from `self` to `other` (wrapping subtraction).
    pub fn cw_distance(self, other: NodeId) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// Minimal ring distance between the two ids.
    pub fn ring_distance(self, other: NodeId) -> u128 {
        let cw = self.cw_distance(other);
        let ccw = other.cw_distance(self);
        cw.min(ccw)
    }

    /// Whether `self` is numerically closer to `key` than `other` is.
    /// Ties break toward the numerically smaller id, so "closest" is a
    /// total order and all nodes agree on a key's root.
    pub fn closer_to(self, key: NodeId, other: NodeId) -> bool {
        let a = self.ring_distance(key);
        let b = other.ring_distance(key);
        a < b || (a == b && self.0 < other.0)
    }

    /// Whether `key` lies on the clockwise arc from `from` to `to`
    /// (inclusive of both endpoints).
    pub fn in_cw_range(key: NodeId, from: NodeId, to: NodeId) -> bool {
        from.cw_distance(key) <= from.cw_distance(to)
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:032x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print the leading 8 digits; enough to tell ids apart in traces.
        write!(f, "{:08x}…", (self.0 >> 96) as u32)
    }
}

impl From<u128> for NodeId {
    fn from(v: u128) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_decompose_the_id() {
        let id = NodeId(0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF);
        assert_eq!(id.digit(0), 0x0);
        assert_eq!(id.digit(1), 0x1);
        assert_eq!(id.digit(15), 0xF);
        assert_eq!(id.digit(31), 0xF);
        let recomposed = (0..ID_DIGITS).fold(0u128, |acc, i| (acc << 4) | id.digit(i) as u128);
        assert_eq!(recomposed, id.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_out_of_range_panics() {
        NodeId(0).digit(32);
    }

    #[test]
    fn common_prefix_len_cases() {
        let a = NodeId(0xAAAA_0000_0000_0000_0000_0000_0000_0000);
        let b = NodeId(0xAAAB_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.common_prefix_len(b), 3);
        assert_eq!(a.common_prefix_len(a), 32);
        let c = NodeId(0x5AAA_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.common_prefix_len(c), 0);
    }

    #[test]
    fn ring_distance_wraps() {
        let lo = NodeId(1);
        let hi = NodeId(u128::MAX);
        assert_eq!(lo.ring_distance(hi), 2);
        assert_eq!(hi.ring_distance(lo), 2);
        assert_eq!(lo.cw_distance(hi), u128::MAX - 1);
        assert_eq!(hi.cw_distance(lo), 2);
    }

    #[test]
    fn closer_to_is_total_and_antisymmetric() {
        let key = NodeId(100);
        let a = NodeId(90);
        let b = NodeId(111);
        // a is 10 away, b is 11 away.
        assert!(a.closer_to(key, b));
        assert!(!b.closer_to(key, a));
        // Equidistant: 95 and 105 are both 5 away; the smaller id wins.
        let c = NodeId(95);
        let d = NodeId(105);
        assert!(c.closer_to(key, d));
        assert!(!d.closer_to(key, c));
    }

    #[test]
    fn in_cw_range_wraps_around_zero() {
        let from = NodeId(u128::MAX - 10);
        let to = NodeId(10);
        assert!(NodeId::in_cw_range(NodeId(0), from, to));
        assert!(NodeId::in_cw_range(NodeId(u128::MAX - 5), from, to));
        assert!(NodeId::in_cw_range(from, from, to));
        assert!(NodeId::in_cw_range(to, from, to));
        assert!(!NodeId::in_cw_range(NodeId(11), from, to));
        assert!(!NodeId::in_cw_range(NodeId(500), from, to));
    }

    #[test]
    fn hash_of_is_stable_and_spread() {
        let a = NodeId::hash_of(b"addr:0");
        assert_eq!(a, NodeId::hash_of(b"addr:0"));
        // Uniformity smoke test: leading digits of 160 hashed ids should hit
        // many distinct values.
        let mut seen = std::collections::HashSet::new();
        for i in 0..160 {
            seen.insert(NodeId::hash_of(format!("addr:{i}").as_bytes()).digit(0));
        }
        assert!(
            seen.len() >= 12,
            "only {} distinct leading digits",
            seen.len()
        );
    }

    #[test]
    fn display_and_debug_nonempty() {
        let id = NodeId::hash_of(b"x");
        assert!(!format!("{id}").is_empty());
        assert!(format!("{id:?}").starts_with("NodeId("));
    }
}
