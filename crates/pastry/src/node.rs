//! The Pastry node protocol: prefix routing, join, announcements, and
//! leaf-set repair, plus the site-scoped routing mode used by RBAY's
//! administrative isolation (paper §III.E).
//!
//! The implementation is *sans-I/O*: [`PastryNode`] holds only protocol
//! state, sends through a [`Net`] abstraction, and hands application
//! payloads to a [`PastryApp`]. The simulation harness (or any transport)
//! implements `Net`.

use crate::id::{NodeId, ID_DIGITS};
use crate::state::{LeafSet, NodeInfo, RoutingTable};
use simnet::obs::{ObsEvent, Recorder};
use simnet::{MessageSize, NodeAddr, SiteId};
use std::collections::{BTreeSet, HashMap};

/// Transport abstraction used by the protocol to emit messages.
pub trait Net<A> {
    /// Queues `msg` for delivery to `to`.
    fn send(&mut self, to: NodeAddr, msg: PastryMsg<A>);

    /// Round-trip estimate between two sites, used for proximity-aware
    /// routing-table choices. The default (constant) disables the
    /// preference.
    fn rtt_ms(&self, a: SiteId, b: SiteId) -> f64 {
        let _ = (a, b);
        0.0
    }
}

/// Application callbacks invoked by the routing layer.
///
/// `forward` fires at every intermediate hop and may consume or rewrite the
/// payload — this is the hook Scribe uses to build trees out of the union of
/// JOIN paths.
pub trait PastryApp<A>: Sized {
    /// The message reached the node responsible for `key` after `hops`
    /// network hops.
    fn deliver<N: Net<A>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        key: NodeId,
        payload: A,
        hops: u16,
    );

    /// The message is passing through on its way to `next`. Return the
    /// payload (possibly modified) to let it continue, or `None` to consume
    /// it.
    fn forward<N: Net<A>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        key: NodeId,
        payload: A,
        next: &NodeInfo,
    ) -> Option<A> {
        let _ = (node, net, key, next);
        Some(payload)
    }

    /// A direct (unrouted) application message arrived from `from`.
    fn receive_direct<N: Net<A>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        from: NodeAddr,
        payload: A,
    );
}

/// Wire messages of the Pastry layer, generic over the application payload.
#[derive(Debug, Clone)]
pub enum PastryMsg<A> {
    /// A routed application message heading for the node closest to `key`.
    Route {
        /// Destination key.
        key: NodeId,
        /// Application payload.
        payload: A,
        /// Network hops taken so far.
        hops: u16,
        /// When set, routing only considers nodes of this site
        /// (administrative isolation).
        scope: Option<SiteId>,
    },
    /// A join request routed toward the joiner's id; nodes on the path
    /// contribute routing-table rows.
    Join {
        /// The node joining the overlay.
        joiner: NodeInfo,
        /// Routing rows collected along the path so far.
        rows: Vec<Vec<NodeInfo>>,
        /// Network hops taken so far.
        hops: u16,
    },
    /// Sent by the joiner's root: seed state for the new node.
    JoinReply {
        /// Routing rows collected along the join path.
        rows: Vec<Vec<NodeInfo>>,
        /// The root's leaf set (plus the root itself).
        leaves: Vec<NodeInfo>,
        /// The root node.
        root: NodeInfo,
    },
    /// A (re)announcement of a node's existence; receivers add it to their
    /// routing state.
    Announce {
        /// The announcing node.
        info: NodeInfo,
    },
    /// Request for the receiver's routing-table row `row`, used to refill
    /// slots vacated by a failed node (Pastry's routing-table repair).
    RowRequest {
        /// The requested row index.
        row: u8,
    },
    /// The receiver's populated entries of row `row`.
    RowReply {
        /// The row index echoed.
        row: u8,
        /// The populated entries of that row.
        entries: Vec<NodeInfo>,
    },
    /// Request for the receiver's leaf set, used to repair after failures.
    LeafRepairRequest,
    /// The receiver's leaf set members.
    LeafRepairReply {
        /// Members of the replying node's leaf set (plus itself).
        leaves: Vec<NodeInfo>,
    },
    /// An unrouted application message.
    Direct(A),
}

impl<A: MessageSize> MessageSize for PastryMsg<A> {
    fn wire_size(&self) -> usize {
        const INFO: usize = 16 + 4 + 2; // id + addr + site on the wire
        match self {
            PastryMsg::Route { payload, .. } => 16 + 2 + 3 + payload.wire_size(),
            PastryMsg::Join { rows, .. } => {
                INFO + 2 + rows.iter().map(|r| r.len() * INFO).sum::<usize>()
            }
            PastryMsg::JoinReply { rows, leaves, .. } => {
                INFO + leaves.len() * INFO + rows.iter().map(|r| r.len() * INFO).sum::<usize>()
            }
            PastryMsg::Announce { .. } => INFO,
            PastryMsg::RowRequest { .. } => 2,
            PastryMsg::RowReply { entries, .. } => 2 + entries.len() * INFO,
            PastryMsg::LeafRepairRequest => 1,
            PastryMsg::LeafRepairReply { leaves } => 1 + leaves.len() * INFO,
            PastryMsg::Direct(a) => a.wire_size(),
        }
    }
}

/// Counters exposed for the evaluation harnesses (Fig. 8a/8b).
#[derive(Debug, Clone, Default)]
pub struct PastryStats {
    /// Routed messages this node forwarded toward another node.
    pub forwards: u64,
    /// Routed messages delivered at this node as the key's root.
    pub delivered: u64,
    /// Join requests this node helped route.
    pub joins_seen: u64,
}

/// Protocol state of one Pastry node.
///
/// The node participates in the global overlay and, for administrative
/// isolation, in a site-local view (a same-site routing table and leaf set)
/// so that site-scoped keys converge without leaving the site.
#[derive(Debug)]
pub struct PastryNode {
    info: NodeInfo,
    rt: RoutingTable,
    leaf: LeafSet,
    site_rt: RoutingTable,
    site_leaf: LeafSet,
    joined: bool,
    /// Public counters for the evaluation harnesses.
    pub stats: PastryStats,
    /// When enabled, counts forwards per destination key (Fig. 8b).
    forward_log: Option<HashMap<NodeId, u64>>,
    /// Observability-plane handle; disabled (a no-op) by default.
    obs: Recorder,
    /// Round-robin position for [`PastryNode::gossip_round`].
    gossip_cursor: usize,
    /// Peers declared failed by [`PastryNode::handle_failure`]. Gossip and
    /// repair replies from slower peers would otherwise re-insert a buried
    /// corpse into the leaf set, where it is never re-probed (the failure
    /// detector pings each suspect once) and so silently blackholes every
    /// route through it. A buried peer is refused by
    /// [`PastryNode::insert_peer`] until proof of life arrives
    /// ([`PastryNode::revive`]).
    buried: BTreeSet<NodeAddr>,
}

impl PastryNode {
    /// Creates an un-joined node with the given identity.
    pub fn new(info: NodeInfo) -> Self {
        PastryNode {
            info,
            rt: RoutingTable::new(info.id),
            leaf: LeafSet::new(info.id),
            site_rt: RoutingTable::new(info.id),
            site_leaf: LeafSet::new(info.id),
            joined: false,
            stats: PastryStats::default(),
            forward_log: None,
            obs: Recorder::default(),
            gossip_cursor: 0,
            buried: BTreeSet::new(),
        }
    }

    /// This node's identity.
    pub fn info(&self) -> NodeInfo {
        self.info
    }

    /// This node's ring id.
    pub fn id(&self) -> NodeId {
        self.info.id
    }

    /// Whether the node has completed the join protocol (or was seeded via
    /// [`PastryNode::seed_state`]).
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// The global leaf set (read-only).
    pub fn leaf_set(&self) -> &LeafSet {
        &self.leaf
    }

    /// The global routing table (read-only).
    pub fn routing_table(&self) -> &RoutingTable {
        &self.rt
    }

    /// The site-scoped leaf set (read-only) — peers in this node's own
    /// site, ordered around the site sub-ring.
    pub fn site_leaf_set(&self) -> &LeafSet {
        &self.site_leaf
    }

    /// Starts per-key forward counting (Fig. 8b instrumentation).
    pub fn enable_forward_log(&mut self) {
        self.forward_log = Some(HashMap::new());
    }

    /// Installs an observability recorder (a clone of the federation-wide
    /// handle); routing hooks stay no-ops while the recorder is disabled.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The per-key forward counts, if logging was enabled.
    pub fn forward_log(&self) -> Option<&HashMap<NodeId, u64>> {
        self.forward_log.as_ref()
    }

    /// Approximate memory used by routing state, in bytes (Fig. 8c
    /// accounting).
    pub fn state_bytes(&self) -> usize {
        let info = std::mem::size_of::<NodeInfo>();
        (self.rt.len() + self.site_rt.len() + self.leaf.len() + self.site_leaf.len()) * info
    }

    /// Inserts a peer into routing state (both global and, if same-site,
    /// site-local), preferring lower-latency candidates for contested
    /// routing-table slots.
    pub fn insert_peer<A, N: Net<A>>(&mut self, net: &N, info: NodeInfo) {
        if info.id == self.info.id || self.buried.contains(&info.addr) {
            return;
        }
        let my_site = self.info.site;
        self.rt.insert_with(info, |cur, cand| {
            net.rtt_ms(my_site, cand.site) < net.rtt_ms(my_site, cur.site)
        });
        self.leaf.insert(info);
        if info.site == my_site {
            self.site_rt.insert(info);
            self.site_leaf.insert(info);
        }
    }

    /// Seeds complete routing state directly (used by the omniscient
    /// bootstrap for large simulations) and marks the node joined.
    pub fn seed_state(
        &mut self,
        rt: RoutingTable,
        leaf: LeafSet,
        site_rt: RoutingTable,
        site_leaf: LeafSet,
    ) {
        self.rt = rt;
        self.leaf = leaf;
        self.site_rt = site_rt;
        self.site_leaf = site_leaf;
        self.joined = true;
    }

    /// One round of peer-set anti-entropy: announces this node to one
    /// known peer (round-robin) and pulls that peer's leaf set.
    ///
    /// The join-time `Announce` broadcast is one-shot and one-directional,
    /// so concurrent joins (or a lost frame on a real network) can leave
    /// two nodes mutually unaware forever. A periodic gossip round heals
    /// both holes: the `Announce` teaches the peer about us, and the
    /// `LeafRepairReply` teaches us the peer's neighbourhood — knowledge
    /// percolates transitively through any connected member. Both handlers
    /// are idempotent, so extra rounds are harmless.
    pub fn gossip_round<A, N: Net<A>>(&mut self, net: &mut N) {
        if !self.joined {
            return;
        }
        let peers = self.known_peers();
        if peers.is_empty() {
            return;
        }
        let peer = peers[self.gossip_cursor % peers.len()];
        self.gossip_cursor = self.gossip_cursor.wrapping_add(1);
        net.send(peer.addr, PastryMsg::Announce { info: self.info });
        net.send(peer.addr, PastryMsg::LeafRepairRequest);
    }

    /// All peers this node knows, deduplicated by address.
    pub fn known_peers(&self) -> Vec<NodeInfo> {
        let mut out: Vec<NodeInfo> = Vec::new();
        let mut push = |e: &NodeInfo| {
            if !out.iter().any(|o| o.addr == e.addr) {
                out.push(*e);
            }
        };
        for e in self.rt.entries() {
            push(e);
        }
        for e in self.leaf.members() {
            push(e);
        }
        for e in self.site_rt.entries() {
            push(e);
        }
        for e in self.site_leaf.members() {
            push(e);
        }
        out
    }

    /// Picks the next hop for `key`, or `None` if this node is the key's
    /// root within the (possibly site-scoped) view.
    pub fn next_hop(&self, key: NodeId, scope: Option<SiteId>) -> Option<NodeInfo> {
        match scope {
            None => Self::next_hop_in(&self.rt, &self.leaf, self.info, key, None),
            Some(site) => {
                if site == self.info.site {
                    Self::next_hop_in(&self.site_rt, &self.site_leaf, self.info, key, Some(site))
                } else {
                    // We are outside the scope; fall back to any known node
                    // of that site to enter it ("border routing").
                    self.known_peers()
                        .into_iter()
                        .filter(|p| p.site == site)
                        .min_by_key(|p| p.id.ring_distance(key))
                }
            }
        }
    }

    fn next_hop_in(
        rt: &RoutingTable,
        leaf: &LeafSet,
        me: NodeInfo,
        key: NodeId,
        scope: Option<SiteId>,
    ) -> Option<NodeInfo> {
        if key == me.id {
            return None;
        }
        // Leaf-set short cut: if the key falls in the covered interval, the
        // numerically closest leaf (or self) is the root.
        if leaf.covers(key) {
            return leaf.closest_to(key).copied();
        }
        // Prefix rule.
        if let Some(e) = rt.next_hop(key) {
            if scope.is_none_or(|s| e.site == s) {
                return Some(*e);
            }
        }
        // Rare case: any known node with at least as long a shared prefix
        // that is strictly closer to the key than we are.
        let l = me.id.common_prefix_len(key);
        let mut best: Option<NodeInfo> = None;
        for e in rt.entries().chain(leaf.members()) {
            if let Some(s) = scope {
                if e.site != s {
                    continue;
                }
            }
            if e.id.common_prefix_len(key) >= l && e.id.closer_to(key, me.id) {
                match best {
                    Some(b) if !e.id.closer_to(key, b.id) => {}
                    _ => best = Some(*e),
                }
            }
        }
        best
    }

    /// Routes `payload` toward `key`. If this node is already the root, the
    /// payload is delivered locally (with `hops = 0`).
    pub fn route<A, N: Net<A>, App: PastryApp<A>>(
        &mut self,
        net: &mut N,
        app: &mut App,
        key: NodeId,
        payload: A,
        scope: Option<SiteId>,
    ) {
        match self.next_hop(key, scope) {
            None => {
                self.stats.delivered += 1;
                let me = self.info.addr;
                self.obs.count(me, "route_deliver");
                self.obs.observe_hops(0);
                self.obs.record_with(|at| ObsEvent::RouteDeliver {
                    at,
                    node: me,
                    key: key.as_u128(),
                    hops: 0,
                });
                app.deliver(self, net, key, payload, 0);
            }
            Some(next) => {
                net.send(
                    next.addr,
                    PastryMsg::Route {
                        key,
                        payload,
                        hops: 1,
                        scope,
                    },
                );
            }
        }
    }

    /// Sends an unrouted application message straight to `to`.
    pub fn send_direct<A, N: Net<A>>(&mut self, net: &mut N, to: NodeAddr, payload: A) {
        net.send(to, PastryMsg::Direct(payload));
    }

    /// Initiates the join protocol through `bootstrap` (any node already in
    /// the overlay).
    pub fn join<A, N: Net<A>>(&mut self, net: &mut N, bootstrap: NodeAddr) {
        net.send(
            bootstrap,
            PastryMsg::Join {
                joiner: self.info,
                rows: Vec::new(),
                hops: 0,
            },
        );
    }

    /// Handles an incoming Pastry message. Application payloads are
    /// dispatched through `app`.
    pub fn on_message<A, N: Net<A>, App: PastryApp<A>>(
        &mut self,
        net: &mut N,
        app: &mut App,
        from: NodeAddr,
        msg: PastryMsg<A>,
    ) {
        // Any message from a peer proves it alive: lift a false-positive
        // burial so the peer can re-enter routing state.
        self.revive(from);
        match msg {
            PastryMsg::Route {
                key,
                payload,
                hops,
                scope,
            } => match self.next_hop(key, scope) {
                None => {
                    self.stats.delivered += 1;
                    let me = self.info.addr;
                    self.obs.count(me, "route_deliver");
                    self.obs.observe_hops(hops);
                    self.obs.record_with(|at| ObsEvent::RouteDeliver {
                        at,
                        node: me,
                        key: key.as_u128(),
                        hops,
                    });
                    app.deliver(self, net, key, payload, hops);
                }
                Some(next) => {
                    self.stats.forwards += 1;
                    if let Some(log) = &mut self.forward_log {
                        *log.entry(key).or_insert(0) += 1;
                    }
                    let me = self.info.addr;
                    self.obs.count(me, "route_forward");
                    self.obs.record_with(|at| ObsEvent::RouteForward {
                        at,
                        node: me,
                        key: key.as_u128(),
                        hops,
                    });
                    if let Some(payload) = app.forward(self, net, key, payload, &next) {
                        net.send(
                            next.addr,
                            PastryMsg::Route {
                                key,
                                payload,
                                hops: hops + 1,
                                scope,
                            },
                        );
                    }
                }
            },
            PastryMsg::Join {
                joiner,
                mut rows,
                hops,
            } => {
                self.stats.joins_seen += 1;
                // Contribute routing rows up to the shared-prefix length.
                let l = self.info.id.common_prefix_len(joiner.id).min(ID_DIGITS - 1);
                while rows.len() <= l {
                    let r = rows.len();
                    let row: Vec<NodeInfo> = self.rt.row(r).iter().filter_map(|e| *e).collect();
                    rows.push(row);
                }
                let next = Self::next_hop_in(&self.rt, &self.leaf, self.info, joiner.id, None);
                // Learn about the joiner ourselves.
                self.insert_peer(net, joiner);
                match next {
                    None => {
                        let mut leaves: Vec<NodeInfo> = self.leaf.members().copied().collect();
                        leaves.push(self.info);
                        net.send(
                            joiner.addr,
                            PastryMsg::JoinReply {
                                rows,
                                leaves,
                                root: self.info,
                            },
                        );
                    }
                    Some(next) => {
                        net.send(
                            next.addr,
                            PastryMsg::Join {
                                joiner,
                                rows,
                                hops: hops + 1,
                            },
                        );
                    }
                }
            }
            PastryMsg::JoinReply { rows, leaves, root } => {
                for e in rows.into_iter().flatten().chain(leaves).chain([root]) {
                    self.insert_peer(net, e);
                }
                self.joined = true;
                // Announce ourselves to everyone we now know.
                let me = self.info;
                for peer in self.known_peers() {
                    net.send(peer.addr, PastryMsg::Announce { info: me });
                }
            }
            PastryMsg::Announce { info } => {
                self.insert_peer(net, info);
            }
            PastryMsg::RowRequest { row } => {
                let entries: Vec<NodeInfo> = self
                    .rt
                    .row(row as usize)
                    .iter()
                    .filter_map(|e| *e)
                    .collect();
                net.send(from, PastryMsg::RowReply { row, entries });
            }
            PastryMsg::RowReply { entries, .. } => {
                for e in entries {
                    self.insert_peer(net, e);
                }
            }
            PastryMsg::LeafRepairRequest => {
                let mut leaves: Vec<NodeInfo> = self.leaf.members().copied().collect();
                leaves.push(self.info);
                net.send(from, PastryMsg::LeafRepairReply { leaves });
            }
            PastryMsg::LeafRepairReply { leaves } => {
                for e in leaves {
                    self.insert_peer(net, e);
                }
            }
            PastryMsg::Direct(payload) => {
                app.receive_direct(self, net, from, payload);
            }
        }
    }

    /// Lifts a burial: the peer produced proof of life (a message reached
    /// us), so gossip and repair may re-insert it.
    pub fn revive(&mut self, addr: NodeAddr) {
        self.buried.remove(&addr);
    }

    /// Reacts to the discovery that `addr` has failed: removes it from all
    /// routing state, asks the surviving leaf-set extremes for their
    /// members, and asks a surviving same-row entry for each vacated
    /// routing-table row (the Pastry repair protocol).
    pub fn handle_failure<A, N: Net<A>>(&mut self, net: &mut N, addr: NodeAddr) {
        self.buried.insert(addr);
        let vacated = self.rt.remove(addr);
        self.site_rt.remove(addr);
        self.leaf.remove(addr);
        self.site_leaf.remove(addr);
        let (ccw, cw) = self.leaf.extremes();
        for e in [ccw, cw].into_iter().flatten() {
            net.send(e.addr, PastryMsg::LeafRepairRequest);
        }
        // For each row that lost an entry, ask a surviving entry of the
        // same row (which shares the relevant prefix) for its row; fall
        // back to any leaf when the row emptied out.
        let mut asked_rows = Vec::new();
        for (row, _) in vacated {
            if asked_rows.contains(&row) {
                continue;
            }
            asked_rows.push(row);
            let helper = self
                .rt
                .row(row)
                .iter()
                .flatten()
                .next()
                .copied()
                .or_else(|| self.leaf.members().next().copied());
            if let Some(h) = helper {
                net.send(h.addr, PastryMsg::RowRequest { row: row as u8 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;
    use simnet::{NodeAddr, SiteId};
    use std::collections::VecDeque;

    /// Local payload type (the orphan rule forbids impls on `u32`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct P(u32);
    impl MessageSize for P {}

    /// A loopback "network" that records sends for single-node unit tests.
    #[derive(Default)]
    struct RecNet {
        sent: VecDeque<(NodeAddr, PastryMsg<P>)>,
    }
    impl Net<P> for RecNet {
        fn send(&mut self, to: NodeAddr, msg: PastryMsg<P>) {
            self.sent.push_back((to, msg));
        }
    }

    #[derive(Default)]
    struct RecApp {
        delivered: Vec<(NodeId, P, u16)>,
        directs: Vec<(NodeAddr, P)>,
    }
    impl PastryApp<P> for RecApp {
        fn deliver<N: Net<P>>(
            &mut self,
            _node: &mut PastryNode,
            _net: &mut N,
            key: NodeId,
            payload: P,
            hops: u16,
        ) {
            self.delivered.push((key, payload, hops));
        }
        fn receive_direct<N: Net<P>>(
            &mut self,
            _node: &mut PastryNode,
            _net: &mut N,
            from: NodeAddr,
            payload: P,
        ) {
            self.directs.push((from, payload));
        }
    }

    fn info(id: u128, addr: u32, site: u16) -> NodeInfo {
        NodeInfo {
            id: NodeId(id),
            addr: NodeAddr(addr),
            site: SiteId(site),
        }
    }

    #[test]
    fn lone_node_delivers_to_itself() {
        let mut node = PastryNode::new(info(100, 0, 0));
        let (mut net, mut app) = (RecNet::default(), RecApp::default());
        node.route(&mut net, &mut app, NodeId(12345), P(7), None);
        assert_eq!(app.delivered, vec![(NodeId(12345), P(7), 0)]);
        assert!(net.sent.is_empty());
    }

    #[test]
    fn routes_to_numerically_closest_known_node() {
        let mut node = PastryNode::new(info(100, 0, 0));
        let (mut net, mut app) = (RecNet::default(), RecApp::default());
        node.insert_peer(&net, info(2_000, 1, 0));
        node.insert_peer(&net, info(3_000, 2, 0));
        node.route(&mut net, &mut app, NodeId(2_100), P(7), None);
        let (to, msg) = net.sent.pop_front().expect("one send");
        assert_eq!(to, NodeAddr(1));
        assert!(matches!(msg, PastryMsg::Route { hops: 1, .. }));
        assert!(app.delivered.is_empty());
    }

    #[test]
    fn forward_increments_stats_and_log() {
        let mut node = PastryNode::new(info(100, 0, 0));
        node.enable_forward_log();
        let (mut net, mut app) = (RecNet::default(), RecApp::default());
        node.insert_peer(&net, info(50_000, 1, 0));
        node.on_message(
            &mut net,
            &mut app,
            NodeAddr(9),
            PastryMsg::Route {
                key: NodeId(49_999),
                payload: P(1),
                hops: 3,
                scope: None,
            },
        );
        assert_eq!(node.stats.forwards, 1);
        assert_eq!(node.forward_log().unwrap()[&NodeId(49_999)], 1);
        let (_, msg) = net.sent.pop_front().unwrap();
        assert!(matches!(msg, PastryMsg::Route { hops: 4, .. }));
    }

    #[test]
    fn direct_messages_bypass_routing() {
        let mut node = PastryNode::new(info(100, 0, 0));
        let (mut net, mut app) = (RecNet::default(), RecApp::default());
        node.on_message(&mut net, &mut app, NodeAddr(4), PastryMsg::Direct(P(42)));
        assert_eq!(app.directs, vec![(NodeAddr(4), P(42))]);
    }

    #[test]
    fn scoped_next_hop_never_leaves_site() {
        let mut node = PastryNode::new(info(100, 0, 1));
        let net = RecNet::default();
        // An other-site node much closer to the key, and a same-site node.
        node.insert_peer(&net, info(1_000_000, 1, 2));
        node.insert_peer(&net, info(5_000, 2, 1));
        let hop = node.next_hop(NodeId(999_999), Some(SiteId(1)));
        assert_eq!(hop.unwrap().addr, NodeAddr(2));
    }

    #[test]
    fn scope_from_outside_enters_via_border() {
        let mut node = PastryNode::new(info(100, 0, 1));
        let net = RecNet::default();
        node.insert_peer(&net, info(900, 5, 3));
        let hop = node.next_hop(NodeId(901), Some(SiteId(3)));
        assert_eq!(hop.unwrap().addr, NodeAddr(5));
    }

    #[test]
    fn failure_removes_peer_and_requests_repair() {
        let mut node = PastryNode::new(info(100, 0, 0));
        let mut net = RecNet::default();
        node.insert_peer(&net, info(200, 1, 0));
        node.insert_peer(&net, info(300, 2, 0));
        node.handle_failure(&mut net, NodeAddr(1));
        assert!(node.known_peers().iter().all(|p| p.addr != NodeAddr(1)));
        // Repair requests went out: leaf-set repair to the surviving
        // extremes plus row repair for the vacated routing-table slot.
        assert!(net
            .sent
            .iter()
            .any(|(_, m)| matches!(m, PastryMsg::LeafRepairRequest)));
        assert!(net
            .sent
            .iter()
            .any(|(_, m)| matches!(m, PastryMsg::RowRequest { .. })));
    }

    #[test]
    fn row_request_returns_row_and_reply_refills() {
        let mut node = PastryNode::new(info(100, 0, 0));
        let (mut net, mut app) = (RecNet::default(), RecApp::default());
        let peer = info(0x1000_0000_0000_0000_0000_0000_0000_0000, 1, 0);
        node.insert_peer(&net, peer);
        let row = node.id().common_prefix_len(peer.id);
        // Someone asks us for that row.
        node.on_message(
            &mut net,
            &mut app,
            NodeAddr(9),
            PastryMsg::RowRequest { row: row as u8 },
        );
        let (to, msg) = net.sent.pop_front().unwrap();
        assert_eq!(to, NodeAddr(9));
        let PastryMsg::RowReply { entries, .. } = msg else {
            panic!("expected RowReply");
        };
        assert!(entries.iter().any(|e| e.addr == peer.addr));
        // A reply refills our own table.
        let mut fresh = PastryNode::new(info(100, 0, 0));
        fresh.on_message(
            &mut net,
            &mut app,
            NodeAddr(1),
            PastryMsg::RowReply {
                row: row as u8,
                entries: vec![peer],
            },
        );
        assert!(fresh.known_peers().iter().any(|p| p.addr == peer.addr));
    }

    #[test]
    fn wire_size_charges_payload() {
        let small = PastryMsg::Route {
            key: NodeId(0),
            payload: P(0),
            hops: 0,
            scope: None,
        };
        let join: PastryMsg<P> = PastryMsg::Join {
            joiner: info(0, 0, 0),
            rows: vec![vec![info(1, 1, 0); 16]],
            hops: 0,
        };
        assert!(join.wire_size() > small.wire_size());
    }
}
