//! Per-node Pastry routing state: the routing table and the leaf set.

use crate::id::{NodeId, DIGIT_BASE, ID_DIGITS};
use simnet::{NodeAddr, SiteId};

/// Everything a node knows about a peer: ring id, transport address, and the
/// site it belongs to (used for proximity preferences and administrative
/// isolation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    /// The peer's ring identifier.
    pub id: NodeId,
    /// The peer's transport address.
    pub addr: NodeAddr,
    /// The site (datacenter) hosting the peer.
    pub site: SiteId,
}

/// Maximum number of leaf-set entries per side (`|L|/2 = 8`, so `|L| = 16`).
pub const LEAF_SET_SIDE: usize = 8;

/// Outcome of inserting into one leaf-set side.
enum SideInsert {
    /// Entry placed; carries whoever it displaced past the cap.
    Fit(Option<NodeInfo>),
    /// Entry is farther than everything on a full side.
    NoFit,
}

/// The set of nodes with numerically closest NodeIds, half clockwise and
/// half counterclockwise on the ring.
///
/// Pastry uses the leaf set for the final step of routing and for repairing
/// routing tables when nodes fail (paper §II.B.1).
#[derive(Debug, Clone)]
pub struct LeafSet {
    self_id: NodeId,
    /// Clockwise neighbours, ascending by clockwise distance from self.
    cw: Vec<NodeInfo>,
    /// Counterclockwise neighbours, ascending by counterclockwise distance.
    ccw: Vec<NodeInfo>,
    side: usize,
}

impl LeafSet {
    /// An empty leaf set for the node with id `self_id`.
    pub fn new(self_id: NodeId) -> Self {
        Self::with_side(self_id, LEAF_SET_SIDE)
    }

    /// An empty leaf set with a custom per-side capacity (tests use small
    /// sides to force interesting evictions).
    pub fn with_side(self_id: NodeId, side: usize) -> Self {
        assert!(side > 0, "leaf set side must be positive");
        LeafSet {
            self_id,
            cw: Vec::new(),
            ccw: Vec::new(),
            side,
        }
    }

    /// Inserts `info`, evicting the farthest entry on the relevant side if
    /// the side is full. Self and duplicates are ignored. A candidate that
    /// does not fit on its nearer side spills over to the other side (so a
    /// small ring of ≤ `2 × side` nodes is always fully covered, matching
    /// Pastry's successor/predecessor semantics). Returns whether the set
    /// changed.
    pub fn insert(&mut self, info: NodeInfo) -> bool {
        if info.id == self.self_id {
            return false;
        }
        if self.cw.iter().chain(&self.ccw).any(|e| e.id == info.id) {
            return false;
        }
        // A node belongs first to the side where it is nearer; if that
        // side is full of closer entries (or filling it evicts someone),
        // the displaced node may still be one of the other side's nearest.
        let cw_d = self.self_id.cw_distance(info.id);
        let ccw_d = info.id.cw_distance(self.self_id);
        self.insert_chain(info, cw_d <= ccw_d, 4)
    }

    /// Inserts on one side; a displaced entry cascades to the other side
    /// (bounded depth — distances strictly grow along the chain).
    fn insert_chain(&mut self, info: NodeInfo, clockwise: bool, depth: u8) -> bool {
        if depth == 0 {
            return false;
        }
        match self.insert_side(info, clockwise) {
            SideInsert::Fit(None) => true,
            SideInsert::Fit(Some(evicted)) => {
                self.insert_chain(evicted, !clockwise, depth - 1);
                true
            }
            SideInsert::NoFit => self.insert_chain(info, !clockwise, depth - 1),
        }
    }

    /// Inserts into one side (true = clockwise), keeping it sorted by that
    /// side's arc distance and capped; reports the evicted entry, if any.
    fn insert_side(&mut self, info: NodeInfo, clockwise: bool) -> SideInsert {
        let self_id = self.self_id;
        let side = self.side;
        type DistFn = fn(NodeId, NodeId) -> u128;
        let (list, key): (&mut Vec<NodeInfo>, DistFn) = if clockwise {
            (&mut self.cw, |s, o| s.cw_distance(o))
        } else {
            (&mut self.ccw, |s, o| o.cw_distance(s))
        };
        let pos = list
            .iter()
            .position(|e| key(self_id, e.id) > key(self_id, info.id))
            .unwrap_or(list.len());
        if pos >= side {
            return SideInsert::NoFit;
        }
        list.insert(pos, info);
        let evicted = if list.len() > side { list.pop() } else { None };
        SideInsert::Fit(evicted)
    }

    /// Removes the entry with address `addr`, if present. Returns it.
    pub fn remove(&mut self, addr: NodeAddr) -> Option<NodeInfo> {
        for list in [&mut self.cw, &mut self.ccw] {
            if let Some(pos) = list.iter().position(|e| e.addr == addr) {
                return Some(list.remove(pos));
            }
        }
        None
    }

    /// All members (both sides), in no particular order.
    pub fn members(&self) -> impl Iterator<Item = &NodeInfo> {
        self.cw.iter().chain(self.ccw.iter())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.cw.len() + self.ccw.len()
    }

    /// Whether the leaf set has no members.
    pub fn is_empty(&self) -> bool {
        self.cw.is_empty() && self.ccw.is_empty()
    }

    /// Whether both sides are at capacity. A non-full leaf set means the node
    /// knows the entire (small) network, and routing can finish in one hop.
    pub fn is_full(&self) -> bool {
        self.cw.len() == self.side && self.ccw.len() == self.side
    }

    /// Whether `key` falls within the ring interval covered by this leaf
    /// set (from the farthest counterclockwise member to the farthest
    /// clockwise member). When the set is not full, it covers the whole ring.
    pub fn covers(&self, key: NodeId) -> bool {
        if !self.is_full() {
            return true;
        }
        let lo = self.ccw.last().expect("full side").id;
        let hi = self.cw.last().expect("full side").id;
        NodeId::in_cw_range(key, lo, hi)
    }

    /// The member numerically closest to `key`, or `None` if the closest id
    /// is self. Ties break by smaller id (consistent with
    /// [`NodeId::closer_to`]).
    pub fn closest_to(&self, key: NodeId) -> Option<&NodeInfo> {
        let mut best: Option<&NodeInfo> = None;
        for e in self.members() {
            match best {
                Some(b) if !e.id.closer_to(key, b.id) => {}
                _ => best = Some(e),
            }
        }
        match best {
            Some(b) if b.id.closer_to(key, self.self_id) => Some(b),
            _ => None,
        }
    }

    /// The farthest member on each side, used to request repair data after
    /// failures.
    pub fn extremes(&self) -> (Option<&NodeInfo>, Option<&NodeInfo>) {
        (self.ccw.last(), self.cw.last())
    }
}

/// The prefix-routing table: up to 32 rows (one per matched-prefix length)
/// of 16 columns (one per next digit).
///
/// `rows[l][d]` holds a node whose id shares the first `l` digits with this
/// node's id and whose `(l+1)`-th digit is `d`.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    self_id: NodeId,
    rows: Vec<[Option<NodeInfo>; DIGIT_BASE]>,
}

impl RoutingTable {
    /// An empty routing table for `self_id`.
    pub fn new(self_id: NodeId) -> Self {
        RoutingTable {
            self_id,
            rows: vec![[None; DIGIT_BASE]; ID_DIGITS],
        }
    }

    /// The slot `info` would occupy: `(row, column)`, or `None` for self.
    fn slot(&self, id: NodeId) -> Option<(usize, usize)> {
        if id == self.self_id {
            return None;
        }
        let row = self.self_id.common_prefix_len(id);
        Some((row, id.digit(row)))
    }

    /// Inserts `info`, keeping whichever candidate `prefer` likes better
    /// when the slot is occupied (`prefer(current, candidate)` returns true
    /// to replace). Entries for self are ignored. Returns whether the table
    /// changed.
    pub fn insert_with(
        &mut self,
        info: NodeInfo,
        prefer: impl Fn(&NodeInfo, &NodeInfo) -> bool,
    ) -> bool {
        let Some((row, col)) = self.slot(info.id) else {
            return false;
        };
        match &self.rows[row][col] {
            None => {
                self.rows[row][col] = Some(info);
                true
            }
            Some(cur) if cur.id != info.id && prefer(cur, &info) => {
                self.rows[row][col] = Some(info);
                true
            }
            _ => false,
        }
    }

    /// Inserts `info`, keeping the existing occupant of a contested slot.
    pub fn insert(&mut self, info: NodeInfo) -> bool {
        self.insert_with(info, |_, _| false)
    }

    /// The entry at `(row, col)`, if any.
    pub fn entry(&self, row: usize, col: usize) -> Option<&NodeInfo> {
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// The natural next hop for `key`: the entry sharing one more digit.
    pub fn next_hop(&self, key: NodeId) -> Option<&NodeInfo> {
        let row = self.self_id.common_prefix_len(key);
        if row >= ID_DIGITS {
            return None;
        }
        self.rows[row][key.digit(row)].as_ref()
    }

    /// Removes all entries with address `addr`. Returns the `(row, col)`
    /// positions vacated, so repair can request replacement rows.
    pub fn remove(&mut self, addr: NodeAddr) -> Vec<(usize, usize)> {
        let mut vacated = Vec::new();
        for (r, row) in self.rows.iter_mut().enumerate() {
            for (c, slot) in row.iter_mut().enumerate() {
                if slot.map(|e| e.addr) == Some(addr) {
                    *slot = None;
                    vacated.push((r, c));
                }
            }
        }
        vacated
    }

    /// Iterates over all populated entries.
    pub fn entries(&self) -> impl Iterator<Item = &NodeInfo> {
        self.rows.iter().flatten().filter_map(|s| s.as_ref())
    }

    /// One full row (16 slots), used by the join protocol: the `l`-th row of
    /// a node sharing `l` digits with the joiner seeds the joiner's row `l`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 32`.
    pub fn row(&self, row: usize) -> &[Option<NodeInfo>; DIGIT_BASE] {
        &self.rows[row]
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u128) -> NodeInfo {
        // Mix in the high bits so large test ids still get distinct addrs.
        NodeInfo {
            id: NodeId(id),
            addr: NodeAddr((id ^ (id >> 96)) as u32),
            site: SiteId(0),
        }
    }

    #[test]
    fn leaf_set_keeps_closest_per_side() {
        let mut ls = LeafSet::with_side(NodeId(1000), 2);
        for id in [1010u128, 1020, 1030, 990, 980, 970] {
            ls.insert(info(id));
        }
        let mut cw: Vec<u128> = ls.cw.iter().map(|e| e.id.0).collect();
        let mut ccw: Vec<u128> = ls.ccw.iter().map(|e| e.id.0).collect();
        cw.sort();
        ccw.sort();
        assert_eq!(cw, vec![1010, 1020]);
        assert_eq!(ccw, vec![980, 990]);
        assert!(ls.is_full());
    }

    #[test]
    fn leaf_set_ignores_self_and_duplicates() {
        let mut ls = LeafSet::new(NodeId(5));
        assert!(!ls.insert(info(5)));
        assert!(ls.insert(info(6)));
        assert!(!ls.insert(info(6)));
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn leaf_set_covers_whole_ring_when_not_full() {
        let mut ls = LeafSet::with_side(NodeId(0), 2);
        ls.insert(info(10));
        assert!(ls.covers(NodeId(u128::MAX / 2)));
    }

    #[test]
    fn leaf_set_coverage_interval_when_full() {
        let mut ls = LeafSet::with_side(NodeId(1000), 1);
        ls.insert(info(1100));
        ls.insert(info(900));
        assert!(ls.covers(NodeId(950)));
        assert!(ls.covers(NodeId(1100)));
        assert!(ls.covers(NodeId(900)));
        assert!(!ls.covers(NodeId(1101)));
        assert!(!ls.covers(NodeId(899)));
    }

    #[test]
    fn leaf_closest_to_prefers_self_when_self_is_closest() {
        let mut ls = LeafSet::new(NodeId(1000));
        ls.insert(info(2000));
        assert!(ls.closest_to(NodeId(1001)).is_none());
        assert_eq!(ls.closest_to(NodeId(1999)).unwrap().id, NodeId(2000));
    }

    #[test]
    fn leaf_remove_and_extremes() {
        let mut ls = LeafSet::with_side(NodeId(100), 2);
        for id in [110u128, 120, 90, 80] {
            ls.insert(info(id));
        }
        let (ccw, cw) = ls.extremes();
        assert_eq!(ccw.unwrap().id, NodeId(80));
        assert_eq!(cw.unwrap().id, NodeId(120));
        assert!(ls.remove(NodeAddr(120)).is_some());
        assert!(ls.remove(NodeAddr(120)).is_none());
        assert_eq!(ls.len(), 3);
    }

    #[test]
    fn routing_table_slot_assignment() {
        let me = NodeId(0x0000_0000_0000_0000_0000_0000_0000_0000);
        let mut rt = RoutingTable::new(me);
        let other = info(0x00F0_0000_0000_0000_0000_0000_0000_0000);
        assert!(rt.insert(other));
        // Shares 2 leading zero digits, third digit is 0xF.
        assert_eq!(rt.entry(2, 0xF).unwrap().id, other.id);
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn routing_table_next_hop_matches_longer_prefix() {
        let me = NodeId(0);
        let mut rt = RoutingTable::new(me);
        let a = info(0x1000_0000_0000_0000_0000_0000_0000_0000);
        rt.insert(a);
        let key = NodeId(0x1234_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(rt.next_hop(key).unwrap().id, a.id);
        // Key whose first digit has no entry.
        let key2 = NodeId(0x2000_0000_0000_0000_0000_0000_0000_0000);
        assert!(rt.next_hop(key2).is_none());
    }

    #[test]
    fn routing_table_prefer_replaces() {
        let me = NodeId(0);
        let mut rt = RoutingTable::new(me);
        let a = NodeInfo {
            id: NodeId(0x1000_0000_0000_0000_0000_0000_0000_0000),
            addr: NodeAddr(1),
            site: SiteId(3),
        };
        let b = NodeInfo {
            id: NodeId(0x1100_0000_0000_0000_0000_0000_0000_0000),
            addr: NodeAddr(2),
            site: SiteId(0),
        };
        rt.insert(a);
        // Same slot (row 0, digit 1); prefer the site-0 node.
        assert!(rt.insert_with(b, |cur, cand| cand.site.0 < cur.site.0));
        assert_eq!(rt.entry(0, 1).unwrap().addr, NodeAddr(2));
        // Plain insert never replaces.
        assert!(!rt.insert(a));
    }

    #[test]
    fn routing_table_remove_by_addr() {
        let mut rt = RoutingTable::new(NodeId(0));
        let a = info(0x1000_0000_0000_0000_0000_0000_0000_0000);
        let b = info(0x2000_0000_0000_0000_0000_0000_0000_0000);
        rt.insert(a);
        rt.insert(b);
        assert_eq!(rt.remove(a.addr).len(), 1);
        assert_eq!(rt.len(), 1);
        assert!(rt.remove(a.addr).is_empty(), "idempotent");
    }

    #[test]
    fn routing_table_ignores_self() {
        let mut rt = RoutingTable::new(NodeId(7));
        assert!(!rt.insert(info(7)));
        assert!(rt.is_empty());
    }
}
