//! A minimal SHA-1 implementation.
//!
//! Pastry derives 128-bit node identifiers from a secure hash of the node's
//! address, and RBAY derives tree identifiers from `SHA-1(topic ++ creator)`
//! (paper §II.B). SHA-1's collision weaknesses do not matter here — it is
//! used purely to spread identifiers uniformly over the ring — so we keep the
//! paper's choice and implement it in-repo rather than pulling a dependency.

/// Computes the 20-byte SHA-1 digest of `data`.
///
/// ```
/// let d = pastry::sha1::sha1(b"abc");
/// assert_eq!(d[0], 0xa9);
/// ```
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Pad: message ++ 0x80 ++ zeros ++ 64-bit big-endian bit length.
    let ml = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// The first 128 bits of the SHA-1 digest of `data`, as a big-endian `u128`.
/// This is how Pastry NodeIds and Scribe TreeIds are formed.
pub fn sha1_u128(data: &[u8]) -> u128 {
    let d = sha1(data);
    let mut b = [0u8; 16];
    b.copy_from_slice(&d[..16]);
    u128::from_be_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn exactly_block_boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes exercise every padding branch.
        for len in [55usize, 56, 63, 64, 65] {
            let data = vec![0x61u8; len];
            let d = sha1(&data);
            assert_eq!(d.len(), 20);
            // Digest differs from neighbours (sanity against padding bugs).
            let d2 = sha1(&vec![0x61u8; len + 1]);
            assert_ne!(d, d2, "len {len}");
        }
    }

    #[test]
    fn u128_truncation_is_prefix() {
        let full = sha1(b"rbay");
        let t = sha1_u128(b"rbay");
        assert_eq!(t.to_be_bytes()[..], full[..16]);
    }
}
