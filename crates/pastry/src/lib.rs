//! # pastry — a from-scratch Pastry DHT
//!
//! The structured-overlay substrate of the RBAY reproduction (paper §II.B):
//! 128-bit NodeIds derived from SHA-1, base-16 prefix routing in
//! `⌈log₁₆ N⌉` expected hops, leaf sets for the final routing step and for
//! failure repair, and a site-scoped routing mode used by RBAY's
//! administrative isolation.
//!
//! The protocol core ([`PastryNode`]) is sans-I/O: it emits messages through
//! the [`Net`] trait and surfaces application payloads through
//! [`PastryApp`], so the same code runs over the deterministic [`simnet`]
//! simulator (see [`SimNet`]) or any other transport.
//!
//! ```
//! use pastry::{NodeId, NodeInfo, PastryNode};
//! use simnet::{NodeAddr, SiteId};
//!
//! let mut nodes: Vec<PastryNode> = (0..32)
//!     .map(|i| PastryNode::new(NodeInfo {
//!         id: NodeId::hash_of(format!("node:{i}").as_bytes()),
//!         addr: NodeAddr(i),
//!         site: SiteId(0),
//!     }))
//!     .collect();
//! // Seed converged routing state (the protocol join is also available).
//! pastry::seed_overlay(&mut nodes, |_, _| 0.0);
//! assert!(nodes.iter().all(|n| n.is_joined()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod id;
mod node;
pub mod sha1;
mod state;

pub use bootstrap::seed_overlay;
pub use id::{NodeId, BITS_PER_DIGIT, DIGIT_BASE, ID_DIGITS};
pub use node::{Net, PastryApp, PastryMsg, PastryNode, PastryStats};
pub use state::{LeafSet, NodeInfo, RoutingTable, LEAF_SET_SIDE};

use simnet::{Context, MessageSize, SiteId};

/// Adapter implementing [`Net`] over a [`simnet::Context`], so protocol code
/// can run inside simulation actors. RTT hints come from the topology.
pub struct SimNet<'a, 'c, A> {
    ctx: &'a mut Context<'c, PastryMsg<A>>,
}

impl<'a, 'c, A> SimNet<'a, 'c, A> {
    /// Wraps a simulation context.
    pub fn new(ctx: &'a mut Context<'c, PastryMsg<A>>) -> Self {
        SimNet { ctx }
    }

    /// The wrapped context.
    pub fn ctx(&mut self) -> &mut Context<'c, PastryMsg<A>> {
        self.ctx
    }
}

impl<'a, 'c, A: MessageSize> Net<A> for SimNet<'a, 'c, A> {
    fn send(&mut self, to: simnet::NodeAddr, msg: PastryMsg<A>) {
        self.ctx.send(to, msg);
    }

    fn rtt_ms(&self, a: SiteId, b: SiteId) -> f64 {
        self.ctx.topology().rtt_ms(a, b)
    }
}
