//! End-to-end Pastry overlay tests over the simnet simulator: protocol
//! joins, routing correctness against a brute-force oracle, failure repair,
//! and property-based routing invariants.

use pastry::{seed_overlay, NodeId, NodeInfo, PastryApp, PastryMsg, PastryNode, SimNet};
use proptest::prelude::*;
use simnet::{Actor, Context, MessageSize, NodeAddr, Simulation, SiteId, Topology};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Payload(u64);
impl MessageSize for Payload {}

/// Records every delivery so tests can check who became the root.
#[derive(Default)]
struct Recorder {
    delivered: Vec<(NodeId, Payload, u16)>,
}

impl PastryApp<Payload> for Recorder {
    fn deliver<N: pastry::Net<Payload>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        key: NodeId,
        payload: Payload,
        hops: u16,
    ) {
        self.delivered.push((key, payload, hops));
    }
    fn receive_direct<N: pastry::Net<Payload>>(
        &mut self,
        _node: &mut PastryNode,
        _net: &mut N,
        _from: NodeAddr,
        payload: Payload,
    ) {
        self.delivered.push((NodeId(0), payload, 0));
    }
}

struct OverlayActor {
    node: PastryNode,
    app: Recorder,
}

impl Actor for OverlayActor {
    type Msg = PastryMsg<Payload>;
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        let OverlayActor { node, app } = self;
        let mut net = SimNet::new(ctx);
        node.on_message(&mut net, app, from, msg);
    }
}

fn make_actor(addr: NodeAddr, topo: &Topology) -> OverlayActor {
    OverlayActor {
        node: PastryNode::new(NodeInfo {
            id: NodeId::hash_of(format!("node:{}", addr.0).as_bytes()),
            addr,
            site: topo.site_of(addr),
        }),
        app: Recorder::default(),
    }
}

/// The id numerically closest to `key` among `infos` (the routing oracle).
fn oracle_root(infos: &[NodeInfo], key: NodeId) -> NodeId {
    infos
        .iter()
        .map(|e| e.id)
        .reduce(|best, id| if id.closer_to(key, best) { id } else { best })
        .expect("non-empty")
}

fn seeded_sim(n: usize, seed: u64) -> Simulation<OverlayActor> {
    let topo = Topology::single_site(n, 0.5);
    let t2 = topo.clone();
    let mut sim = Simulation::new(topo, seed, move |addr| make_actor(addr, &t2));
    // Seed converged state out-of-band.
    let mut nodes: Vec<PastryNode> = (0..n as u32)
        .map(|i| {
            PastryNode::new(NodeInfo {
                id: NodeId::hash_of(format!("node:{i}").as_bytes()),
                addr: NodeAddr(i),
                site: SiteId(0),
            })
        })
        .collect();
    seed_overlay(&mut nodes, |_, _| 0.0);
    for (i, n) in nodes.into_iter().enumerate() {
        sim.actor_mut(NodeAddr(i as u32)).node = n;
    }
    sim
}

#[test]
fn protocol_join_converges_and_routes_correctly() {
    let n = 24usize;
    let topo = Topology::single_site(n, 0.5);
    let t2 = topo.clone();
    let mut sim = Simulation::new(topo, 11, move |addr| make_actor(addr, &t2));
    // Node 0 is the bootstrap; others join one at a time through it.
    let id0 = sim.actor(NodeAddr(0)).node.id();
    sim.actor_mut(NodeAddr(0)).node.seed_state(
        pastry::RoutingTable::new(id0),
        pastry::LeafSet::new(id0),
        pastry::RoutingTable::new(id0),
        pastry::LeafSet::new(id0),
    );
    for i in 1..n as u32 {
        let now = sim.now();
        sim.schedule_call(now, NodeAddr(i), |a, ctx| {
            let mut net = SimNet::new(ctx);
            a.node.join(&mut net, NodeAddr(0));
        });
        sim.run_until_idle();
    }
    assert!(sim.actors().all(|(_, a)| a.node.is_joined()));

    let infos: Vec<NodeInfo> = sim.actors().map(|(_, a)| a.node.info()).collect();
    // Route 50 random keys from node 3 and check each lands on the oracle
    // root.
    for k in 0..50u64 {
        let key = NodeId::hash_of(format!("key:{k}").as_bytes());
        let now = sim.now();
        sim.schedule_call(now, NodeAddr(3), move |a, ctx| {
            let OverlayActor { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Payload(k), None);
        });
        sim.run_until_idle();
        let root = oracle_root(&infos, key);
        let (addr, actor) = sim
            .actors()
            .find(|(_, a)| {
                a.app
                    .delivered
                    .iter()
                    .any(|(dk, p, _)| *dk == key && *p == Payload(k))
            })
            .expect("someone delivered the key");
        assert_eq!(actor.node.id(), root, "key {k} landed on wrong node {addr}");
    }
}

#[test]
fn seeded_overlay_routes_all_keys_to_oracle_root() {
    let mut sim = seeded_sim(200, 7);
    let infos: Vec<NodeInfo> = sim.actors().map(|(_, a)| a.node.info()).collect();
    for k in 0..100u64 {
        let key = NodeId::hash_of(format!("probe:{k}").as_bytes());
        let src = NodeAddr((k % 200) as u32);
        let now = sim.now();
        sim.schedule_call(now, src, move |a, ctx| {
            let OverlayActor { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Payload(k), None);
        });
        sim.run_until_idle();
        let root = oracle_root(&infos, key);
        let delivered_at: Vec<NodeId> = sim
            .actors()
            .filter(|(_, a)| {
                a.app
                    .delivered
                    .iter()
                    .any(|(dk, p, _)| *dk == key && *p == Payload(k))
            })
            .map(|(_, a)| a.node.id())
            .collect();
        assert_eq!(delivered_at, vec![root], "key {k}");
    }
}

#[test]
fn hop_counts_are_logarithmic() {
    let mut sim = seeded_sim(512, 3);
    for k in 0..50u64 {
        let key = NodeId::hash_of(format!("hops:{k}").as_bytes());
        let src = NodeAddr((k * 7 % 512) as u32);
        let now = sim.now();
        sim.schedule_call(now, src, move |a, ctx| {
            let OverlayActor { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Payload(k), None);
        });
    }
    sim.run_until_idle();
    let max_hops = sim
        .actors()
        .flat_map(|(_, a)| a.app.delivered.iter().map(|(_, _, h)| *h))
        .max()
        .expect("deliveries happened");
    // ceil(log16 512) = 3, allow slack for leaf-set hops.
    assert!(max_hops <= 5, "max hops {max_hops} too large for 512 nodes");
}

#[test]
fn failure_repair_keeps_routing_correct() {
    let mut sim = seeded_sim(64, 9);
    let infos: Vec<NodeInfo> = sim.actors().map(|(_, a)| a.node.info()).collect();
    // Kill node 10 and tell every other node about it (as its failure
    // detector would).
    let dead = NodeAddr(10);
    sim.fail_node(dead);
    for i in 0..64u32 {
        if i == 10 {
            continue;
        }
        let now = sim.now();
        sim.schedule_call(now, NodeAddr(i), move |a, ctx| {
            let mut net = SimNet::new(ctx);
            a.node.handle_failure(&mut net, dead);
        });
    }
    sim.run_until_idle();
    let live: Vec<NodeInfo> = infos.iter().filter(|e| e.addr != dead).copied().collect();
    for k in 0..30u64 {
        let key = NodeId::hash_of(format!("post-fail:{k}").as_bytes());
        let now = sim.now();
        sim.schedule_call(now, NodeAddr(1), move |a, ctx| {
            let OverlayActor { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Payload(1_000 + k), None);
        });
        sim.run_until_idle();
        let root = oracle_root(&live, key);
        let delivered_at: Vec<NodeId> = sim
            .actors()
            .filter(|(_, a)| {
                a.app
                    .delivered
                    .iter()
                    .any(|(dk, p, _)| *dk == key && *p == Payload(1_000 + k))
            })
            .map(|(_, a)| a.node.id())
            .collect();
        assert_eq!(delivered_at, vec![root], "key {k} after failure");
    }
}

#[test]
fn site_scoped_routing_stays_in_site() {
    let topo = Topology::aws_ec2_8_sites(12);
    let t2 = topo.clone();
    let mut sim = Simulation::new(topo, 5, move |addr| make_actor(addr, &t2));
    let mut nodes: Vec<PastryNode> = sim
        .actors()
        .map(|(_, a)| PastryNode::new(a.node.info()))
        .collect();
    seed_overlay(&mut nodes, |_, _| 0.0);
    for (i, n) in nodes.into_iter().enumerate() {
        sim.actor_mut(NodeAddr(i as u32)).node = n;
    }
    let infos: Vec<NodeInfo> = sim.actors().map(|(_, a)| a.node.info()).collect();
    // Route keys scoped to site 2 from a site-2 node; the delivering node
    // must always be in site 2 and be the in-site oracle root.
    let site2: Vec<NodeInfo> = infos
        .iter()
        .filter(|e| e.site == SiteId(2))
        .copied()
        .collect();
    for k in 0..30u64 {
        let key = NodeId::hash_of(format!("scoped:{k}").as_bytes());
        let src = site2[(k % site2.len() as u64) as usize].addr;
        let now = sim.now();
        sim.schedule_call(now, src, move |a, ctx| {
            let OverlayActor { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Payload(k), Some(SiteId(2)));
        });
        sim.run_until_idle();
        let root = site2
            .iter()
            .map(|e| e.id)
            .reduce(|best, id| if id.closer_to(key, best) { id } else { best })
            .unwrap();
        let delivered_at: Vec<NodeInfo> = sim
            .actors()
            .filter(|(_, a)| {
                a.app
                    .delivered
                    .iter()
                    .any(|(dk, p, _)| *dk == key && *p == Payload(k))
            })
            .map(|(_, a)| a.node.info())
            .collect();
        assert_eq!(delivered_at.len(), 1, "key {k}");
        assert_eq!(delivered_at[0].site, SiteId(2), "left the site for key {k}");
        assert_eq!(delivered_at[0].id, root, "wrong in-site root for key {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Routing from any source lands every key on the oracle root.
    #[test]
    fn prop_routing_delivers_to_oracle(seed in 0u64..1000, n in 4usize..80, keys in proptest::collection::vec(any::<u128>(), 1..8)) {
        let mut sim = seeded_sim(n, seed);
        let infos: Vec<NodeInfo> = sim.actors().map(|(_, a)| a.node.info()).collect();
        for (i, raw) in keys.iter().enumerate() {
            let key = NodeId(*raw);
            let src = NodeAddr(((seed as usize + i) % n) as u32);
            let payload = Payload(i as u64);
            let now = sim.now();
            sim.schedule_call(now, src, move |a, ctx| {
                let OverlayActor { node, app } = a;
                let mut net = SimNet::new(ctx);
                node.route(&mut net, app, key, payload, None);
            });
            sim.run_until_idle();
            let root = oracle_root(&infos, key);
            let delivered_at: Vec<NodeId> = sim
                .actors()
                .filter(|(_, a)| a.app.delivered.iter().any(|(dk, p, _)| *dk == key && *p == payload))
                .map(|(_, a)| a.node.id())
                .collect();
            prop_assert_eq!(delivered_at, vec![root]);
        }
    }

    /// Joining never produces unjoined nodes and deliveries always occur.
    #[test]
    fn prop_join_then_route(seed in 0u64..500, n in 2usize..16) {
        let topo = Topology::single_site(n, 0.3);
        let t2 = topo.clone();
        let mut sim = Simulation::new(topo, seed, move |addr| make_actor(addr, &t2));
        let id0 = sim.actor(NodeAddr(0)).node.id();
        sim.actor_mut(NodeAddr(0)).node.seed_state(
            pastry::RoutingTable::new(id0),
            pastry::LeafSet::new(id0),
            pastry::RoutingTable::new(id0),
            pastry::LeafSet::new(id0),
        );
        for i in 1..n as u32 {
            let now = sim.now();
            sim.schedule_call(now, NodeAddr(i), |a, ctx| {
                let mut net = SimNet::new(ctx);
                a.node.join(&mut net, NodeAddr(0));
            });
            sim.run_until_idle();
        }
        prop_assert!(sim.actors().all(|(_, a)| a.node.is_joined()));
        let key = NodeId::hash_of(&seed.to_be_bytes());
        let now = sim.now();
        sim.schedule_call(now, NodeAddr(0), move |a, ctx| {
            let OverlayActor { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Payload(seed), None);
        });
        sim.run_until_idle();
        let total: usize = sim.actors().map(|(_, a)| a.app.delivered.len()).sum();
        prop_assert_eq!(total, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Leaf-set invariant: after arbitrary insertions, each side holds the
    /// nearest ids on its arc, sorted by distance, capped at the side size.
    #[test]
    fn prop_leaf_set_keeps_nearest_per_side(
        self_id in any::<u128>(),
        ids in proptest::collection::btree_set(any::<u128>(), 1..64),
    ) {
        use pastry::LeafSet;
        let me = NodeId(self_id);
        let mut ls = LeafSet::new(me);
        for id in &ids {
            ls.insert(NodeInfo {
                id: NodeId(*id),
                addr: NodeAddr((id % u32::MAX as u128) as u32),
                site: SiteId(0),
            });
        }
        let others: Vec<NodeId> = ids
            .iter()
            .map(|i| NodeId(*i))
            .filter(|i| *i != me)
            .collect();
        prop_assert!(ls.len() <= 16);
        // Every member is distinct and not self.
        let mut seen = std::collections::HashSet::new();
        for m in ls.members() {
            prop_assert!(m.id != me);
            prop_assert!(seen.insert(m.id));
        }
        // If fewer than 16 candidates exist, all are members.
        if others.len() <= 16 {
            prop_assert_eq!(ls.len(), others.len());
        }
        // The immediate clockwise successor is always present (it is the
        // nearest node on the cw arc).
        if !others.is_empty() {
            let succ = others
                .iter()
                .min_by_key(|o| me.cw_distance(**o))
                .copied()
                .unwrap();
            prop_assert!(
                ls.members().any(|m| m.id == succ),
                "successor {:?} missing", succ
            );
        }
    }

    /// The routing-oracle root agrees across all observers: whoever you
    /// ask, the closest node to a key is the same (total order).
    #[test]
    fn prop_closest_is_consistent(key in any::<u128>(), ids in proptest::collection::btree_set(any::<u128>(), 2..40)) {
        let key = NodeId(key);
        let nodes: Vec<NodeId> = ids.iter().map(|i| NodeId(*i)).collect();
        let best = nodes
            .iter()
            .copied()
            .reduce(|a, b| if b.closer_to(key, a) { b } else { a })
            .unwrap();
        // best beats every other node from any starting order.
        for n in &nodes {
            if *n != best {
                prop_assert!(best.closer_to(key, *n));
                prop_assert!(!n.closer_to(key, best));
            }
        }
    }
}
