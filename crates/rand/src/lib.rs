//! Vendored, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the subset of the 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a deterministic implementation instead: [`rngs::SmallRng`] is xoshiro256++
//! seeded via SplitMix64, which matches the real `SmallRng`'s generator family
//! on 64-bit targets. Streams are *not* bit-identical to upstream `rand`, but
//! every consumer in this repo only relies on determinism for a fixed seed,
//! which this crate guarantees.
//!
//! Supported surface: [`Rng::gen`], [`Rng::gen_range`] (integer and float
//! half-open/inclusive ranges), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom`] (`choose`, `choose_multiple`, `shuffle`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level source of randomness: everything else derives from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` from raw random bits (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw 64-bit draw onto `[0, span)` by fixed-point multiply.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
uniform_float_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ with SplitMix64
    /// seeding — the same family the real `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements sampled without replacement (all of
        /// them if `amount >= len`), in selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
                picked.push(&self[idx[i]]);
            }
            picked.into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits} hits for p=0.25");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_multiple_is_distinct_and_complete() {
        let mut rng = SmallRng::seed_from_u64(3);
        let xs: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "no duplicates");
        let all: Vec<u32> = xs.choose_multiple(&mut rng, 500).copied().collect();
        assert_eq!(all.len(), 50, "clamped to slice length");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..32).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
