//! Property-based tests: the sandbox never panics, always terminates within
//! its budget, and evaluates arithmetic consistently with Rust.

use aascript::{eval_script, RuntimeError, Script, SharedSandbox, Value};
use proptest::prelude::*;

/// A generator of random (often invalid) source text built from language
/// fragments — exercises lexer/parser error paths.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("local x = 1".to_string()),
        Just("if x then".to_string()),
        Just("end".to_string()),
        Just("return".to_string()),
        Just("function f()".to_string()),
        Just("x = x + 1".to_string()),
        Just("while true do".to_string()),
        Just("{1, 2}".to_string()),
        Just("\"str".to_string()),
        Just("..".to_string()),
        Just("for i = 1, 10 do".to_string()),
        "[a-z]{1,6}",
        "[0-9]{1,4}",
        Just("~= == <= >=".to_string()),
    ]
}

/// A generator of arithmetic expressions with a parallel Rust evaluation.
#[derive(Debug, Clone)]
enum Arith {
    Num(i32),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_src(&self) -> String {
        match self {
            Arith::Num(n) => format!("({n})"),
            Arith::Add(a, b) => format!("({} + {})", a.to_src(), b.to_src()),
            Arith::Sub(a, b) => format!("({} - {})", a.to_src(), b.to_src()),
            Arith::Mul(a, b) => format!("({} * {})", a.to_src(), b.to_src()),
        }
    }

    fn eval(&self) -> f64 {
        match self {
            Arith::Num(n) => *n as f64,
            Arith::Add(a, b) => a.eval() + b.eval(),
            Arith::Sub(a, b) => a.eval() - b.eval(),
            Arith::Mul(a, b) => a.eval() * b.eval(),
        }
    }
}

fn arith() -> impl Strategy<Value = Arith> {
    let leaf = (-1000i32..1000).prop_map(Arith::Num);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    /// Compiling arbitrary fragment soup either succeeds or returns a
    /// CompileError — never panics.
    #[test]
    fn compile_never_panics(frags in proptest::collection::vec(fragment(), 0..12)) {
        let src = frags.join("\n");
        let _ = Script::compile(&src);
    }

    /// Instantiating any compilable fragment soup under a small budget
    /// terminates (possibly with an error) — never hangs or panics.
    #[test]
    fn execution_always_terminates(frags in proptest::collection::vec(fragment(), 0..10)) {
        let src = frags.join("\n");
        if let Ok(script) = Script::compile(&src) {
            let sandbox = SharedSandbox::new();
            let _ = script.instantiate(&sandbox, 5_000);
        }
    }

    /// Arithmetic matches Rust float semantics exactly.
    #[test]
    fn arithmetic_matches_rust(e in arith()) {
        let src = format!("function main() return {} end", e.to_src());
        let aa = eval_script(&src, 1_000_000).unwrap();
        let got = aa.invoke("main", &[], 1_000_000).unwrap().as_num().unwrap();
        prop_assert_eq!(got, e.eval());
    }

    /// Loops of any requested length either finish or exhaust the budget;
    /// the interpreter never exceeds (budget) steps of work.
    #[test]
    fn budget_bounds_loop_work(iters in 0u32..10_000) {
        let src = format!(
            "function main()\nlocal s = 0\nfor i = 1, {iters} do s = s + 1 end\nreturn s\nend"
        );
        let aa = eval_script(&src, 1_000_000).unwrap();
        match aa.invoke("main", &[], 20_000) {
            Ok(v) => {
                // Finished within budget: result must be exact.
                prop_assert_eq!(v.as_num().unwrap(), iters as f64);
            }
            Err(RuntimeError::BudgetExhausted) => {
                // Must only happen for loops long enough to plausibly burn
                // 20k steps (each iteration costs a handful).
                prop_assert!(iters > 2_000, "tiny loop {} exhausted budget", iters);
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        }
    }

    /// Table round-trip: anything stored under a string key is read back.
    #[test]
    fn table_store_roundtrip(key in "[a-zA-Z_][a-zA-Z0-9_]{0,8}", val in -1e9f64..1e9) {
        let src = format!(
            "AA = {{}}\nfunction set(v) AA[\"{key}\"] = v end\nfunction get() return AA[\"{key}\"] end"
        );
        let aa = eval_script(&src, 100_000).unwrap();
        aa.invoke("set", &[Value::Num(val)], 10_000).unwrap();
        let got = aa.invoke("get", &[], 10_000).unwrap().as_num().unwrap();
        prop_assert_eq!(got, val);
    }
}
