//! Property tests tying the `aalint` static analysis to runtime behavior,
//! plus integration-level coverage of each lint at the public
//! [`Script::analyze`] API.
//!
//! The headline guarantee (the one the Host's `LintPolicy::Deny` relies
//! on): a script the linter passes as free of undefined-global reads
//! never raises a nil-arithmetic runtime error from such a read — on
//! either engine. The generator builds handlers whose only failure mode
//! is exactly that, so the runtime outcome isolates the property.

use aascript::analysis::{has_errors, LintId, LintOptions, Severity};
use aascript::{Engine, RuntimeError, Script, SharedSandbox, Value};
use proptest::prelude::*;

const BUDGET: u64 = 100_000;

/// `g0..g3` are maybe-defined at the top level; `u0`/`u1` never are.
fn global_name(i: usize) -> String {
    if i < 4 {
        format!("g{i}")
    } else {
        format!("u{}", i - 4)
    }
}

/// A top-level prologue defining the chosen globals as numbers, then an
/// `onGet` handler that folds the chosen reads through arithmetic — the
/// one operation where an undefined (nil) global turns into a runtime
/// type error.
fn program(defined: &[bool], reads: &[usize]) -> String {
    let mut src = String::new();
    for (i, d) in defined.iter().enumerate() {
        if *d {
            src.push_str(&format!("g{i} = {}\n", i + 1));
        }
    }
    src.push_str("function onGet(q)\n  local acc = 0\n");
    for r in reads {
        src.push_str(&format!("  acc = acc + {}\n", global_name(*r)));
    }
    src.push_str("  return acc\nend\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Lint-clean scripts never raise undefined-global runtime errors in
    /// either engine; conversely (for this generator's shape, where every
    /// read is unconditional) a dirty script always does.
    #[test]
    fn lint_clean_scripts_never_hit_undefined_globals(
        defined in proptest::collection::vec(any::<bool>(), 4..5),
        reads in proptest::collection::vec(0usize..6, 0..6),
    ) {
        let src = program(&defined, &reads);
        let script = Script::compile(&src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let diags = script.analyze(&LintOptions::with_budget(BUDGET));
        let clean = !diags.iter().any(|d| d.id == LintId::UndefinedGlobal);

        // The linter must agree with ground truth on this shape.
        let truly_clean = reads.iter().all(|&r| r < 4 && defined[r]);
        prop_assert!(
            clean == truly_clean,
            "lint verdict disagrees with ground truth on:\n{}\n{:?}",
            &src, &diags
        );

        for engine in [Engine::Bytecode, Engine::TreeWalk] {
            let sandbox = SharedSandbox::new();
            let aa = script.clone().with_engine(engine)
                .instantiate(&sandbox, BUDGET)
                .unwrap_or_else(|e| panic!("top level must run: {e}\n{src}"));
            let res = aa.invoke("onGet", &[Value::Nil], BUDGET);
            if clean {
                prop_assert!(
                    res.is_ok(),
                    "lint-clean script raised {:?} on {:?}:\n{}",
                    &res, engine, &src
                );
            } else {
                prop_assert!(
                    matches!(res, Err(RuntimeError::TypeError(_))),
                    "dirty script should raise a type error, got {:?} on {:?}:\n{}",
                    &res, engine, &src
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// One integration test per lint, at the public API.
// ---------------------------------------------------------------------------

fn lint(src: &str) -> Vec<aascript::analysis::Diagnostic> {
    Script::compile(src)
        .expect("lint fixtures compile")
        .analyze(&LintOptions::with_budget(10_000))
}

#[test]
fn aa001_unknown_handler_is_an_error_with_suggestion() {
    let diags = lint("AA = { onGte = function(q) return true end }");
    let d = diags
        .iter()
        .find(|d| d.id == LintId::UnknownHandler)
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("onGet"), "did-you-mean: {}", d.message);
    assert!(d.pos.line >= 1, "diagnostic must carry a source span");
}

#[test]
fn aa002_undefined_global_read_is_an_error() {
    let diags = lint("function onGet(q) return missing_flag end");
    let d = diags
        .iter()
        .find(|d| d.id == LintId::UndefinedGlobal)
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("missing_flag"));
}

#[test]
fn aa002_conditionally_defined_global_is_a_warning() {
    // `flag` is stored somewhere but not on every path to the read (the
    // condition must not involve a call: calls conservatively credit all
    // chunk-stored globals, by design).
    let src = "cond = 1\n\
               if cond then flag = 1 end\n\
               function onGet(q) return flag end";
    let diags = lint(src);
    let d = diags
        .iter()
        .find(|d| d.id == LintId::UndefinedGlobal)
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn aa003_unknown_stdlib_member_is_an_error() {
    let diags = lint("function onGet(q) return math.flor(1.5) end");
    let d = diags
        .iter()
        .find(|d| d.id == LintId::UnknownStdlibMember)
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("floor"), "did-you-mean: {}", d.message);
}

#[test]
fn aa004_stdlib_arity_mismatch_is_an_error() {
    let diags = lint("function onGet(q) return math.floor(1.5, 2, 3) end");
    let d = diags.iter().find(|d| d.id == LintId::StdlibMisuse).unwrap();
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn aa005_global_write_in_handler_is_a_warning() {
    let diags = lint("function onGet(q) leak = q return true end");
    let d = diags
        .iter()
        .find(|d| d.id == LintId::GlobalWriteOutsideAa)
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn aa006_unreachable_code_after_return_is_a_warning() {
    let src = "function onGet(q)\n  if q then return 1 else return 2 end\n  leak = q\nend";
    let diags = lint(src);
    let d = diags
        .iter()
        .find(|d| d.id == LintId::UnreachableCode)
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.pos.line, 3, "span points at the dead statement");
}

#[test]
fn aa007_over_budget_handler_is_an_error() {
    let src = "function onGet(q)\n\
               local s = 0\n\
               for i = 1, 100000 do s = s + i end\n\
               return s\nend";
    let diags = lint(src);
    let d = diags
        .iter()
        .find(|d| d.id == LintId::CostExceedsBudget)
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn aa008_data_dependent_loop_is_a_warning_not_an_error() {
    let src = "function onGet(q)\n\
               local i = 0\n\
               while i < q do i = i + 1 end\n\
               return i\nend";
    let diags = lint(src);
    assert!(diags.iter().any(|d| d.id == LintId::CostUnbounded));
    assert!(!has_errors(&diags), "unbounded is a warning, not an error");
}

// ---------------------------------------------------------------------------
// The paper's Fig. 5 handler: lint-clean and statically bounded.
// ---------------------------------------------------------------------------

/// Verbatim from the paper (Fig. 5), as in `examples/password_policy.rs`.
const FIG5: &str = r#"
AA = {NodeId = 27,
      IP = "131.94.130.118",
      Password = "3053482032"}

function onGet(caller, password)
    if (password == AA.Password) then
        return AA.NodeId
    end
    return nil
end
"#;

#[test]
fn fig5_password_handler_is_lint_clean_and_bounded() {
    let script = Script::compile(FIG5).unwrap();
    let diags = script.analyze(&LintOptions::with_budget(10_000));
    assert!(
        diags.is_empty(),
        "Fig. 5 must pass a default-budget lint: {diags:?}"
    );
    // Even a tiny budget admits it: the handler is a handful of opcodes,
    // so the cost analysis proves a finite bound far below 100.
    let tight = script.analyze(&LintOptions::with_budget(100));
    assert!(
        !tight.iter().any(|d| d.id == LintId::CostExceedsBudget),
        "Fig. 5 worst-case cost must bound below 100 opcodes: {tight:?}"
    );
    // And the bound is honest: invoking with that budget succeeds.
    let sandbox = SharedSandbox::new();
    let aa = script.instantiate(&sandbox, 10_000).unwrap();
    let granted = aa
        .invoke("onGet", &[Value::str("joe"), Value::str("3053482032")], 100)
        .unwrap();
    assert!(granted.truthy());
}
