//! Differential fuzzing: the bytecode VM and the tree-walking oracle must
//! agree on return values, on mutated global state, on runtime errors
//! (message included), and on budget exhaustion.
//!
//! The generator produces structured programs rather than token soup so
//! every case parses and exercises the interesting paths: slot-resolved
//! locals, cell-captured closures, loops with hidden registers, generic
//! `pairs` iteration, table stores, and deliberate runtime errors.
//!
//! Two engine divergences are intentional and documented in DESIGN.md §10,
//! and the generator avoids them by construction:
//!
//! 1. Budget accounting differs (per opcode vs per AST node), so programs
//!    either do bounded work far below the budget or spin forever — never
//!    straddle the limit.
//! 2. The compiler scopes lexically, so closures only reference variables
//!    declared before them textually (the pool locals at the top of
//!    `main`, loop variables, or their own parameter).

use aascript::{display_value, Engine, RuntimeError, Script, SharedSandbox};
use proptest::prelude::*;

/// Locals declared at the top of `main` (or globals in top-level programs).
const POOL: [&str; 4] = ["va", "vb", "vc", "vd"];

const BUDGET: u64 = 1_000_000;

// ---------------------------------------------------------------------------
// Program model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Num(i32),
    Str(u8),
    /// A pool variable (may hold a number, string, bool, or function).
    Var(usize),
    /// The innermost numeric-for variable, or `va` outside any loop.
    LoopVar,
    /// A global `g0`/`g1` (nil until first assigned).
    Global(u8),
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Cmp(&'static str, Box<Expr>, Box<Expr>),
    Logic(&'static str, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Not(Box<Expr>),
    Concat(Box<Expr>, Box<Expr>),
    /// `T[k]` on the global scratch table.
    Index(u8),
    /// `va(k)` — calls whatever the pool var holds (often a type error).
    Call(usize, i32),
}

#[derive(Debug, Clone)]
enum Stmt {
    Assign(usize, Expr),
    GlobalSet(u8, Expr),
    TableSet(u8, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    For(u8, Vec<Stmt>),
    While(u8, Vec<Stmt>),
    Repeat(u8, Vec<Stmt>),
    /// `if e then break end` — also exercises stray-break semantics when it
    /// appears outside any loop.
    BreakIf(Expr),
    /// Store an escaping closure capturing pool vars: `va = function(p0) …`.
    StoreFn(usize, Expr),
    /// Define-and-call a throwaway closure: `va = (function(p1) … end)(e)`.
    CallNow(usize, Expr, Expr),
    /// A statement that raises a runtime error (possibly pcall-contained).
    Raise(u8),
    /// Fold the scratch table through `pairs` into `g0` (iteration order).
    SumPairs,
}

// ---------------------------------------------------------------------------
// Rendering to source
// ---------------------------------------------------------------------------

/// Renders an expression. `lvl` is the numeric-for nesting depth (names the
/// loop variable); `in_stored_fn` restricts the expression to references
/// that are safe inside an escaping closure: the parameter instead of loop
/// variables (which are out of scope) and no calls (a stored function
/// calling a pool var could recurse through itself, and the engines may
/// interleave StackOverflow/BudgetExhausted differently near the limits).
fn rexpr(e: &Expr, lvl: u32, in_stored_fn: bool) -> String {
    match e {
        Expr::Num(n) => format!("({n})"),
        Expr::Str(n) => format!("\"s{n}\""),
        Expr::Var(i) => POOL[*i].to_string(),
        Expr::LoopVar => {
            if in_stored_fn {
                "p0".to_string()
            } else if lvl > 0 {
                format!("i{}", lvl - 1)
            } else {
                "va".to_string()
            }
        }
        Expr::Global(g) => format!("g{}", g % 2),
        Expr::Bin(op, a, b) => format!(
            "({} {op} {})",
            rexpr(a, lvl, in_stored_fn),
            rexpr(b, lvl, in_stored_fn)
        ),
        Expr::Cmp(op, a, b) => format!(
            "({} {op} {})",
            rexpr(a, lvl, in_stored_fn),
            rexpr(b, lvl, in_stored_fn)
        ),
        Expr::Logic(op, a, b) => format!(
            "({} {op} {})",
            rexpr(a, lvl, in_stored_fn),
            rexpr(b, lvl, in_stored_fn)
        ),
        Expr::Neg(a) => format!("(-{})", rexpr(a, lvl, in_stored_fn)),
        Expr::Not(a) => format!("(not {})", rexpr(a, lvl, in_stored_fn)),
        Expr::Concat(a, b) => format!(
            "({} .. {})",
            rexpr(a, lvl, in_stored_fn),
            rexpr(b, lvl, in_stored_fn)
        ),
        Expr::Index(k) => format!("T[{}]", k % 8),
        Expr::Call(i, k) => {
            if in_stored_fn {
                format!("({k})")
            } else {
                format!("{}({k})", POOL[*i])
            }
        }
    }
}

fn rstmt(s: &Stmt, lvl: u32, out: &mut String) {
    match s {
        Stmt::Assign(i, e) => {
            out.push_str(&format!("{} = {}\n", POOL[*i], rexpr(e, lvl, false)));
        }
        Stmt::GlobalSet(g, e) => {
            out.push_str(&format!("g{} = {}\n", g % 2, rexpr(e, lvl, false)));
        }
        Stmt::TableSet(k, e) => {
            out.push_str(&format!("T[{}] = {}\n", k % 8, rexpr(e, lvl, false)));
        }
        Stmt::If(c, t, f) => {
            out.push_str(&format!("if {} then\n", rexpr(c, lvl, false)));
            for s in t {
                rstmt(s, lvl, out);
            }
            if !f.is_empty() {
                out.push_str("else\n");
                for s in f {
                    rstmt(s, lvl, out);
                }
            }
            out.push_str("end\n");
        }
        Stmt::For(n, b) => {
            out.push_str(&format!("for i{lvl} = 1, {} do\n", n % 6 + 1));
            for s in b {
                rstmt(s, lvl + 1, out);
            }
            out.push_str("end\n");
        }
        Stmt::While(n, b) => {
            out.push_str(&format!(
                "local w{lvl} = 0\nwhile w{lvl} < {} do\nw{lvl} = w{lvl} + 1\n",
                n % 5 + 1
            ));
            for s in b {
                rstmt(s, lvl + 1, out);
            }
            out.push_str("end\n");
        }
        Stmt::Repeat(n, b) => {
            out.push_str(&format!("local r{lvl} = 0\nrepeat\nr{lvl} = r{lvl} + 1\n"));
            for s in b {
                rstmt(s, lvl + 1, out);
            }
            out.push_str(&format!("until r{lvl} >= {}\n", n % 4 + 1));
        }
        Stmt::BreakIf(e) => {
            out.push_str(&format!("if {} then break end\n", rexpr(e, lvl, false)));
        }
        Stmt::StoreFn(i, e) => {
            out.push_str(&format!(
                "{} = function(p0) return p0 * 2 + {} end\n",
                POOL[*i],
                rexpr(e, 0, true)
            ));
        }
        Stmt::CallNow(i, a, b) => {
            out.push_str(&format!(
                "{} = (function(p1) return p1 - {} end)({})\n",
                POOL[*i],
                rexpr(a, lvl, false),
                rexpr(b, lvl, false)
            ));
        }
        Stmt::Raise(k) => out.push_str(match k % 4 {
            0 => "va = g9.x\n",
            1 => "vb = g9(1)\n",
            2 => "error(\"boom\")\n",
            _ => "local e0 = pcall(function() return g9.y end)\nvc = e0.ok\n",
        }),
        Stmt::SumPairs => out.push_str(
            "for k0, u0 in pairs(T) do g0 = tostring(g0) .. tostring(k0) .. tostring(u0) end\n",
        ),
    }
}

/// A full script: globals, then `main` declaring the pool locals, running
/// the generated statements, and returning a digest of the pool state.
fn program(stmts: &[Stmt]) -> String {
    let mut src = String::from("T = {}\nfunction main()\n");
    for (i, name) in POOL.iter().enumerate() {
        src.push_str(&format!("local {name} = {}\n", i + 1));
    }
    for s in stmts {
        rstmt(s, 0, &mut src);
    }
    src.push_str(
        "return tostring(va) .. \"|\" .. tostring(vb) .. \"|\" .. tostring(vc) \
         .. \"|\" .. tostring(vd)\nend\n",
    );
    src
}

// ---------------------------------------------------------------------------
// Running both engines
// ---------------------------------------------------------------------------

type Outcome = (Result<String, RuntimeError>, Vec<String>);

/// Instantiates `src` on the given engine, invokes `main`, and snapshots
/// the observable global state.
fn run_engine(src: &str, engine: Engine, budget: u64) -> Outcome {
    let sandbox = SharedSandbox::new();
    let script = Script::compile(src)
        .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"))
        .with_engine(engine);
    let aa = script
        .instantiate(&sandbox, budget)
        .unwrap_or_else(|e| panic!("trivial top level must run: {e:?}\n{src}"));
    let result = aa.invoke("main", &[], budget).map(|v| display_value(&v));
    let state = ["g0", "g1", "T"]
        .iter()
        .map(|n| display_value(&aa.global(n)))
        .collect();
    (result, state)
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

fn expr() -> BoxedStrategy<Expr> {
    let bin_op = prop_oneof![
        Just("+"),
        Just("-"),
        Just("*"),
        Just("/"),
        Just("%"),
        Just("^"),
    ]
    .boxed();
    let cmp_op = prop_oneof![
        Just("=="),
        Just("~="),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">="),
    ]
    .boxed();
    let logic_op = prop_oneof![Just("and"), Just("or")].boxed();
    let leaf = prop_oneof![
        (-99i32..100).prop_map(Expr::Num),
        (0u8..4).prop_map(Expr::Str),
        (0usize..4).prop_map(Expr::Var),
        Just(Expr::LoopVar),
        (0u8..2).prop_map(Expr::Global),
        (0u8..8).prop_map(Expr::Index),
    ];
    leaf.prop_recursive(3, 24, 2, move |inner| {
        prop_oneof![
            (bin_op.clone(), inner.clone(), inner.clone()).prop_map(|(o, a, b)| Expr::Bin(
                o,
                Box::new(a),
                Box::new(b)
            )),
            (cmp_op.clone(), inner.clone(), inner.clone()).prop_map(|(o, a, b)| Expr::Cmp(
                o,
                Box::new(a),
                Box::new(b)
            )),
            (logic_op.clone(), inner.clone(), inner.clone()).prop_map(|(o, a, b)| Expr::Logic(
                o,
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Concat(Box::new(a), Box::new(b))),
            (0usize..4, -9i32..10).prop_map(|(i, k)| Expr::Call(i, k)),
        ]
    })
}

fn stmt() -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (0usize..4, expr()).prop_map(|(i, e)| Stmt::Assign(i, e)),
        (0usize..4, expr()).prop_map(|(i, e)| Stmt::Assign(i, e)),
        (0u8..2, expr()).prop_map(|(g, e)| Stmt::GlobalSet(g, e)),
        (0u8..8, expr()).prop_map(|(k, e)| Stmt::TableSet(k, e)),
        (0usize..4, expr()).prop_map(|(i, e)| Stmt::StoreFn(i, e)),
        (0usize..4, expr(), expr()).prop_map(|(i, a, b)| Stmt::CallNow(i, a, b)),
        (0u8..4).prop_map(Stmt::Raise),
        expr().prop_map(Stmt::BreakIf),
        Just(Stmt::SumPairs),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        let body = proptest::collection::vec(inner.clone(), 0..4).boxed();
        prop_oneof![
            (
                expr(),
                body.clone(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, f)| Stmt::If(c, t, f)),
            (0u8..6, body.clone()).prop_map(|(n, b)| Stmt::For(n, b)),
            (0u8..5, body.clone()).prop_map(|(n, b)| Stmt::While(n, b)),
            (0u8..4, body).prop_map(|(n, b)| Stmt::Repeat(n, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The headline property: handler invocation is observationally
    /// identical across engines — return value, error (message and all),
    /// and every observable global afterwards.
    #[test]
    fn vm_matches_treewalker_on_handlers(stmts in proptest::collection::vec(stmt(), 0..8)) {
        let src = program(&stmts);
        let vm = run_engine(&src, Engine::Bytecode, BUDGET);
        let tw = run_engine(&src, Engine::TreeWalk, BUDGET);
        prop_assert!(
            vm == tw,
            "engines diverged on:\n{}\n  vm: {:?}\n  tw: {:?}",
            src, vm, tw
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Same property for top-level (instantiate-time) execution, where the
    /// VM lowers top-level locals to instance globals.
    #[test]
    fn vm_matches_treewalker_at_top_level(stmts in proptest::collection::vec(stmt(), 0..6)) {
        let mut src = String::from("T = {}\ng0 = 0\ng1 = 0\n");
        for (i, name) in POOL.iter().enumerate() {
            src.push_str(&format!("local {name} = {}\n", i + 1));
        }
        for s in &stmts {
            rstmt(s, 0, &mut src);
        }
        let run = |engine: Engine| -> Result<Vec<String>, RuntimeError> {
            let sandbox = SharedSandbox::new();
            let script = Script::compile(&src)
                .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"))
                .with_engine(engine);
            let aa = script.instantiate(&sandbox, BUDGET)?;
            Ok(["va", "vb", "vc", "vd", "g0", "g1", "T"]
                .iter()
                .map(|n| display_value(&aa.global(n)))
                .collect())
        };
        let vm = run(Engine::Bytecode);
        let tw = run(Engine::TreeWalk);
        prop_assert!(
            vm == tw,
            "engines diverged on:\n{}\n  vm: {:?}\n  tw: {:?}",
            src, vm, tw
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Programs ending in an infinite loop reach the same outcome on both
    /// engines: either an identical error raised by the preamble, or
    /// `BudgetExhausted` from the spin (never a successful return, unless
    /// a stray `break` in the preamble legitimately ends `main` early —
    /// in which case both engines must agree on that too).
    #[test]
    fn budget_exhaustion_matches(
        pre in proptest::collection::vec(stmt(), 0..4),
        which in 0u8..3,
    ) {
        // The busy variant mutates a *local*: per-opcode and per-AST-node
        // budgets run out after different iteration counts (the documented
        // accounting divergence), so observable globals must not record
        // how far the spin got.
        let spin = match which {
            0 => "while true do end\n",
            1 => "repeat until false\n",
            _ => "local s9 = 0\nwhile true do s9 = s9 + 1 end\n",
        };
        let mut body = pre.clone();
        let mut src = String::from("T = {}\nfunction main()\n");
        for (i, name) in POOL.iter().enumerate() {
            src.push_str(&format!("local {name} = {}\n", i + 1));
        }
        for s in &mut body {
            rstmt(s, 0, &mut src);
        }
        src.push_str(spin);
        src.push_str("end\n");
        let vm = run_engine(&src, Engine::Bytecode, 60_000);
        let tw = run_engine(&src, Engine::TreeWalk, 60_000);
        prop_assert!(
            vm == tw,
            "engines diverged on:\n{}\n  vm: {:?}\n  tw: {:?}",
            src, vm, tw
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic differential cases for the sandbox limits
// ---------------------------------------------------------------------------

#[test]
fn both_engines_exhaust_budget_on_spin() {
    let src = "function main() while true do end end";
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        let (result, _) = run_engine(src, engine, 10_000);
        assert_eq!(result, Err(RuntimeError::BudgetExhausted), "{engine:?}");
    }
}

#[test]
fn both_engines_overflow_on_deep_recursion() {
    // Both engines share the 120-frame call-depth limit; with a budget far
    // above what 120 calls can burn, both must report StackOverflow.
    let src = "function f() return f() end\nfunction main() return f() end";
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        let (result, _) = run_engine(src, engine, 10_000_000);
        assert_eq!(result, Err(RuntimeError::StackOverflow), "{engine:?}");
    }
}

#[test]
fn pcall_cannot_contain_budget_exhaustion_on_either_engine() {
    let src = r#"
        function spin() while true do end end
        function main()
            local r = pcall(spin)
            return "survived"
        end
    "#;
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        let (result, _) = run_engine(src, engine, 10_000);
        assert_eq!(result, Err(RuntimeError::BudgetExhausted), "{engine:?}");
    }
}
