//! A battery of language-semantics tests pinning AAScript to its intended
//! (Lua-5.1-style) behaviour: scoping, closures, evaluation order,
//! truthiness, and the table border.

use aascript::{display_value, eval_script, RuntimeError, Value};

fn run_main(src: &str) -> Value {
    let aa = eval_script(src, 1_000_000).expect("script runs");
    aa.invoke("main", &[], 1_000_000).expect("main runs")
}

fn num(src: &str) -> f64 {
    run_main(src).as_num().expect("number result")
}

fn text(src: &str) -> String {
    display_value(&run_main(src))
}

#[test]
fn local_shadows_global() {
    assert_eq!(
        num(r#"
            x = 1
            function main()
                local x = 2
                return x
            end
        "#),
        2.0
    );
}

#[test]
fn global_assignment_inside_function_is_visible_outside() {
    assert_eq!(
        num(r#"
            function set() y = 7 end
            function main()
                set()
                return y
            end
        "#),
        7.0
    );
}

#[test]
fn block_scopes_do_not_leak_locals() {
    assert_eq!(
        text(
            r#"
            function main()
                if true then
                    local hidden = 1
                end
                return tostring(hidden)
            end
        "#
        ),
        "nil"
    );
}

#[test]
fn loop_variable_is_fresh_per_iteration() {
    // Closures captured per iteration must see their own `i`.
    assert_eq!(
        num(r#"
            function main()
                local fns = {}
                for i = 1, 3 do
                    table.insert(fns, function() return i end)
                end
                return fns[1]() * 100 + fns[2]() * 10 + fns[3]()
            end
        "#),
        123.0
    );
}

#[test]
fn two_closures_share_one_upvalue() {
    assert_eq!(
        num(r#"
            function pair()
                local n = 0
                local inc = function() n = n + 1 end
                local get = function() return n end
                return {inc = inc, get = get}
            end
            function main()
                local p = pair()
                p.inc()
                p.inc()
                return p.get()
            end
        "#),
        2.0
    );
}

#[test]
fn and_or_return_operands_not_booleans() {
    assert_eq!(
        text(r#"function main() return nil or "fallback" end"#),
        "fallback"
    );
    assert_eq!(
        text(r#"function main() return 1 and "second" end"#),
        "second"
    );
    assert_eq!(
        text(r#"function main() return false and crash() end"#),
        "false"
    );
    assert_eq!(text(r#"function main() return 7 or crash() end"#), "7");
}

#[test]
fn short_circuit_prevents_side_effects() {
    assert_eq!(
        num(r#"
            calls = 0
            function bump() calls = calls + 1
            return true end
            function main()
                local _ = false and bump()
                local _ = true or bump()
                return calls
            end
        "#),
        0.0
    );
}

#[test]
fn argument_evaluation_is_left_to_right() {
    assert_eq!(
        text(
            r#"
            log = ""
            function mark(s) log = log .. s
            return s end
            function take(a, b, c) return log end
            function main()
                return take(mark("a"), mark("b"), mark("c"))
            end
        "#
        ),
        "abc"
    );
}

#[test]
fn missing_arguments_are_nil_extra_ignored() {
    assert_eq!(
        text(
            r#"
            function f(a, b) return tostring(a) .. "/" .. tostring(b) end
            function main() return f(1) end
        "#
        ),
        "1/nil"
    );
    assert_eq!(
        num(r#"
            function f(a) return a end
            function main() return f(5, 6, 7) end
        "#),
        5.0
    );
}

#[test]
fn numeric_for_edge_cases() {
    // Zero iterations when start > stop with positive step.
    assert_eq!(
        num("function main()\nlocal n = 0\nfor i = 5, 1 do n = n + 1 end\nreturn n end"),
        0.0
    );
    // Fractional steps.
    assert_eq!(
        num("function main()\nlocal n = 0\nfor i = 0, 1, 0.25 do n = n + 1 end\nreturn n end"),
        5.0
    );
}

#[test]
fn table_border_semantics() {
    assert_eq!(
        num("function main()\nlocal t = {1, 2, 3}\nreturn #t end"),
        3.0
    );
    // Setting t[5] does not extend the border past the hole.
    assert_eq!(
        num("function main()\nlocal t = {1, 2}\nt[5] = 9\nreturn #t end"),
        2.0
    );
    // Removing the border element shrinks it.
    assert_eq!(
        num("function main()\nlocal t = {1, 2, 3}\nt[3] = nil\nreturn #t end"),
        2.0
    );
}

#[test]
fn string_length_and_comparison() {
    assert_eq!(num(r#"function main() return #"hello" end"#), 5.0);
    assert_eq!(
        text(r#"function main() return tostring("abc" < "abd") end"#),
        "true"
    );
}

#[test]
fn nested_function_declarations_on_tables() {
    assert_eq!(
        num(r#"
            ns = {inner = {}}
            function ns.inner.f(x) return x + 1 end
            function main() return ns.inner.f(41) end
        "#),
        42.0
    );
}

#[test]
fn repeat_body_runs_at_least_once() {
    assert_eq!(
        num("function main()\nlocal n = 0\nrepeat n = n + 1 until true\nreturn n end"),
        1.0
    );
}

#[test]
fn break_only_exits_innermost_loop() {
    assert_eq!(
        num(r#"
            function main()
                local n = 0
                for i = 1, 3 do
                    for j = 1, 10 do
                        if j == 2 then break end
                        n = n + 1
                    end
                end
                return n
            end
        "#),
        3.0
    );
}

#[test]
fn return_inside_loop_exits_function() {
    assert_eq!(
        num(r#"
            function main()
                for i = 1, 100 do
                    if i == 7 then return i end
                end
                return -1
            end
        "#),
        7.0
    );
}

#[test]
fn pairs_iterates_deterministically_sorted() {
    // BTreeMap order: integer keys first (by value), then strings (lex).
    assert_eq!(
        text(
            r#"
            function main()
                local t = {z = 1, a = 2, [10] = 3, [2] = 4}
                local order = ""
                for k, v in pairs(t) do
                    order = order .. tostring(k) .. ";"
                end
                return order
            end
        "#
        ),
        "2;10;a;z;"
    );
}

#[test]
fn mutating_during_pairs_is_safe_snapshot() {
    assert_eq!(
        num(r#"
            function main()
                local t = {a = 1, b = 2}
                local n = 0
                for k, v in pairs(t) do
                    t[k .. "x"] = 9 -- grows the table mid-walk
                    n = n + 1
                end
                return n
            end
        "#),
        2.0
    );
}

#[test]
fn nan_comparisons_are_false() {
    assert_eq!(
        text(
            r#"
            function main()
                local nan = 0 / 0
                return tostring(nan < 1) .. tostring(nan >= 1) .. tostring(nan == nan)
            end
        "#
        ),
        "falsefalsefalse"
    );
}

#[test]
fn division_by_zero_yields_infinity() {
    assert_eq!(num("function main() return 1 / 0 end"), f64::INFINITY);
    assert_eq!(num("function main() return -1 / 0 end"), f64::NEG_INFINITY);
}

#[test]
fn deep_recursion_is_stopped_cleanly() {
    let aa = eval_script(
        "function f(n) if n == 0 then return 0 end\nreturn f(n - 1) end",
        1_000_000,
    )
    .unwrap();
    // Shallow recursion fine…
    assert!(aa.invoke("f", &[Value::Num(50.0)], 1_000_000).is_ok());
    // …deep recursion rejected without blowing the Rust stack.
    let err = aa
        .invoke("f", &[Value::Num(100_000.0)], 100_000_000)
        .unwrap_err();
    assert!(matches!(
        err,
        RuntimeError::StackOverflow | RuntimeError::BudgetExhausted
    ));
}

#[test]
fn self_method_chains() {
    assert_eq!(
        num(r#"
            acc = {total = 0}
            function acc.add(self, x)
                self.total = self.total + x
                return self
            end
            function main()
                acc:add(1)
                acc:add(2)
                acc:add(39)
                return acc.total
            end
        "#),
        42.0
    );
}
