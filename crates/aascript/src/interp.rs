//! The tree-walking evaluator with its sandbox protections.
//!
//! Every AST node visited consumes one unit of the instruction budget; when
//! the budget runs out the handler is terminated immediately with
//! [`RuntimeError::BudgetExhausted`]. This mirrors the paper's modified Lua
//! interpreter, which "strictly limits the number of bytecode instructions a
//! handler can execute" (§III.B). A call-depth limit guards the Rust stack.

use crate::ast::*;
use crate::error::RuntimeError;
use crate::value::{Closure, Key, Table, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One lexical scope: a mutable variable map plus a parent link.
///
/// A *sealed* scope (the shared stdlib environment) can be read through but
/// never mutated by scripts: assignments to names found only in sealed
/// scopes create instance-global shadows instead. This lets many AA
/// instances share one stdlib environment safely.
#[derive(Debug, Default)]
pub struct Scope {
    vars: RefCell<HashMap<Name, Value>>,
    parent: Option<Env>,
    sealed: bool,
}

/// A shared handle to a scope chain.
pub type Env = Rc<Scope>;

/// Creates a fresh root (global) scope.
pub fn root_env() -> Env {
    Rc::new(Scope::default())
}

/// Marks construction of a sealed scope: scripts can read its bindings but
/// assignments will shadow them in the instance scope instead of mutating.
pub fn sealed_env_from(env: Env) -> Env {
    Rc::new(Scope {
        vars: RefCell::new(env.vars.borrow().clone()),
        parent: env.parent.clone(),
        sealed: true,
    })
}

/// Creates a child scope of `parent`.
pub fn child_env(parent: &Env) -> Env {
    Rc::new(Scope {
        vars: RefCell::new(HashMap::new()),
        parent: Some(Rc::clone(parent)),
        sealed: false,
    })
}

/// Approximate heap footprint of the bindings in exactly this scope (not
/// its parents), used for the Fig. 8c memory accounting.
pub fn scope_size_bytes(env: &Env) -> usize {
    env.vars
        .borrow()
        .iter()
        .map(|(k, v)| k.len() + v.size_bytes())
        .sum()
}

/// Declares `name` in exactly this scope (shadowing outer bindings).
pub fn declare(env: &Env, name: &str, value: Value) {
    let mut vars = env.vars.borrow_mut();
    // Fast path: redeclaration updates in place without allocating a key.
    if let Some(slot) = vars.get_mut(name) {
        *slot = value;
    } else {
        vars.insert(Rc::from(name), value);
    }
}

/// [`declare`] with an already-interned name: never allocates.
pub fn declare_interned(env: &Env, name: &Name, value: Value) {
    let mut vars = env.vars.borrow_mut();
    if let Some(slot) = vars.get_mut(&**name) {
        *slot = value;
    } else {
        vars.insert(Rc::clone(name), value);
    }
}

/// Reads a variable by walking the scope chain; absent names read as nil
/// (Lua semantics).
pub fn lookup(env: &Env, name: &str) -> Value {
    let mut cur = Some(env);
    while let Some(scope) = cur {
        if let Some(v) = scope.vars.borrow().get(name) {
            return v.clone();
        }
        cur = scope.parent.as_ref();
    }
    Value::Nil
}

/// Assigns to the innermost *unsealed* scope declaring `name`; if none
/// does, the assignment creates a binding in `globals` (the instance's
/// global scope), like Lua's global assignment. Sealed scopes are never
/// mutated — names found only there are shadowed in `globals`.
pub fn assign(env: &Env, globals: &Env, name: &Name, value: Value) {
    let mut cur = Rc::clone(env);
    loop {
        if !cur.sealed {
            // One borrow, one hash: update in place when the binding exists.
            if let Some(slot) = cur.vars.borrow_mut().get_mut(&**name) {
                *slot = value;
                return;
            }
        }
        match &cur.parent {
            Some(p) => {
                let next = Rc::clone(p);
                cur = next;
            }
            None => {
                declare_interned(globals, name, value);
                return;
            }
        }
    }
}

enum Flow {
    Normal,
    Break,
    Return(Value),
}

/// The evaluator. Holds only the sandbox counters; all program state lives
/// in [`Env`] scope chains and shared tables.
#[derive(Debug)]
pub struct Interp {
    /// Remaining instruction budget for the current invocation.
    pub budget: u64,
    depth: u32,
    max_depth: u32,
    globals: Env,
}

impl Interp {
    /// Creates an evaluator with the given instruction budget; `globals` is
    /// where global assignments land.
    pub fn new(budget: u64, globals: Env) -> Self {
        Interp {
            budget,
            depth: 0,
            max_depth: 120,
            globals,
        }
    }

    fn step(&mut self) -> Result<(), RuntimeError> {
        if self.budget == 0 {
            return Err(RuntimeError::BudgetExhausted);
        }
        self.budget -= 1;
        Ok(())
    }

    /// Executes a whole script block in `env`, returning the value of a
    /// top-level `return` (or nil).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`], including budget exhaustion.
    pub fn exec_chunk(&mut self, block: &Block, env: &Env) -> Result<Value, RuntimeError> {
        match self.exec_block(block, env)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Nil),
        }
    }

    /// Calls a function value with arguments.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TypeError`] when `f` is not callable, plus anything
    /// the body raises.
    pub fn call(&mut self, f: &Value, args: &[Value]) -> Result<Value, RuntimeError> {
        self.step()?;
        match f {
            // `pcall(f, ...)` is a special form: it needs the interpreter
            // to run `f` and catch script-level errors. Sandbox errors
            // (budget exhaustion, stack overflow) are deliberately NOT
            // catchable — a handler cannot shield itself from termination.
            Value::Native("pcall", _) => {
                let Some(inner) = args.first() else {
                    return Err(RuntimeError::Other("pcall needs a function".into()));
                };
                let result = self.call(inner, &args[1..]);
                let table = crate::value::Table::new();
                let table = std::rc::Rc::new(std::cell::RefCell::new(table));
                match result {
                    Ok(v) => {
                        let mut t = table.borrow_mut();
                        t.set(Key::Str("ok".into()), Value::Bool(true));
                        t.set(Key::Str("value".into()), v);
                    }
                    Err(e @ RuntimeError::BudgetExhausted)
                    | Err(e @ RuntimeError::StackOverflow) => return Err(e),
                    Err(e) => {
                        let mut t = table.borrow_mut();
                        t.set(Key::Str("ok".into()), Value::Bool(false));
                        t.set(Key::Str("error".into()), Value::str(e.to_string()));
                    }
                }
                Ok(Value::Table(table))
            }
            Value::Func(closure) => {
                if self.depth >= self.max_depth {
                    return Err(RuntimeError::StackOverflow);
                }
                self.depth += 1;
                let scope = child_env(&closure.env);
                for (i, p) in closure.def.params.iter().enumerate() {
                    declare_interned(&scope, p, args.get(i).cloned().unwrap_or(Value::Nil));
                }
                let result = self.exec_block(&closure.def.body, &scope);
                self.depth -= 1;
                match result? {
                    Flow::Return(v) => Ok(v),
                    _ => Ok(Value::Nil),
                }
            }
            Value::Native(_, nf) => nf(args),
            // A bytecode closure can flow into tree-walked code through a
            // shared global or table; delegate to the VM on the same budget.
            Value::Compiled(_) => {
                let mut vm = crate::vm::Vm::new(self.budget, Rc::clone(&self.globals));
                let result = vm.call(f, args);
                self.budget = vm.budget;
                result
            }
            other => Err(RuntimeError::TypeError(format!(
                "attempt to call a {} value",
                other.type_name()
            ))),
        }
    }

    fn exec_block(&mut self, block: &Block, env: &Env) -> Result<Flow, RuntimeError> {
        for stmt in &block.stmts {
            match self.exec_stmt(stmt, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &Env) -> Result<Flow, RuntimeError> {
        self.step()?;
        match stmt {
            Stmt::Local(name, init) => {
                let v = match init {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Nil,
                };
                declare_interned(env, name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(target, expr) => {
                let v = self.eval(expr, env)?;
                self.assign_target(target, v, env)?;
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            Stmt::If(arms, else_body) => {
                for (cond, body) in arms {
                    if self.eval(cond, env)?.truthy() {
                        let scope = child_env(env);
                        return self.exec_block(body, &scope);
                    }
                }
                if let Some(body) = else_body {
                    let scope = child_env(env);
                    return self.exec_block(body, &scope);
                }
                Ok(Flow::Normal)
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, env)?.truthy() {
                    self.step()?;
                    let scope = child_env(env);
                    match self.exec_block(body, &scope)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Repeat(body, cond) => {
                loop {
                    self.step()?;
                    let scope = child_env(env);
                    match self.exec_block(body, &scope)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal => {}
                    }
                    // The until condition sees the body's scope in Lua; we
                    // approximate with the parent scope.
                    if self.eval(cond, &scope)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::NumericFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let mut i = self.eval(start, env)?.as_num()?;
                let stop = self.eval(stop, env)?.as_num()?;
                let step = match step {
                    Some(e) => self.eval(e, env)?.as_num()?,
                    None => 1.0,
                };
                if step == 0.0 {
                    return Err(RuntimeError::Other("for step must be non-zero".into()));
                }
                while (step > 0.0 && i <= stop) || (step < 0.0 && i >= stop) {
                    self.step()?;
                    let scope = child_env(env);
                    declare_interned(&scope, var, Value::Num(i));
                    match self.exec_block(body, &scope)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal => {}
                    }
                    i += step;
                }
                Ok(Flow::Normal)
            }
            Stmt::GenericFor {
                k,
                v,
                kind,
                expr,
                body,
            } => {
                let t = self.eval(expr, env)?;
                let Value::Table(t) = t else {
                    return Err(RuntimeError::TypeError(format!(
                        "cannot iterate a {}",
                        t.type_name()
                    )));
                };
                // Snapshot entries so body mutations cannot invalidate the
                // walk (Lua forbids such mutation; we make it safe).
                let entries: Vec<(Key, Value)> = match kind {
                    IterKind::Pairs => t
                        .borrow()
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                    IterKind::Ipairs => {
                        let tb = t.borrow();
                        let mut out = Vec::new();
                        let mut i = 1i64;
                        loop {
                            let v = tb.get(&Key::Int(i));
                            if matches!(v, Value::Nil) {
                                break;
                            }
                            out.push((Key::Int(i), v));
                            i += 1;
                        }
                        out
                    }
                };
                for (key, value) in entries {
                    self.step()?;
                    let scope = child_env(env);
                    let key_val = match key {
                        Key::Int(i) => Value::Num(i as f64),
                        Key::Str(s) => Value::Str(s),
                    };
                    declare_interned(&scope, k, key_val);
                    if let Some(vname) = v {
                        declare_interned(&scope, vname, value);
                    }
                    match self.exec_block(body, &scope)? {
                        Flow::Break => break,
                        Flow::Return(rv) => return Ok(Flow::Return(rv)),
                        Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::FuncDecl { target, def } => {
                // divergence (DESIGN.md §10, item 3): walker closures
                // capture their *whole* defining environment, so a handler
                // stored into the globals it captures forms an `Rc` cycle
                // this engine never breaks (pinned by
                // `treewalk_closure_env_cycle_is_the_documented_divergence`
                // in lib.rs). VM closures capture individual cells and are
                // fully reclaimed — one reason the VM is the default.
                let f = Value::Func(Rc::new(Closure {
                    def: Rc::clone(def),
                    env: Rc::clone(env),
                }));
                self.assign_target(target, f, env)?;
                Ok(Flow::Normal)
            }
            Stmt::LocalFunc { name, def } => {
                // Declare first so the function can recurse.
                declare_interned(env, name, Value::Nil);
                let f = Value::Func(Rc::new(Closure {
                    def: Rc::clone(def),
                    env: Rc::clone(env),
                }));
                declare_interned(env, name, f);
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
        }
    }

    fn assign_target(
        &mut self,
        target: &Target,
        value: Value,
        env: &Env,
    ) -> Result<(), RuntimeError> {
        match target {
            Target::Name(n) => {
                assign(env, &self.globals, n, value);
                Ok(())
            }
            Target::Index(obj, key) => {
                let obj = self.eval(obj, env)?;
                let key = self.eval(key, env)?;
                let Value::Table(t) = obj else {
                    return Err(RuntimeError::TypeError(format!(
                        "cannot index a {} value",
                        obj.type_name()
                    )));
                };
                let key = Key::from_value(&key)?;
                t.borrow_mut().set(key, value);
                Ok(())
            }
        }
    }

    fn eval(&mut self, expr: &Expr, env: &Env) -> Result<Value, RuntimeError> {
        self.step()?;
        match expr {
            Expr::Nil => Ok(Value::Nil),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(Rc::clone(s))),
            Expr::Var(n) => Ok(lookup(env, n)),
            Expr::Index(obj, key) => {
                let obj = self.eval(obj, env)?;
                let key = self.eval(key, env)?;
                match obj {
                    Value::Table(t) => {
                        let key = Key::from_value(&key)?;
                        Ok(t.borrow().get(&key))
                    }
                    other => Err(RuntimeError::TypeError(format!(
                        "cannot index a {} value",
                        other.type_name()
                    ))),
                }
            }
            Expr::Call(f, args) => {
                let f = self.eval(f, env)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.call(&f, &vals)
            }
            Expr::MethodCall(obj, method, args) => {
                let obj = self.eval(obj, env)?;
                let f = match &obj {
                    Value::Table(t) => t.borrow().get(&Key::Str(method.clone())),
                    other => {
                        return Err(RuntimeError::TypeError(format!(
                            "cannot call method on a {} value",
                            other.type_name()
                        )))
                    }
                };
                let mut vals = Vec::with_capacity(args.len() + 1);
                vals.push(obj);
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.call(&f, &vals)
            }
            Expr::Bin(op, l, r) => self.eval_bin(*op, l, r, env),
            Expr::Un(op, e) => {
                let v = self.eval(e, env)?;
                match op {
                    UnOp::Neg => Ok(Value::Num(-v.as_num()?)),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Len => match &v {
                        Value::Str(s) => Ok(Value::Num(s.len() as f64)),
                        Value::Table(t) => Ok(Value::Num(t.borrow().len() as f64)),
                        other => Err(RuntimeError::TypeError(format!(
                            "cannot take length of a {}",
                            other.type_name()
                        ))),
                    },
                }
            }
            Expr::TableCtor(items) => {
                let mut table = Table::new();
                let mut next_index = 1i64;
                for item in items {
                    match item {
                        TableItem::Positional(e) => {
                            let v = self.eval(e, env)?;
                            table.set(Key::Int(next_index), v);
                            next_index += 1;
                        }
                        TableItem::Named(n, e) => {
                            let v = self.eval(e, env)?;
                            table.set(Key::Str(n.clone()), v);
                        }
                        TableItem::Keyed(k, e) => {
                            let kv = self.eval(k, env)?;
                            let v = self.eval(e, env)?;
                            table.set(Key::from_value(&kv)?, v);
                        }
                    }
                }
                Ok(Value::Table(Rc::new(RefCell::new(table))))
            }
            // divergence: whole-environment capture, same as FuncDecl above.
            Expr::Func(def) => Ok(Value::Func(Rc::new(Closure {
                def: Rc::clone(def),
                env: Rc::clone(env),
            }))),
        }
    }

    fn eval_bin(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        env: &Env,
    ) -> Result<Value, RuntimeError> {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                let lv = self.eval(l, env)?;
                if !lv.truthy() {
                    return Ok(lv);
                }
                return self.eval(r, env);
            }
            BinOp::Or => {
                let lv = self.eval(l, env)?;
                if lv.truthy() {
                    return Ok(lv);
                }
                return self.eval(r, env);
            }
            _ => {}
        }
        let lv = self.eval(l, env)?;
        let rv = self.eval(r, env)?;
        match op {
            BinOp::Add => Ok(Value::Num(lv.as_num()? + rv.as_num()?)),
            BinOp::Sub => Ok(Value::Num(lv.as_num()? - rv.as_num()?)),
            BinOp::Mul => Ok(Value::Num(lv.as_num()? * rv.as_num()?)),
            BinOp::Div => Ok(Value::Num(lv.as_num()? / rv.as_num()?)),
            BinOp::Mod => {
                let (a, b) = (lv.as_num()?, rv.as_num()?);
                Ok(Value::Num(a - (a / b).floor() * b))
            }
            BinOp::Pow => Ok(Value::Num(lv.as_num()?.powf(rv.as_num()?))),
            BinOp::Concat => {
                let mut s = lv.concat_str()?;
                s.push_str(&rv.concat_str()?);
                Ok(Value::str(s))
            }
            BinOp::Eq => Ok(Value::Bool(lv.script_eq(&rv))),
            BinOp::Ne => Ok(Value::Bool(!lv.script_eq(&rv))),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = match (&lv, &rv) {
                    (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                    (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                    _ => {
                        return Err(RuntimeError::TypeError(format!(
                            "cannot compare {} with {}",
                            lv.type_name(),
                            rv.type_name()
                        )))
                    }
                };
                let Some(ord) = ord else {
                    return Ok(Value::Bool(false)); // NaN comparisons
                };
                let b = match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                Ok(Value::Bool(b))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}
