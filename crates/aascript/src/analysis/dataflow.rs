//! Forward dataflow over the CFG: definite-initialization for register
//! slots and defined-global tracking for name-addressed accesses.
//!
//! Both analyses are *must*-style (meet = intersection over predecessors),
//! with one deliberate twist for globals: an [`Op::Call`] is assumed to
//! define every global that *any* function in the chunk ever stores,
//! because we cannot always resolve the callee. That biases the analysis
//! toward suppression — the undefined-global lint only fires when no
//! execution order could have produced a definition, which keeps it
//! false-positive-free on real handler corpora.

use super::cfg::Cfg;
use super::diag::{Diagnostic, LintId};
use crate::compile::{Chunk, Op, Proto, Slot};
use std::collections::HashSet;

/// Register-slot reads an opcode performs.
fn reg_reads(op: &Op, out: &mut Vec<u16>) {
    match op {
        Op::LoadReg(r) | Op::ForZeroCheck(r) => out.push(*r),
        Op::ForTest {
            idx, stop, step, ..
        } => {
            out.push(*idx);
            out.push(*stop);
            out.push(*step);
        }
        Op::ForStep { idx, step, .. } => {
            out.push(*idx);
            out.push(*step);
        }
        _ => {}
    }
}

/// AA009: flags reads of register slots that are not definitely
/// initialized on every path. The compiler's slot allocation makes this
/// structurally impossible for its own output, so any finding here is an
/// internal-invariant violation (e.g. a hand-built or corrupted chunk).
pub fn uninit_register_reads(proto: &Proto, cfg: &Cfg) -> Vec<Diagnostic> {
    let nb = cfg.blocks.len();
    if nb == 0 {
        return Vec::new();
    }
    let entry_in: HashSet<u16> = proto
        .params
        .iter()
        .filter_map(|s| match s {
            Slot::Reg(r) => Some(*r),
            Slot::Cell(_) => None,
        })
        .collect();
    let all: HashSet<u16> = (0..proto.n_regs).collect();
    let preds = cfg.preds();
    let reachable = cfg.reachable();

    // OUT[b], initialized to top (all registers) so the intersection meet
    // starts permissive and tightens to the fixpoint.
    let mut outs: Vec<HashSet<u16>> = vec![all.clone(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            let mut cur = if b == 0 {
                entry_in.clone()
            } else {
                let mut it = preds[b].iter();
                match it.next() {
                    None => all.clone(),
                    Some(&p0) => {
                        let mut acc = outs[p0].clone();
                        for &p in it {
                            acc.retain(|r| outs[p].contains(r));
                        }
                        acc
                    }
                }
            };
            for op in &proto.code[cfg.blocks[b].lo..cfg.blocks[b].hi] {
                if let Op::StoreReg(r) = op {
                    cur.insert(*r);
                }
            }
            if cur != outs[b] {
                outs[b] = cur;
                changed = true;
            }
        }
    }

    // Check phase: replay each reachable block from its IN set.
    let mut diags = Vec::new();
    let mut reads = Vec::new();
    for b in 0..nb {
        if !reachable[b] {
            continue;
        }
        let mut cur = if b == 0 {
            entry_in.clone()
        } else {
            let mut it = preds[b].iter();
            match it.next() {
                None => all.clone(),
                Some(&p0) => {
                    let mut acc = outs[p0].clone();
                    for &p in it {
                        acc.retain(|r| outs[p].contains(r));
                    }
                    acc
                }
            }
        };
        for i in cfg.blocks[b].lo..cfg.blocks[b].hi {
            let op = &proto.code[i];
            reads.clear();
            reg_reads(op, &mut reads);
            for &r in &reads {
                if !cur.contains(&r) {
                    diags.push(Diagnostic::error(
                        LintId::UninitRegister,
                        proto.lines[i],
                        format!("register slot {r} read before definite initialization"),
                    ));
                }
            }
            if let Op::StoreReg(r) = op {
                cur.insert(*r);
            }
        }
    }
    diags
}

/// Global-name reads an opcode performs, as indices into [`Chunk::names`].
fn global_reads(op: &Op) -> Option<u32> {
    match op {
        Op::LoadGlobal(n) | Op::GlobalIndexConst { name: n, .. } => Some(*n),
        _ => None,
    }
}

/// The set of global-name indices a proto may define (every
/// [`Op::StoreGlobal`] target).
pub fn stored_globals(proto: &Proto) -> HashSet<u32> {
    proto
        .code
        .iter()
        .filter_map(|op| match op {
            Op::StoreGlobal(n) => Some(*n),
            _ => None,
        })
        .collect()
}

/// Runs the defined-globals analysis over one proto and returns
/// `(diagnostics, exit_set)` where `exit_set` is the set of globals
/// definitely defined at every `Return` (used to seed handler protos with
/// what top-level code established).
///
/// `init` is the set of names defined before the proto runs (stdlib, host
/// externs, and — for handlers — main's exit set). `ever_stored` is the
/// union of [`stored_globals`] over the whole chunk; reads of names in it
/// that are merely not *yet* defined downgrade to warnings, reads of names
/// nowhere in it are errors (a typo nothing could ever define).
pub fn undefined_global_reads(
    proto: &Proto,
    cfg: &Cfg,
    chunk: &Chunk,
    init: &HashSet<u32>,
    ever_stored: &HashSet<u32>,
) -> (Vec<Diagnostic>, HashSet<u32>) {
    let nb = cfg.blocks.len();
    if nb == 0 {
        return (Vec::new(), init.clone());
    }
    let all: HashSet<u32> = (0..chunk.names.len() as u32).collect();
    let preds = cfg.preds();
    let reachable = cfg.reachable();

    let transfer = |mut cur: HashSet<u32>, ops: &[Op]| -> HashSet<u32> {
        for op in ops {
            match op {
                Op::StoreGlobal(n) => {
                    cur.insert(*n);
                }
                // The callee may run arbitrary script code; credit it with
                // everything the chunk could ever define (see module docs).
                Op::Call(_) => cur.extend(ever_stored.iter().copied()),
                _ => {}
            }
        }
        cur
    };

    let block_in = |b: usize, outs: &[HashSet<u32>]| -> HashSet<u32> {
        if b == 0 {
            return init.clone();
        }
        let mut it = preds[b].iter();
        match it.next() {
            None => all.clone(),
            Some(&p0) => {
                let mut acc = outs[p0].clone();
                for &p in it {
                    acc.retain(|n| outs[p].contains(n));
                }
                acc
            }
        }
    };

    let mut outs: Vec<HashSet<u32>> = vec![all.clone(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            let cur = transfer(
                block_in(b, &outs),
                &proto.code[cfg.blocks[b].lo..cfg.blocks[b].hi],
            );
            if cur != outs[b] {
                outs[b] = cur;
                changed = true;
            }
        }
    }

    // Check phase.
    let mut diags = Vec::new();
    let mut flagged: HashSet<(u32, u32, u32)> = HashSet::new();
    for (b, &live) in reachable.iter().enumerate().take(nb) {
        if !live {
            continue;
        }
        let mut cur = block_in(b, &outs);
        for i in cfg.blocks[b].lo..cfg.blocks[b].hi {
            let op = &proto.code[i];
            if let Some(n) = global_reads(op) {
                if !cur.contains(&n) {
                    let pos = proto.lines[i];
                    if flagged.insert((n, pos.line, pos.col)) {
                        let name = &chunk.names[n as usize];
                        if ever_stored.contains(&n) {
                            diags.push(Diagnostic::warning(
                                LintId::UndefinedGlobal,
                                pos,
                                format!(
                                    "global `{name}` may be read before it is defined \
                                     (no definition is guaranteed to have run)"
                                ),
                            ));
                        } else {
                            diags.push(Diagnostic::error(
                                LintId::UndefinedGlobal,
                                pos,
                                format!(
                                    "undefined global `{name}` (never defined by the \
                                     script, the host environment, or the stdlib)"
                                ),
                            ));
                        }
                    }
                }
            }
            match op {
                Op::StoreGlobal(n) => {
                    cur.insert(*n);
                }
                Op::Call(_) => cur.extend(ever_stored.iter().copied()),
                _ => {}
            }
        }
    }

    // Exit set: intersection of OUT over reachable blocks that end in
    // Return (the compiler guarantees at least the implicit one).
    let mut exit: Option<HashSet<u32>> = None;
    for b in 0..nb {
        if !reachable[b] {
            continue;
        }
        if matches!(proto.code[cfg.blocks[b].hi - 1], Op::Return) {
            exit = Some(match exit {
                None => outs[b].clone(),
                Some(mut acc) => {
                    acc.retain(|n| outs[b].contains(n));
                    acc
                }
            });
        }
    }
    (diags, exit.unwrap_or_else(|| init.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cfg;
    use crate::compile::compile;
    use crate::error::Pos;
    use crate::parser::parse;

    fn chunk_of(src: &str) -> Chunk {
        compile(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn compiler_output_never_reads_uninit_registers() {
        let srcs = [
            "function f(a) local b = a + 1 return b end",
            "function g() for i = 1, 3 do local x = i end end",
            "function h(n) if n then local y = 1 return y end return 2 end",
            "for k, v in pairs(t) do local s = v end",
        ];
        for src in srcs {
            let chunk = chunk_of(src);
            for proto in &chunk.protos {
                let g = cfg::build(proto);
                assert!(
                    uninit_register_reads(proto, &g).is_empty(),
                    "false positive on {src}"
                );
            }
        }
    }

    #[test]
    fn hand_built_chunk_with_uninit_read_is_caught() {
        // LoadReg(0) before any StoreReg(0): the invariant lint must fire.
        let proto = Proto {
            code: vec![Op::LoadReg(0), Op::Return],
            lines: vec![Pos { line: 1, col: 1 }; 2],
            n_regs: 1,
            n_cells: 0,
            params: vec![],
            upvals: vec![],
        };
        let g = cfg::build(&proto);
        let diags = uninit_register_reads(&proto, &g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].id, LintId::UninitRegister);
    }

    #[test]
    fn branch_defined_register_is_not_must_defined_at_join() {
        // StoreReg(0) on one arm only, read after the join.
        let proto = Proto {
            code: vec![
                Op::True,
                Op::JumpIfFalse(4),
                Op::Nil,
                Op::StoreReg(0),
                Op::LoadReg(0), // join: only defined on the taken path
                Op::Return,
            ],
            lines: vec![Pos { line: 1, col: 1 }; 6],
            n_regs: 1,
            n_cells: 0,
            params: vec![],
            upvals: vec![],
        };
        let g = cfg::build(&proto);
        let diags = uninit_register_reads(&proto, &g);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn global_defined_then_read_is_clean() {
        let chunk = chunk_of("x = 1 y = x + 1");
        let proto = &chunk.protos[chunk.main];
        let g = cfg::build(proto);
        let ever = stored_globals(proto);
        let (diags, exit) = undefined_global_reads(proto, &g, &chunk, &HashSet::new(), &ever);
        assert!(diags.is_empty(), "{diags:?}");
        // Both x and y are definitely defined at exit.
        assert_eq!(exit.len(), 2);
    }

    #[test]
    fn global_read_before_any_store_is_an_error_or_warning() {
        // `z` is never stored anywhere: hard error.
        let chunk = chunk_of("y = z");
        let proto = &chunk.protos[chunk.main];
        let g = cfg::build(proto);
        let ever = stored_globals(proto);
        let (diags, _) = undefined_global_reads(proto, &g, &chunk, &HashSet::new(), &ever);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, super::super::diag::Severity::Error);

        // `w` is stored later: ordering hazard, warning.
        let chunk = chunk_of("y = w w = 1");
        let proto = &chunk.protos[chunk.main];
        let g = cfg::build(proto);
        let ever = stored_globals(proto);
        let (diags, _) = undefined_global_reads(proto, &g, &chunk, &HashSet::new(), &ever);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, super::super::diag::Severity::Warning);
    }

    #[test]
    fn call_credits_globals_the_chunk_may_define() {
        // `setup()` defines `cfgd`; reading it after the call is clean.
        let chunk = chunk_of(
            "function setup() cfgd = 1 end
             setup()
             y = cfgd",
        );
        let main = &chunk.protos[chunk.main];
        let g = cfg::build(main);
        let ever: HashSet<u32> = chunk.protos.iter().flat_map(stored_globals).collect();
        let init: HashSet<u32> = chunk
            .names
            .iter()
            .enumerate()
            .filter(|(_, n)| &***n == "setup")
            .map(|(i, _)| i as u32)
            .collect();
        // `setup` itself is stored by main before the call, so no init
        // seeding is even needed for it; pass empty-ish init regardless.
        let (diags, _) = undefined_global_reads(main, &g, &chunk, &init, &ever);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
