//! Structured diagnostics emitted by the static analyzer.
//!
//! Every finding carries a stable lint ID (the `AA0xx` catalog documented in
//! DESIGN.md §11), a severity, a source position, and a human-readable
//! message. Hosts decide what to do with them via their lint policy; the
//! analyzer itself never rejects anything.

use crate::error::Pos;
use core::fmt;

/// Stable identifiers for every lint the analyzer can raise.
///
/// IDs are append-only: a released ID never changes meaning, so host
/// configurations and CI logs can reference them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// AA001 — a function named `on…` does not match any handler the
    /// runtime dispatches, so it can never be invoked (deny-by-typo).
    UnknownHandler,
    /// AA002 — a global is read but never defined by the script, the host
    /// environment, or the stdlib (or may be read before its definition).
    UndefinedGlobal,
    /// AA003 — an access to a stdlib member that does not exist
    /// (e.g. `math.flor`).
    UnknownStdlibMember,
    /// AA004 — a stdlib function called with too few/many arguments, or a
    /// non-function stdlib member (e.g. `math.pi`) used as a function.
    StdlibMisuse,
    /// AA005 — a handler body writes a global outside the `AA` namespace,
    /// a determinism hazard for the differential oracle.
    GlobalWriteOutsideAa,
    /// AA006 — statements that can never execute (all paths before them
    /// return).
    UnreachableCode,
    /// AA007 — the worst-case instruction cost of a handler provably
    /// exceeds the configured budget: every invocation would be killed.
    CostExceedsBudget,
    /// AA008 — the worst-case instruction cost could not be bounded
    /// statically (data-dependent loop, unresolvable call, recursion).
    CostUnbounded,
    /// AA009 — bytecode reads a register slot that is not definitely
    /// initialized (compiler-invariant violation; should never fire on
    /// compiler output).
    UninitRegister,
}

impl LintId {
    /// The catalog code, e.g. `"AA002"`.
    pub fn code(self) -> &'static str {
        match self {
            LintId::UnknownHandler => "AA001",
            LintId::UndefinedGlobal => "AA002",
            LintId::UnknownStdlibMember => "AA003",
            LintId::StdlibMisuse => "AA004",
            LintId::GlobalWriteOutsideAa => "AA005",
            LintId::UnreachableCode => "AA006",
            LintId::CostExceedsBudget => "AA007",
            LintId::CostUnbounded => "AA008",
            LintId::UninitRegister => "AA009",
        }
    }
}

/// How serious a finding is.
///
/// [`crate::analysis`] never rejects a script itself; severity is what host
/// policies key on (`Deny` refuses installs with at least one error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intentional; surfaced, never blocking under
    /// any policy short of a host treating warnings as errors itself.
    Warning,
    /// Almost certainly a bug (typo'd handler, undefined global, provably
    /// over-budget handler). `LintPolicy::Deny` refuses these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub id: LintId,
    /// Error or warning.
    pub severity: Severity,
    /// Source position (1-based line:col) of the statement at fault.
    pub pos: Pos,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic.
    pub fn error(id: LintId, pos: Pos, message: impl Into<String>) -> Self {
        Diagnostic {
            id,
            severity: Severity::Error,
            pos,
            message: message.into(),
        }
    }

    /// Builds a warning-severity diagnostic.
    pub fn warning(id: LintId, pos: Pos, message: impl Into<String>) -> Self {
        Diagnostic {
            id,
            severity: Severity::Warning,
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.id.code(),
            self.pos,
            self.message
        )
    }
}

/// Whether any diagnostic in the list is error-severity (what `Deny`
/// policies and the `aalint` exit code key on).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_span() {
        let d = Diagnostic::error(
            LintId::UndefinedGlobal,
            Pos { line: 3, col: 5 },
            "undefined global `utilzation`",
        );
        assert_eq!(
            d.to_string(),
            "error[AA002] 3:5: undefined global `utilzation`"
        );
        let w = Diagnostic::warning(LintId::CostUnbounded, Pos { line: 1, col: 1 }, "m");
        assert!(w.to_string().starts_with("warning[AA008]"));
    }

    #[test]
    fn has_errors_distinguishes_severity() {
        let w = Diagnostic::warning(LintId::UnreachableCode, Pos { line: 1, col: 1 }, "m");
        assert!(!has_errors(std::slice::from_ref(&w)));
        let e = Diagnostic::error(LintId::UnknownHandler, Pos { line: 1, col: 1 }, "m");
        assert!(has_errors(&[w, e]));
    }
}
