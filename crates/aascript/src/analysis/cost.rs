//! Abstract-interpretation worst-case instruction-cost bounds.
//!
//! The VM charges one budget unit per executed opcode, so a *sound upper
//! bound* on opcode executions is a sound bound on budget consumption. The
//! abstract domain is `Finite(n) ⊑ Unbounded`:
//!
//! * **Acyclic code** — every op executes at most once per entry, so the
//!   sum of op counts over a range is an upper bound (branches count both
//!   arms; that only over-approximates).
//! * **Numeric `for` with literal bounds** — the compiler emits
//!   `Const; [ToNum;] StoreReg` setups for start/stop/step, so constant
//!   trip counts are recoverable from the bytecode; the loop contributes
//!   `trips × body + 1` (the final failing `ForTest`).
//! * **Calls** — resolved by walking the stack effects backwards from the
//!   call site: stdlib natives cost the call op itself, script closures
//!   recurse into their proto (recursion ⇒ `Unbounded`), anything
//!   unresolvable ⇒ `Unbounded`.
//! * **Everything else** — `while`/`repeat`, data-dependent `for` bounds,
//!   and generic `for` over tables are `Unbounded`: not an error, but the
//!   "possibly unbounded" warning the analyzer surfaces as `AA008`.
//!
//! Provably-over-budget handlers (`Finite(c) > budget`) are the `AA007`
//! error: every invocation of such a handler would be killed at runtime,
//! which in RBAY's dispatch silently *denies* the request.

use super::lints::{builtin_fn, stdlib_member, Member};
use crate::compile::{Chunk, Op, Proto};
use crate::error::Pos;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// The cost abstract domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// At most this many opcodes execute.
    Finite(u64),
    /// No static bound; the payload says why (first cause wins).
    Unbounded(&'static str),
}

impl Bound {
    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            (Bound::Unbounded(r), _) | (_, Bound::Unbounded(r)) => Bound::Unbounded(r),
        }
    }

    fn mul(self, k: u64) -> Bound {
        match self {
            Bound::Finite(a) => Bound::Finite(a.saturating_mul(k)),
            u => u,
        }
    }
}

/// Back edges of a proto: loop head → index of the (largest) backward jump
/// targeting it. The compiler's structured emission makes loop bodies the
/// contiguous interval `[head, back]`.
fn loop_heads(proto: &Proto) -> HashMap<usize, usize> {
    let mut heads: HashMap<usize, usize> = HashMap::new();
    for (i, op) in proto.code.iter().enumerate() {
        let t = match op {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::ForStep { top: t, .. } => *t as usize,
            _ => continue,
        };
        if t <= i {
            let e = heads.entry(t).or_insert(i);
            *e = (*e).max(i);
        }
    }
    heads
}

/// Number of iterations of `for v = start, stop, step` with literal
/// bounds. `step == 0` raises at runtime before the first iteration.
fn for_trips(start: f64, stop: f64, step: f64) -> Option<u64> {
    if step == 0.0 || !start.is_finite() || !stop.is_finite() || !step.is_finite() {
        return Some(0);
    }
    let n = if step > 0.0 {
        ((stop - start) / step).floor() + 1.0
    } else {
        ((start - stop) / -step).floor() + 1.0
    };
    if n <= 0.0 {
        Some(0)
    } else if n >= 1e18 {
        None
    } else {
        Some(n as u64)
    }
}

/// Finds the literal value last stored into `reg` in the straight-line
/// setup window before `before` (the `Const; [ToNum;] StoreReg` pattern
/// the compiler emits for numeric-`for` bounds).
fn const_reg_before(chunk: &Chunk, proto: &Proto, before: usize, reg: u16) -> Option<f64> {
    let lo = before.saturating_sub(24);
    let mut j = before;
    while j > lo {
        j -= 1;
        if proto.code[j] == Op::StoreReg(reg) {
            let ci = match (j.checked_sub(1).map(|k| &proto.code[k]), j.checked_sub(2)) {
                (Some(Op::Const(c)), _) => *c,
                (Some(Op::ToNum), Some(k2)) => match proto.code[k2] {
                    Op::Const(c) => c,
                    _ => return None,
                },
                _ => return None,
            };
            return match &chunk.consts[ci as usize] {
                Value::Num(n) => Some(*n),
                _ => None,
            };
        }
    }
    None
}

/// Net stack effect of an op as `(pops, pushes)`, or `None` for ops whose
/// effect is dynamic or that transfer control (the backward callee walk
/// bails out on those).
fn stack_effect(op: &Op) -> Option<(usize, usize)> {
    Some(match op {
        Op::Const(_)
        | Op::Nil
        | Op::True
        | Op::False
        | Op::LoadReg(_)
        | Op::LoadCell(_)
        | Op::LoadUpval(_)
        | Op::LoadGlobal(_)
        | Op::GlobalIndexConst { .. }
        | Op::NewTable
        | Op::MakeClosure(_) => (0, 1),
        Op::StoreReg(_)
        | Op::StoreCell(_)
        | Op::NewCell(_)
        | Op::StoreUpval(_)
        | Op::StoreGlobal(_)
        | Op::Pop => (1, 0),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Mod
        | Op::Pow
        | Op::Concat
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Le
        | Op::Gt
        | Op::Ge
        | Op::Index => (2, 1),
        Op::Neg | Op::Not | Op::Len | Op::ToNum | Op::IndexConst(_) => (1, 1),
        Op::StoreIndex => (3, 0),
        Op::StoreIndexConst(_) => (2, 0),
        Op::SetItem => (2, 0),
        Op::Method(_) => (1, 2),
        Op::Call(n) => (*n as usize + 1, 1),
        Op::ForZeroCheck(_) => (0, 0),
        // Control transfer or dynamic stack effect: bail.
        Op::Jump(_)
        | Op::JumpIfFalse(_)
        | Op::JumpIfFalseKeep(_)
        | Op::JumpIfTrueKeep(_)
        | Op::Return
        | Op::ForTest { .. }
        | Op::ForStep { .. }
        | Op::IterPrep(_)
        | Op::IterNext { .. }
        | Op::IterEnd => return None,
    })
}

/// What a call site dispatches to, as far as the analyzer can tell.
enum Callee {
    /// A stdlib native: costs the call op only (natives run outside the
    /// script budget).
    Native,
    /// A script function with a known proto.
    Closure(usize),
    /// Could not resolve — `Unbounded`.
    Unknown,
}

/// The per-chunk cost analyzer (memoizes proto bounds, detects recursion).
pub struct CostModel<'a> {
    chunk: &'a Chunk,
    /// Global name index → proto, for globals bound exactly once to a
    /// closure (`function f() … end` at top level).
    fn_map: HashMap<u32, usize>,
    /// Name indices the script itself stores — a stdlib name in here is
    /// shadowed and no longer resolvable as a native.
    ever_stored: HashSet<u32>,
    /// Name indices of host-injected natives (e.g. `sha1hex`): calls to
    /// these cost the call op only, like stdlib natives.
    extern_natives: HashSet<u32>,
    memo: HashMap<usize, Bound>,
    visiting: Vec<usize>,
}

impl<'a> CostModel<'a> {
    /// Builds the model, resolving the chunk's global-function bindings.
    pub fn new(chunk: &'a Chunk) -> Self {
        let mut ever_stored: HashSet<u32> = HashSet::new();
        let mut fn_map: HashMap<u32, usize> = HashMap::new();
        let mut poisoned: HashSet<u32> = HashSet::new();
        for proto in &chunk.protos {
            for (i, op) in proto.code.iter().enumerate() {
                if let Op::StoreGlobal(n) = op {
                    ever_stored.insert(*n);
                    match (i.checked_sub(1).map(|j| &proto.code[j]), fn_map.get(n)) {
                        (Some(Op::MakeClosure(p)), None) if !poisoned.contains(n) => {
                            fn_map.insert(*n, *p as usize);
                        }
                        (Some(Op::MakeClosure(p)), Some(&q)) if *p as usize == q => {}
                        _ => {
                            // Rebound to something else (or a second,
                            // different closure): no longer resolvable.
                            fn_map.remove(n);
                            poisoned.insert(*n);
                        }
                    }
                }
            }
        }
        CostModel {
            chunk,
            fn_map,
            ever_stored,
            extern_natives: HashSet::new(),
            memo: HashMap::new(),
            visiting: Vec::new(),
        }
    }

    /// Declares host-injected globals as native functions: a call through
    /// one of these names costs the call op only (natives run outside the
    /// script budget), instead of poisoning the bound as unresolvable.
    pub fn with_externs(mut self, externs: &[String]) -> Self {
        for (i, name) in self.chunk.names.iter().enumerate() {
            if externs.iter().any(|e| e == &**name) {
                self.extern_natives.insert(i as u32);
            }
        }
        self
    }

    /// Worst-case opcode count of executing proto `pi` once.
    pub fn proto_cost(&mut self, pi: usize) -> Bound {
        if let Some(&b) = self.memo.get(&pi) {
            return b;
        }
        if self.visiting.contains(&pi) {
            return Bound::Unbounded("recursion");
        }
        self.visiting.push(pi);
        let proto = &self.chunk.protos[pi];
        let heads = loop_heads(proto);
        let b = self.range_cost(proto, &heads, 0, proto.code.len(), None);
        self.visiting.pop();
        self.memo.insert(pi, b);
        b
    }

    /// Cost of ops `[lo, hi)` executed once, expanding loops by their trip
    /// count. `expanding` is the head of the loop currently being costed,
    /// so its own back edge does not re-trigger expansion.
    fn range_cost(
        &mut self,
        proto: &Proto,
        heads: &HashMap<usize, usize>,
        lo: usize,
        hi: usize,
        expanding: Option<usize>,
    ) -> Bound {
        let mut total = Bound::Finite(0);
        let mut i = lo;
        while i < hi {
            if let Some(&back) = heads.get(&i) {
                if Some(i) != expanding {
                    if back >= hi {
                        // A back edge escaping the range would mean the
                        // loop intervals are not nested — impossible for
                        // compiler output, so just give up soundly.
                        return Bound::Unbounded("irreducible loop structure");
                    }
                    let body = self.range_cost(proto, heads, i, back + 1, Some(i));
                    total = total.add(self.loop_cost(proto, i, back, body));
                    i = back + 1;
                    continue;
                }
            }
            total = total.add(Bound::Finite(1));
            if let Op::Call(n) = proto.code[i] {
                match self.resolve_callee(proto, i, n as usize) {
                    Callee::Native => {}
                    Callee::Closure(p) => total = total.add(self.proto_cost(p)),
                    Callee::Unknown => {
                        return Bound::Unbounded("call target not statically resolvable")
                    }
                }
            }
            i += 1;
        }
        total
    }

    /// Multiplies a loop body bound by the trip count, when one is
    /// statically known.
    fn loop_cost(&mut self, proto: &Proto, head: usize, back: usize, body: Bound) -> Bound {
        match (&proto.code[head], &proto.code[back]) {
            (
                Op::ForTest {
                    idx, stop, step, ..
                },
                Op::ForStep { .. },
            ) => {
                let start_v = const_reg_before(self.chunk, proto, head, *idx);
                let stop_v = const_reg_before(self.chunk, proto, head, *stop);
                let step_v = const_reg_before(self.chunk, proto, head, *step);
                match (start_v, stop_v, step_v) {
                    (Some(a), Some(b), Some(s)) => match for_trips(a, b, s) {
                        // trips × (ForTest + body + ForStep) + the final
                        // failing ForTest.
                        Some(k) => body.mul(k).add(Bound::Finite(1)),
                        None => Bound::Unbounded("astronomical literal trip count"),
                    },
                    _ => Bound::Unbounded("data-dependent numeric-for bounds"),
                }
            }
            (Op::IterNext { .. }, _) => Bound::Unbounded("generic-for over a table"),
            _ => Bound::Unbounded("while/repeat loop"),
        }
    }

    /// Resolves what `Call(nargs)` at `call_idx` dispatches to by walking
    /// stack effects backwards to the instruction that pushed the callee.
    fn resolve_callee(&self, proto: &Proto, call_idx: usize, nargs: usize) -> Callee {
        // Depth of the callee below the top of stack just before the call.
        let mut depth = nargs;
        let mut j = call_idx;
        while j > 0 {
            j -= 1;
            let op = &proto.code[j];
            let Some((pops, pushes)) = stack_effect(op) else {
                return Callee::Unknown;
            };
            if depth < pushes {
                // This op pushed the callee value.
                return match op {
                    Op::MakeClosure(p) => Callee::Closure(*p as usize),
                    Op::LoadGlobal(n) => {
                        if let Some(&p) = self.fn_map.get(n) {
                            return Callee::Closure(p);
                        }
                        let name = &*self.chunk.names[*n as usize];
                        // pcall invokes its argument; its cost is the
                        // argument's, which this walk cannot see.
                        if name != "pcall"
                            && builtin_fn(name).is_some()
                            && !self.ever_stored.contains(n)
                        {
                            return Callee::Native;
                        }
                        if self.extern_natives.contains(n) && !self.ever_stored.contains(n) {
                            return Callee::Native;
                        }
                        Callee::Unknown
                    }
                    Op::GlobalIndexConst { name, key } => {
                        let module = &*self.chunk.names[*name as usize];
                        let member = match &self.chunk.keys[*key as usize] {
                            crate::value::Key::Str(s) => s.clone(),
                            _ => return Callee::Unknown,
                        };
                        if !self.ever_stored.contains(name)
                            && matches!(stdlib_member(module, &member), Some(Member::Func(_)))
                        {
                            return Callee::Native;
                        }
                        Callee::Unknown
                    }
                    _ => Callee::Unknown,
                };
            }
            depth = depth - pushes + pops;
        }
        Callee::Unknown
    }
}

/// Handlers installed by top-level code, with the proto each one binds and
/// the source position of the binding. Recognizes the three idioms:
/// `function onGet() … end`, `AA.onGet = function … end` (also
/// `function AA.onGet() … end`), and `AA = { onGet = function … end }`.
pub fn installed_handlers(chunk: &Chunk) -> Vec<(String, usize, Pos)> {
    let main = &chunk.protos[chunk.main];
    let mut out = Vec::new();
    let mut push = |name: &str, proto: usize, pos: Pos| {
        if crate::HANDLER_NAMES.contains(&name) {
            out.push((name.to_string(), proto, pos));
        }
    };
    for (i, op) in main.code.iter().enumerate() {
        let Op::MakeClosure(p) = op else { continue };
        let p = *p as usize;
        let pos = main.lines[i];
        match (main.code.get(i + 1), main.code.get(i + 2)) {
            // function onGet() … end  /  onGet = function() … end
            (Some(Op::StoreGlobal(n)), _) => push(&chunk.names[*n as usize], p, pos),
            // AA.onGet = function() … end (value compiled before target)
            (Some(Op::LoadGlobal(aa)), Some(Op::StoreIndexConst(k)))
                if &*chunk.names[*aa as usize] == "AA" =>
            {
                if let crate::value::Key::Str(s) = &chunk.keys[*k as usize] {
                    push(s, p, pos);
                }
            }
            // AA = { onGet = function() … end }
            (Some(Op::SetItem), _) if i >= 1 => {
                if let Op::Const(c) = &main.code[i - 1] {
                    if let Value::Str(s) = &chunk.consts[*c as usize] {
                        push(s, p, pos);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn chunk_of(src: &str) -> Chunk {
        compile(&parse(src).unwrap()).unwrap()
    }

    fn handler_bound(src: &str, name: &str) -> Bound {
        let chunk = chunk_of(src);
        let handlers = installed_handlers(&chunk);
        let (_, pi, _) = handlers
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("handler {name} not found in {handlers:?}"));
        CostModel::new(&chunk).proto_cost(*pi)
    }

    #[test]
    fn straight_line_handler_is_finite_and_tight_enough() {
        let b = handler_bound("function onGet(caller) return 1 + 2 end", "onGet");
        match b {
            Bound::Finite(n) => assert!(n <= 10, "got {n}"),
            u => panic!("{u:?}"),
        }
    }

    #[test]
    fn constant_trip_loop_multiplies() {
        let small = handler_bound(
            "function onGet() local s = 0 for i = 1, 10 do s = s + i end return s end",
            "onGet",
        );
        let big = handler_bound(
            "function onGet() local s = 0 for i = 1, 1000 do s = s + i end return s end",
            "onGet",
        );
        let (Bound::Finite(a), Bound::Finite(b)) = (small, big) else {
            panic!("{small:?} {big:?}");
        };
        assert!(b > a * 50, "bounds must scale with trips: {a} vs {b}");
    }

    #[test]
    fn bound_is_sound_against_actual_execution() {
        // Actual consumption must never exceed the static bound: find the
        // minimal budget that lets the handler finish and compare.
        let src = "function onGet() local s = 0 for i = 1, 25 do s = s + i * 2 end return s end";
        let Bound::Finite(bound) = handler_bound(src, "onGet") else {
            panic!("expected finite bound");
        };
        let aa = crate::eval_script(src, 100_000).unwrap();
        assert!(
            aa.invoke("onGet", &[], bound).is_ok(),
            "static bound {bound} must cover the real execution"
        );
    }

    #[test]
    fn while_loop_is_unbounded() {
        let b = handler_bound("function onGet() while x do y = 1 end end", "onGet");
        assert!(matches!(b, Bound::Unbounded(_)), "{b:?}");
    }

    #[test]
    fn data_dependent_for_is_unbounded() {
        let b = handler_bound(
            "function onGet(n) local s = 0 for i = 1, n do s = s + 1 end return s end",
            "onGet",
        );
        assert!(matches!(b, Bound::Unbounded(_)), "{b:?}");
    }

    #[test]
    fn recursion_is_unbounded() {
        let b = handler_bound("function onGet() return onGet() end", "onGet");
        assert!(matches!(b, Bound::Unbounded(_)), "{b:?}");
    }

    #[test]
    fn stdlib_calls_stay_finite_but_unknown_calls_do_not() {
        let b = handler_bound(
            "function onGet(x) return math.abs(x) + string.len(\"ab\") end",
            "onGet",
        );
        assert!(matches!(b, Bound::Finite(_)), "{b:?}");
        let u = handler_bound(
            "mystery = nil
             function onGet(x) return mystery(x) end",
            "onGet",
        );
        assert!(matches!(u, Bound::Unbounded(_)), "{u:?}");
    }

    #[test]
    fn script_function_calls_compose() {
        let fin = handler_bound(
            "function helper(x) return x * 2 end
             function onGet(x) return helper(x) + helper(x) end",
            "onGet",
        );
        assert!(matches!(fin, Bound::Finite(_)), "{fin:?}");
        let unb = handler_bound(
            "function helper(x) while x do end end
             function onGet(x) return helper(x) end",
            "onGet",
        );
        assert!(matches!(unb, Bound::Unbounded(_)), "{unb:?}");
    }

    #[test]
    fn nested_constant_loops_multiply_out() {
        let b = handler_bound(
            "function onGet()
                 local s = 0
                 for i = 1, 10 do
                     for j = 1, 10 do s = s + 1 end
                 end
                 return s
             end",
            "onGet",
        );
        let Bound::Finite(n) = b else { panic!("{b:?}") };
        assert!(n >= 100, "inner body runs 100 times: {n}");
        assert!(n < 100_000, "but the bound stays sane: {n}");
    }

    #[test]
    fn all_three_handler_idioms_are_discovered() {
        let chunk = chunk_of(
            "function onGet() return 1 end
             AA = {}
             AA.onTimer = function() return 2 end
             AA2 = { onDeliver = function() return 3 end }
             AA = { onSubscribe = function() return 4 end }",
        );
        let names: Vec<String> = installed_handlers(&chunk)
            .into_iter()
            .map(|(n, _, _)| n)
            .collect();
        assert!(names.contains(&"onGet".to_string()), "{names:?}");
        assert!(names.contains(&"onTimer".to_string()), "{names:?}");
        assert!(names.contains(&"onSubscribe".to_string()), "{names:?}");
    }
}
