//! Install-time static analysis for AAScript handlers (`aalint`).
//!
//! RBAY admits untrusted handler scripts onto every federated node; a
//! typo'd handler name, an undefined global, or a handler that always
//! exhausts its budget is otherwise discovered only at invocation time,
//! where a runtime error silently *denies* the request. This module family
//! verifies scripts at install time instead:
//!
//! * [`cfg`] — basic-block CFGs recovered from compiled bytecode;
//! * [`dataflow`] — forward definite-initialization analyses for register
//!   slots and globals;
//! * [`cost`] — abstract-interpretation worst-case instruction-cost
//!   bounds, compared against the host's budget;
//! * [`lints`] — AST-level lints (handler-name typos, stdlib misuse,
//!   global hygiene);
//! * [`diag`] — the structured, spanned diagnostics everything emits.
//!
//! Entry point: [`analyze`] (or [`crate::Script::analyze`]). The analyzer
//! never rejects anything itself — hosts enforce policy over the returned
//! diagnostics, keeping admission checks O(script), not O(network).
//!
//! The lint catalog (`AA001`–`AA009`) is documented in DESIGN.md §11.

pub mod cfg;
pub mod cost;
pub mod dataflow;
pub mod diag;
pub mod lints;

pub use diag::{has_errors, Diagnostic, LintId, Severity};

use crate::ast::Block;
use crate::compile::{Chunk, Op};
use crate::error::Pos;
use std::collections::{HashMap, HashSet};

/// Configuration for one analysis run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// The instruction budget handlers will run under. When set, handlers
    /// whose worst-case cost provably exceeds it get the `AA007` error;
    /// "possibly unbounded" (`AA008`) warnings are emitted either way.
    pub budget: Option<u64>,
    /// Globals the host environment defines before handlers run (e.g.
    /// `now_ms`, `attrs`, `sha1hex`, or anything injected via
    /// `set_global`). Reads of these are never flagged.
    pub externs: Vec<String>,
}

impl LintOptions {
    /// Options with a budget and no host externs.
    pub fn with_budget(budget: u64) -> Self {
        LintOptions {
            budget: Some(budget),
            externs: Vec::new(),
        }
    }
}

/// Ops the compiler emits as scaffolding (implicit returns, arm-exit
/// jumps): an unreachable group made only of these is not user code.
fn is_artifact(op: &Op) -> bool {
    matches!(
        op,
        Op::Jump(_)
            | Op::Nil
            | Op::True
            | Op::False
            | Op::Const(_)
            | Op::Pop
            | Op::Return
            | Op::IterEnd
    )
}

/// AA006: statements no execution path reaches (e.g. code after an
/// `if`/`else` where both arms return).
fn unreachable_code(proto: &crate::compile::Proto, g: &cfg::Cfg) -> Vec<Diagnostic> {
    let reach = g.reachable();
    // Group op indices by source position; a position is reported when it
    // has unreachable ops, none reachable, and at least one real
    // (non-scaffolding) op.
    let mut reachable_pos: HashSet<(u32, u32)> = HashSet::new();
    let mut dead: HashMap<(u32, u32), (Pos, bool)> = HashMap::new();
    for (bi, b) in g.blocks.iter().enumerate() {
        for i in b.lo..b.hi {
            let pos = proto.lines[i];
            if pos.line == 0 {
                continue; // no statement attribution (implicit code)
            }
            let key = (pos.line, pos.col);
            if reach[bi] {
                reachable_pos.insert(key);
            } else {
                let e = dead.entry(key).or_insert((pos, false));
                e.1 |= !is_artifact(&proto.code[i]);
            }
        }
    }
    let mut diags: Vec<Diagnostic> = dead
        .into_iter()
        .filter(|(key, (_, real))| *real && !reachable_pos.contains(key))
        .map(|(_, (pos, _))| {
            Diagnostic::warning(
                LintId::UnreachableCode,
                pos,
                "unreachable code: every path before this statement returns".to_string(),
            )
        })
        .collect();
    diags.sort_by_key(|d| (d.pos.line, d.pos.col));
    diags
}

/// Maps a name list onto [`Chunk::names`] indices (names the script never
/// mentions have no index and need no seeding).
fn name_indices<'a>(chunk: &Chunk, names: impl Iterator<Item = &'a str>) -> HashSet<u32> {
    let by_name: HashMap<&str, u32> = chunk
        .names
        .iter()
        .enumerate()
        .map(|(i, n)| (&**n, i as u32))
        .collect();
    names.filter_map(|n| by_name.get(n).copied()).collect()
}

/// Runs every lint over a parsed-and-compiled script and returns the
/// findings sorted by source position.
///
/// The defined-globals analysis is seeded with the sandbox stdlib, the
/// `AA` namespace, and `opts.externs`; handler protos additionally inherit
/// every global top-level code definitely defines.
pub fn analyze(block: &Block, chunk: &Chunk, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut diags = lints::ast_lints(block);

    // Bytecode-level lints, per proto.
    let cfgs: Vec<cfg::Cfg> = chunk.protos.iter().map(cfg::build).collect();
    for (proto, g) in chunk.protos.iter().zip(&cfgs) {
        diags.extend(dataflow::uninit_register_reads(proto, g));
        diags.extend(unreachable_code(proto, g));
    }

    // Defined-globals: main first (seeded from stdlib + host externs),
    // then every other proto seeded with what main established.
    let ever_stored: HashSet<u32> = chunk
        .protos
        .iter()
        .flat_map(dataflow::stored_globals)
        .collect();
    let seed = name_indices(
        chunk,
        lints::stdlib_global_names()
            .iter()
            .copied()
            .chain(std::iter::once("AA"))
            .chain(opts.externs.iter().map(|s| s.as_str())),
    );
    let main = &chunk.protos[chunk.main];
    let (main_diags, main_exit) =
        dataflow::undefined_global_reads(main, &cfgs[chunk.main], chunk, &seed, &ever_stored);
    diags.extend(main_diags);
    let mut handler_init = main_exit;
    handler_init.extend(seed.iter().copied());
    for (pi, (proto, g)) in chunk.protos.iter().zip(&cfgs).enumerate() {
        if pi == chunk.main {
            continue;
        }
        let (d, _) = dataflow::undefined_global_reads(proto, g, chunk, &handler_init, &ever_stored);
        diags.extend(d);
    }

    // Cost bounds: top-level code and every installed handler.
    let mut model = cost::CostModel::new(chunk).with_externs(&opts.externs);
    let main_pos = main
        .lines
        .first()
        .copied()
        .unwrap_or(Pos { line: 1, col: 1 });
    let mut targets = vec![("top-level code".to_string(), chunk.main, main_pos)];
    targets.extend(cost::installed_handlers(chunk));
    for (label, pi, pos) in targets {
        match model.proto_cost(pi) {
            cost::Bound::Finite(c) => {
                if let Some(budget) = opts.budget {
                    if c > budget {
                        diags.push(Diagnostic::error(
                            LintId::CostExceedsBudget,
                            pos,
                            format!(
                                "worst-case cost of {label} is {c} instructions, \
                                 exceeding the budget of {budget}: every invocation \
                                 would be killed (and silently denied)"
                            ),
                        ));
                    }
                }
            }
            cost::Bound::Unbounded(why) => {
                diags.push(Diagnostic::warning(
                    LintId::CostUnbounded,
                    pos,
                    format!("worst-case cost of {label} is not statically bounded ({why})"),
                ));
            }
        }
    }

    diags.sort_by_key(|d| (d.pos.line, d.pos.col, d.id));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str, opts: &LintOptions) -> Vec<Diagnostic> {
        let block = parse(src).unwrap();
        let chunk = crate::compile::compile(&block).unwrap();
        analyze(&block, &chunk, opts)
    }

    fn ids(src: &str) -> Vec<LintId> {
        run(src, &LintOptions::default())
            .into_iter()
            .map(|d| d.id)
            .collect()
    }

    #[test]
    fn fig5_password_handler_is_clean_and_bounded() {
        let src = r#"
            AA = {NodeId = 27,
                  IP = "131.94.130.118",
                  Password = "3053482032"}
            function onGet(caller, password)
                if (password == AA.Password) then
                    return AA.NodeId
                end
                return nil
            end
        "#;
        let diags = run(src, &LintOptions::with_budget(10_000));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn over_budget_handler_is_an_error_with_a_span() {
        let src = "function onGet()
                 local s = 0
                 for i = 1, 100000 do s = s + i end
                 return s
             end";
        let diags = run(src, &LintOptions::with_budget(10_000));
        let d = diags
            .iter()
            .find(|d| d.id == LintId::CostExceedsBudget)
            .expect("AA007 must fire");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.pos.line, 1, "anchored at the handler definition");
        // The same loop fits a large budget.
        let ok = run(src, &LintOptions::with_budget(10_000_000));
        assert!(!ok.iter().any(|d| d.id == LintId::CostExceedsBudget));
    }

    #[test]
    fn unbounded_handler_is_a_warning_not_an_error() {
        let diags = run(
            "function onTimer() while AA do AA.n = 1 end end",
            &LintOptions::with_budget(10_000),
        );
        let d = diags
            .iter()
            .find(|d| d.id == LintId::CostUnbounded)
            .expect("AA008 must fire");
        assert_eq!(d.severity, Severity::Warning);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn undefined_global_read_is_spanned() {
        let diags = run(
            "AA = {}\nfunction onGet() return utilzation end",
            &LintOptions::default(),
        );
        let d = diags
            .iter()
            .find(|d| d.id == LintId::UndefinedGlobal)
            .expect("AA002 must fire");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.pos.line, 2, "{d:?}");
        assert!(d.message.contains("utilzation"));
    }

    #[test]
    fn externs_suppress_host_injected_globals() {
        let src = "function onTimer() return now_ms() end";
        assert!(run(src, &LintOptions::default())
            .iter()
            .any(|d| d.id == LintId::UndefinedGlobal));
        let opts = LintOptions {
            budget: None,
            externs: vec!["now_ms".into()],
        };
        assert!(!run(src, &opts)
            .iter()
            .any(|d| d.id == LintId::UndefinedGlobal));
    }

    #[test]
    fn unreachable_code_after_exhaustive_return_warns() {
        let src = "function onGet(x)
                 if x then return 1 else return 2 end
                 AA.dead = 1
             end";
        let diags = run(src, &LintOptions::default());
        let d = diags
            .iter()
            .find(|d| d.id == LintId::UnreachableCode)
            .expect("AA006 must fire: {diags:?}");
        assert_eq!(d.pos.line, 3, "{d:?}");
    }

    #[test]
    fn ordinary_returns_do_not_trip_the_unreachable_lint() {
        for src in [
            "function onGet() return 1 end",
            "function onGet(x) if x then return 1 end return 2 end",
            "function onGet() for i = 1, 3 do if i > 1 then break end end return 1 end",
            "x = 1",
        ] {
            assert!(
                !ids(src).contains(&LintId::UnreachableCode),
                "false positive in: {src}"
            );
        }
    }

    #[test]
    fn handler_reading_main_defined_global_is_clean() {
        let src = "count = 0
             function onGet() count = count + 1 return count end";
        let diags = run(src, &LintOptions::default());
        assert!(
            !diags.iter().any(|d| d.id == LintId::UndefinedGlobal),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_come_out_sorted_by_position() {
        let src = "function onGte() return 1 end
             function onGet() return utilzation end";
        let diags = run(src, &LintOptions::default());
        let lines: Vec<u32> = diags.iter().map(|d| d.pos.line).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "{diags:?}");
    }
}
