//! Basic-block control-flow graphs over compiled [`Proto`] bytecode.
//!
//! The compiler emits structured code (no computed jumps), so a CFG is
//! recoverable exactly: block leaders are the entry point, every jump
//! target, and every instruction following a branch or return. Dataflow
//! ([`crate::analysis::dataflow`]) and reachability ([`Cfg::reachable`])
//! both run over this graph.

use crate::compile::{Op, Proto};

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub lo: usize,
    /// One past the last instruction index (exclusive).
    pub hi: usize,
    /// Indices (into [`Cfg::blocks`]) of successor blocks.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in instruction order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
}

/// The jump targets an instruction can transfer control to, not counting
/// fall-through. `None` entries mean the op never falls through.
fn jump_target(op: &Op) -> Option<u32> {
    match op {
        Op::Jump(t)
        | Op::JumpIfFalse(t)
        | Op::JumpIfFalseKeep(t)
        | Op::JumpIfTrueKeep(t)
        | Op::ForTest { exit: t, .. }
        | Op::ForStep { top: t, .. }
        | Op::IterNext { exit: t } => Some(*t),
        _ => None,
    }
}

/// Whether control can continue to the next instruction after `op`.
fn falls_through(op: &Op) -> bool {
    !matches!(op, Op::Jump(_) | Op::ForStep { .. } | Op::Return)
}

/// Whether `op` ends a basic block.
fn is_terminator(op: &Op) -> bool {
    jump_target(op).is_some() || matches!(op, Op::Return)
}

/// Builds the CFG of `proto`.
pub fn build(proto: &Proto) -> Cfg {
    let code = &proto.code;
    let n = code.len();
    let mut leader = vec![false; n.max(1)];
    if n > 0 {
        leader[0] = true;
    }
    for (i, op) in code.iter().enumerate() {
        if let Some(t) = jump_target(op) {
            if (t as usize) < n {
                leader[t as usize] = true;
            }
        }
        if is_terminator(op) && i + 1 < n {
            leader[i + 1] = true;
        }
    }

    // Carve blocks at leaders.
    let mut blocks = Vec::new();
    let mut op_block = vec![0usize; n];
    let mut lo = 0usize;
    for (i, &is_leader) in leader.iter().enumerate() {
        if i > lo && is_leader {
            blocks.push(BasicBlock {
                lo,
                hi: i,
                succs: Vec::new(),
            });
            lo = i;
        }
    }
    if n > 0 {
        blocks.push(BasicBlock {
            lo,
            hi: n,
            succs: Vec::new(),
        });
    }
    for (bi, b) in blocks.iter().enumerate() {
        for slot in op_block.iter_mut().take(b.hi).skip(b.lo) {
            *slot = bi;
        }
    }

    // Wire successors from each block's final instruction.
    for bi in 0..blocks.len() {
        let last = blocks[bi].hi - 1;
        let op = &code[last];
        let mut succs = Vec::new();
        if let Some(t) = jump_target(op) {
            if (t as usize) < n {
                succs.push(op_block[t as usize]);
            }
        }
        if falls_through(op) && blocks[bi].hi < n {
            let next = op_block[blocks[bi].hi];
            if !succs.contains(&next) {
                succs.push(next);
            }
        }
        blocks[bi].succs = succs;
    }

    Cfg { blocks }
}

impl Cfg {
    /// Which blocks are reachable from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Predecessor lists, computed on demand.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (bi, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(bi);
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn main_cfg(src: &str) -> (Cfg, Vec<Op>) {
        let chunk = compile(&parse(src).unwrap()).unwrap();
        let proto = &chunk.protos[chunk.main];
        (build(proto), proto.code.clone())
    }

    #[test]
    fn straight_line_is_one_block() {
        let (cfg, code) = main_cfg("x = 1 y = 2");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].lo, 0);
        assert_eq!(cfg.blocks[0].hi, code.len());
        assert!(cfg.blocks[0].succs.is_empty(), "Return has no successors");
    }

    #[test]
    fn if_else_forks_and_joins() {
        let (cfg, _) = main_cfg("if x then y = 1 else y = 2 end z = 3");
        // cond / then / else / join — at minimum four blocks, every one
        // reachable, and some block has two successors.
        assert!(cfg.blocks.len() >= 4, "{cfg:?}");
        assert!(cfg.blocks.iter().any(|b| b.succs.len() == 2));
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn while_loop_has_back_edge() {
        let (cfg, _) = main_cfg("while x do y = y end");
        let back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(bi, b)| b.succs.iter().any(|&s| s <= bi));
        assert!(back, "loop must produce a back edge: {cfg:?}");
    }

    #[test]
    fn code_after_return_is_unreachable() {
        // Both arms return, so the join block can never run.
        let (cfg, _) = main_cfg(
            "function f()
                 if x then return 1 else return 2 end
             end",
        );
        assert!(cfg.reachable().iter().all(|&r| r), "main itself is linear");
        // The function body is a separate proto; check it directly.
        let chunk = compile(
            &parse(
                "function f()
                 if x then return 1 else return 2 end
             end",
            )
            .unwrap(),
        )
        .unwrap();
        let body = &chunk.protos[0];
        let cfg = build(body);
        let reach = cfg.reachable();
        assert!(
            reach.iter().any(|&r| !r),
            "implicit trailing return is unreachable: {cfg:?}"
        );
    }

    #[test]
    fn every_op_is_in_exactly_one_block() {
        let (cfg, code) = main_cfg(
            "for i = 1, 3 do
                 if i > 1 then x = i end
             end
             for k, v in pairs(t) do y = k end",
        );
        let mut covered = vec![0u8; code.len()];
        for b in &cfg.blocks {
            for c in covered.iter_mut().take(b.hi).skip(b.lo) {
                *c += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "{covered:?}");
    }
}
