//! AST-level lints: handler-name typos, stdlib misuse, and global writes
//! outside the `AA` namespace.
//!
//! These run over the source AST (where statement positions live) rather
//! than the bytecode; the scope tracking mirrors the compiler's rules —
//! in particular, top-level `local`s are instance globals, so they are
//! *not* treated as lexical locals here either.

use super::diag::{Diagnostic, LintId};
use crate::ast::*;
use crate::error::Pos;
use std::collections::HashSet;

/// Arity bounds of a stdlib function.
#[derive(Debug, Clone, Copy)]
pub struct Sig {
    /// Fewest arguments that make sense.
    pub min: usize,
    /// Most arguments accepted (`None` = varargs).
    pub max: Option<usize>,
}

/// What kind of thing a stdlib member is.
#[derive(Debug, Clone, Copy)]
pub enum Member {
    /// A callable with the given arity bounds.
    Func(Sig),
    /// A plain value (`math.pi`): calling it is a kind error.
    Const,
}

const fn f(min: usize, max: usize) -> Member {
    Member::Func(Sig {
        min,
        max: Some(max),
    })
}

const fn va(min: usize) -> Member {
    Member::Func(Sig { min, max: None })
}

static MATH: &[(&str, Member)] = &[
    ("pi", Member::Const),
    ("huge", Member::Const),
    ("abs", f(1, 1)),
    ("ceil", f(1, 1)),
    ("floor", f(1, 1)),
    ("sqrt", f(1, 1)),
    ("max", va(1)),
    ("min", va(1)),
    ("fmod", f(2, 2)),
];

static STRING: &[(&str, Member)] = &[
    ("len", f(1, 1)),
    ("upper", f(1, 1)),
    ("lower", f(1, 1)),
    ("sub", f(2, 3)),
    ("rep", f(2, 2)),
    ("find", f(2, 2)),
    ("byte", f(1, 2)),
    ("char", va(0)),
    ("format", va(1)),
];

static TABLE: &[(&str, Member)] = &[
    ("insert", f(2, 3)),
    ("remove", f(1, 2)),
    ("concat", f(1, 2)),
];

static BUILTINS: &[(&str, Sig)] = &[
    (
        "tostring",
        Sig {
            min: 1,
            max: Some(1),
        },
    ),
    (
        "tonumber",
        Sig {
            min: 1,
            max: Some(1),
        },
    ),
    (
        "type",
        Sig {
            min: 1,
            max: Some(1),
        },
    ),
    (
        "assert",
        Sig {
            min: 1,
            max: Some(2),
        },
    ),
    (
        "error",
        Sig {
            min: 1,
            max: Some(1),
        },
    ),
    ("pcall", Sig { min: 1, max: None }),
];

/// Members of a sandbox stdlib module, or `None` for non-module names.
fn module_members(module: &str) -> Option<&'static [(&'static str, Member)]> {
    match module {
        "math" => Some(MATH),
        "string" => Some(STRING),
        "table" => Some(TABLE),
        _ => None,
    }
}

/// Looks up a stdlib module member (`stdlib_member("math", "abs")`).
pub fn stdlib_member(module: &str, member: &str) -> Option<Member> {
    module_members(module)?
        .iter()
        .find(|(n, _)| *n == member)
        .map(|&(_, m)| m)
}

/// Looks up a top-level sandbox builtin (`tostring`, `pcall`, …).
pub fn builtin_fn(name: &str) -> Option<Sig> {
    BUILTINS.iter().find(|(n, _)| *n == name).map(|&(_, s)| s)
}

/// Every global name the sealed sandbox provides — the stdlib seed of the
/// defined-globals analysis.
pub fn stdlib_global_names() -> &'static [&'static str] {
    &[
        "tostring", "tonumber", "type", "assert", "error", "pcall", "math", "string", "table",
    ]
}

/// Levenshtein distance, for "did you mean" suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidate within edit distance 2, if any.
fn suggest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (edit_distance(name, c), c))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

/// Whether `name` looks like a handler definition (`on` + capitalized
/// word): anything shaped like this that is not a real handler name is a
/// deny-by-typo bug.
fn handlerish(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next() == Some('o')
        && chars.next() == Some('n')
        && chars.next().is_some_and(|c| c.is_ascii_uppercase())
}

struct AstLinter {
    diags: Vec<Diagnostic>,
    /// Lexical scopes (innermost last), crossing function boundaries so
    /// upvalue writes are not mistaken for global writes. Top-level
    /// `local`s are instance globals and never enter a scope.
    scopes: Vec<HashSet<Name>>,
    /// Function-nesting depth; 0 = top-level statements.
    depth: usize,
    /// Stdlib names the script itself rebinds — their lints are disabled.
    shadowed: HashSet<Name>,
    cur_pos: Pos,
}

/// Runs the AST lints (AA001, AA003, AA004, AA005) over a parsed script.
pub fn ast_lints(block: &Block) -> Vec<Diagnostic> {
    let mut shadowed = HashSet::new();
    collect_shadowed(block, &mut shadowed);
    let mut l = AstLinter {
        diags: Vec::new(),
        scopes: vec![HashSet::new()],
        depth: 0,
        shadowed,
        cur_pos: Pos { line: 1, col: 1 },
    };
    l.walk_block(block);
    l.diags
}

/// Collects stdlib names the script rebinds anywhere (locals, params, loop
/// variables, assignments): member/arity lints must not second-guess a
/// user-defined `string` table.
fn collect_shadowed(block: &Block, out: &mut HashSet<Name>) {
    fn is_stdlib_name(n: &str) -> bool {
        module_members(n).is_some() || builtin_fn(n).is_some()
    }
    fn add(n: &Name, out: &mut HashSet<Name>) {
        if is_stdlib_name(n) {
            out.insert(n.clone());
        }
    }
    fn walk_def(def: &FuncDef, out: &mut HashSet<Name>) {
        for p in &def.params {
            add(p, out);
        }
        collect_shadowed(&def.body, out);
    }
    for stmt in &block.stmts {
        match stmt {
            Stmt::Local(n, _) => add(n, out),
            Stmt::Assign(Target::Name(n), _) => add(n, out),
            Stmt::Assign(Target::Index(..), _) | Stmt::ExprStmt(_) => {}
            Stmt::If(arms, else_b) => {
                for (_, b) in arms {
                    collect_shadowed(b, out);
                }
                if let Some(b) = else_b {
                    collect_shadowed(b, out);
                }
            }
            Stmt::While(_, b) => collect_shadowed(b, out),
            Stmt::Repeat(b, _) => collect_shadowed(b, out),
            Stmt::NumericFor { var, body, .. } => {
                add(var, out);
                collect_shadowed(body, out);
            }
            Stmt::GenericFor { k, v, body, .. } => {
                add(k, out);
                if let Some(v) = v {
                    add(v, out);
                }
                collect_shadowed(body, out);
            }
            Stmt::FuncDecl { target, def } => {
                if let Target::Name(n) = target {
                    add(n, out);
                }
                walk_def(def, out);
            }
            Stmt::LocalFunc { name, def } => {
                add(name, out);
                walk_def(def, out);
            }
            Stmt::Return(_) | Stmt::Break => {}
        }
    }
    // Expression-level function literals can also shadow via params.
    fn exprs(block: &Block, out: &mut HashSet<Name>) {
        fn expr(e: &Expr, out: &mut HashSet<Name>) {
            match e {
                Expr::Func(def) => walk_def(def, out),
                Expr::Index(a, b) | Expr::Bin(_, a, b) => {
                    expr(a, out);
                    expr(b, out);
                }
                Expr::Un(_, a) => expr(a, out),
                Expr::Call(g, args) => {
                    expr(g, out);
                    args.iter().for_each(|a| expr(a, out));
                }
                Expr::MethodCall(o, _, args) => {
                    expr(o, out);
                    args.iter().for_each(|a| expr(a, out));
                }
                Expr::TableCtor(items) => {
                    for it in items {
                        match it {
                            TableItem::Positional(e) | TableItem::Named(_, e) => expr(e, out),
                            TableItem::Keyed(k, e) => {
                                expr(k, out);
                                expr(e, out);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        for stmt in &block.stmts {
            match stmt {
                Stmt::Local(_, Some(e)) | Stmt::Assign(_, e) | Stmt::ExprStmt(e) => expr(e, out),
                Stmt::Return(Some(e)) => expr(e, out),
                Stmt::If(arms, else_b) => {
                    for (c, b) in arms {
                        expr(c, out);
                        exprs(b, out);
                    }
                    if let Some(b) = else_b {
                        exprs(b, out);
                    }
                }
                Stmt::While(c, b) => {
                    expr(c, out);
                    exprs(b, out);
                }
                Stmt::Repeat(b, c) => {
                    exprs(b, out);
                    expr(c, out);
                }
                Stmt::NumericFor {
                    start,
                    stop,
                    step,
                    body,
                    ..
                } => {
                    expr(start, out);
                    expr(stop, out);
                    if let Some(s) = step {
                        expr(s, out);
                    }
                    exprs(body, out);
                }
                Stmt::GenericFor { expr: e, body, .. } => {
                    expr(e, out);
                    exprs(body, out);
                }
                _ => {}
            }
        }
    }
    exprs(block, out);
}

impl AstLinter {
    fn is_local(&self, name: &str) -> bool {
        self.scopes.iter().rev().any(|s| s.contains(name))
    }

    fn at_main_scope(&self) -> bool {
        self.depth == 0 && self.scopes.len() == 1
    }

    fn declare(&mut self, name: &Name) {
        if !self.at_main_scope() {
            self.scopes
                .last_mut()
                .expect("scope stack never empty")
                .insert(name.clone());
        }
    }

    fn check_handler_name(&mut self, name: &str) {
        if handlerish(name) && !crate::HANDLER_NAMES.contains(&name) {
            let hint = suggest(name, crate::HANDLER_NAMES.iter().copied())
                .map(|s| format!(" — did you mean `{s}`?"))
                .unwrap_or_else(|| {
                    format!(
                        " — the runtime dispatches only: {}",
                        crate::HANDLER_NAMES.join(", ")
                    )
                });
            self.diags.push(Diagnostic::error(
                LintId::UnknownHandler,
                self.cur_pos,
                format!("unknown handler name `{name}`; it will never be invoked{hint}"),
            ));
        }
    }

    /// AA001 over a function value flowing into a named location.
    fn check_handler_binding(&mut self, target: &Target, value: &Expr) {
        let func_valued = matches!(value, Expr::Func(_));
        match target {
            Target::Name(n) if func_valued => self.check_handler_name(n),
            Target::Index(obj, key) => {
                if let (Expr::Var(base), Expr::Str(k)) = (&**obj, &**key) {
                    if &**base == "AA" && func_valued {
                        self.check_handler_name(k);
                    }
                }
            }
            _ => {}
        }
        // `AA = { onGet = function() … end }`
        if let (Target::Name(n), Expr::TableCtor(items)) = (target, value) {
            if &**n == "AA" {
                for item in items {
                    if let TableItem::Named(k, Expr::Func(_)) = item {
                        self.check_handler_name(k);
                    }
                }
            }
        }
    }

    /// AA005: a write to a non-`AA` global from inside a function body.
    fn check_global_write(&mut self, name: &str) {
        if self.depth > 0 && !self.is_local(name) && name != "AA" {
            self.diags.push(Diagnostic::warning(
                LintId::GlobalWriteOutsideAa,
                self.cur_pos,
                format!(
                    "handler writes global `{name}` outside the `AA` namespace \
                     (keep mutable state in `AA` so it stays visible and deterministic)"
                ),
            ));
        }
    }

    fn walk_block(&mut self, block: &Block) {
        for (i, stmt) in block.stmts.iter().enumerate() {
            if let Some(&p) = block.at.get(i) {
                self.cur_pos = p;
            }
            self.walk_stmt(stmt);
        }
    }

    fn walk_scoped_block(&mut self, block: &Block) {
        self.scopes.push(HashSet::new());
        self.walk_block(block);
        self.scopes.pop();
    }

    fn walk_def(&mut self, def: &FuncDef) {
        self.scopes.push(def.params.iter().cloned().collect());
        self.depth += 1;
        let saved = self.cur_pos;
        self.walk_block(&def.body);
        self.cur_pos = saved;
        self.depth -= 1;
        self.scopes.pop();
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Local(name, init) => {
                if let Some(e) = init {
                    self.walk_expr(e);
                    // `local onGte = function …` at top level is a global
                    // handler slot, same as a plain assignment.
                    if self.at_main_scope() && matches!(e, Expr::Func(_)) {
                        self.check_handler_name(name);
                    }
                }
                self.declare(name);
            }
            Stmt::Assign(target, expr) => {
                self.walk_expr(expr);
                if let Target::Index(obj, key) = target {
                    self.walk_expr(obj);
                    self.walk_expr(key);
                }
                self.check_handler_binding(target, expr);
                if let Target::Name(n) = target {
                    self.check_global_write(n);
                }
            }
            Stmt::ExprStmt(e) => self.walk_expr(e),
            Stmt::If(arms, else_body) => {
                for (cond, body) in arms {
                    self.walk_expr(cond);
                    self.walk_scoped_block(body);
                }
                if let Some(b) = else_body {
                    self.walk_scoped_block(b);
                }
            }
            Stmt::While(cond, body) => {
                self.walk_expr(cond);
                self.walk_scoped_block(body);
            }
            Stmt::Repeat(body, cond) => {
                // The until-condition sees the body's scope.
                self.scopes.push(HashSet::new());
                self.walk_block(body);
                self.walk_expr(cond);
                self.scopes.pop();
            }
            Stmt::NumericFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                self.walk_expr(start);
                self.walk_expr(stop);
                if let Some(s) = step {
                    self.walk_expr(s);
                }
                self.scopes.push(HashSet::new());
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(var.clone());
                self.walk_block(body);
                self.scopes.pop();
            }
            Stmt::GenericFor {
                k, v, expr, body, ..
            } => {
                self.walk_expr(expr);
                self.scopes.push(HashSet::new());
                let sc = self.scopes.last_mut().expect("scope stack never empty");
                sc.insert(k.clone());
                if let Some(v) = v {
                    sc.insert(v.clone());
                }
                self.walk_block(body);
                self.scopes.pop();
            }
            Stmt::FuncDecl { target, def } => {
                self.check_handler_binding(target, &Expr::Func(def.clone()));
                if let Target::Index(obj, key) = target {
                    self.walk_expr(obj);
                    self.walk_expr(key);
                }
                if let Target::Name(n) = target {
                    self.check_global_write(n);
                }
                self.walk_def(def);
            }
            Stmt::LocalFunc { name, def } => {
                if self.at_main_scope() {
                    self.check_handler_name(name);
                }
                self.declare(name);
                self.walk_def(def);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.walk_expr(e);
                }
            }
            Stmt::Break => {}
        }
    }

    /// Is `name` a live (unshadowed) stdlib module reference here?
    fn stdlib_module(&self, name: &str) -> bool {
        module_members(name).is_some() && !self.shadowed.contains(name) && !self.is_local(name)
    }

    fn walk_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Nil | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) | Expr::Var(_) => {}
            Expr::Index(obj, key) => {
                // AA003: `math.flor`.
                if let (Expr::Var(m), Expr::Str(k)) = (&**obj, &**key) {
                    if self.stdlib_module(m) && stdlib_member(m, k).is_none() {
                        let members = module_members(m).expect("checked above");
                        let hint = suggest(k, members.iter().map(|(n, _)| *n))
                            .map(|s| format!(" — did you mean `{m}.{s}`?"))
                            .unwrap_or_default();
                        self.diags.push(Diagnostic::error(
                            LintId::UnknownStdlibMember,
                            self.cur_pos,
                            format!("`{m}` has no member `{k}`{hint}"),
                        ));
                    }
                }
                self.walk_expr(obj);
                self.walk_expr(key);
            }
            Expr::Call(f, args) => {
                self.check_call(f, args.len());
                self.walk_expr(f);
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::MethodCall(obj, _, args) => {
                self.walk_expr(obj);
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Bin(_, l, r) => {
                self.walk_expr(l);
                self.walk_expr(r);
            }
            Expr::Un(_, e) => self.walk_expr(e),
            Expr::TableCtor(items) => {
                for item in items {
                    match item {
                        TableItem::Positional(e) | TableItem::Named(_, e) => self.walk_expr(e),
                        TableItem::Keyed(k, e) => {
                            self.walk_expr(k);
                            self.walk_expr(e);
                        }
                    }
                }
            }
            Expr::Func(def) => self.walk_def(def),
        }
    }

    /// AA004: stdlib arity and kind checks at call sites.
    fn check_call(&mut self, callee: &Expr, nargs: usize) {
        let (label, sig) = match callee {
            Expr::Index(obj, key) => {
                let (Expr::Var(m), Expr::Str(k)) = (&**obj, &**key) else {
                    return;
                };
                if !self.stdlib_module(m) {
                    return;
                }
                match stdlib_member(m, k) {
                    Some(Member::Func(sig)) => (format!("{m}.{k}"), sig),
                    Some(Member::Const) => {
                        self.diags.push(Diagnostic::error(
                            LintId::StdlibMisuse,
                            self.cur_pos,
                            format!("`{m}.{k}` is a value, not a function"),
                        ));
                        return;
                    }
                    None => return, // AA003 already reported it.
                }
            }
            Expr::Var(n) => {
                if self.shadowed.contains(n) || self.is_local(n) {
                    return;
                }
                match builtin_fn(n) {
                    Some(sig) => (n.to_string(), sig),
                    None => return,
                }
            }
            _ => return,
        };
        if nargs < sig.min {
            self.diags.push(Diagnostic::error(
                LintId::StdlibMisuse,
                self.cur_pos,
                format!(
                    "`{label}` expects at least {} argument{}, got {nargs}",
                    sig.min,
                    if sig.min == 1 { "" } else { "s" }
                ),
            ));
        } else if sig.max.is_some_and(|m| nargs > m) {
            let max = sig.max.expect("checked");
            self.diags.push(Diagnostic::error(
                LintId::StdlibMisuse,
                self.cur_pos,
                format!(
                    "`{label}` accepts at most {max} argument{}, got {nargs}",
                    if max == 1 { "" } else { "s" }
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lints(src: &str) -> Vec<Diagnostic> {
        ast_lints(&parse(src).unwrap())
    }

    fn ids(src: &str) -> Vec<LintId> {
        lints(src).into_iter().map(|d| d.id).collect()
    }

    #[test]
    fn typod_handler_names_are_caught_in_every_idiom() {
        for src in [
            "function onGte(c) return 1 end",
            "onGte = function(c) return 1 end",
            "AA = {}\nfunction AA.onGte(c) return 1 end",
            "AA = {}\nAA.onGte = function(c) return 1 end",
            "AA = { onGte = function(c) return 1 end }",
            "local function onGte(c) return 1 end",
        ] {
            let ds = lints(src);
            assert!(
                ds.iter().any(|d| d.id == LintId::UnknownHandler),
                "missed in: {src}\n{ds:?}"
            );
        }
    }

    #[test]
    fn real_handler_names_and_plain_helpers_pass() {
        for src in [
            "function onGet(c) return 1 end",
            "function onDeliver(m) return m end",
            "AA = { onTimer = function() return 1 end }",
            "function once() return 1 end", // `onc` is lowercase: not handlerish
            "function helper() return 1 end",
            "onGte = 5", // not a function value: AA001 stays quiet
        ] {
            assert!(
                !ids(src).contains(&LintId::UnknownHandler),
                "false positive in: {src}"
            );
        }
    }

    #[test]
    fn typo_suggestion_names_the_real_handler() {
        let ds = lints("function onGte() return 1 end");
        assert!(
            ds[0].message.contains("onGet"),
            "suggestion expected: {}",
            ds[0].message
        );
    }

    #[test]
    fn unknown_stdlib_member_with_suggestion() {
        let ds = lints("function f() return math.flor(1.5) end");
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].id, LintId::UnknownStdlibMember);
        assert!(ds[0].message.contains("math.floor"), "{}", ds[0].message);
        assert!(ids("function f() return math.floor(1.5) end").is_empty());
    }

    #[test]
    fn stdlib_arity_and_kind_mismatches() {
        assert!(ids("x = math.fmod(1)").contains(&LintId::StdlibMisuse));
        assert!(ids("x = math.abs(1, 2)").contains(&LintId::StdlibMisuse));
        assert!(ids("x = math.pi()").contains(&LintId::StdlibMisuse));
        assert!(ids("x = tostring()").contains(&LintId::StdlibMisuse));
        assert!(!ids("x = math.fmod(7, 3)").contains(&LintId::StdlibMisuse));
        assert!(!ids("x = math.max(1, 2, 3, 4)").contains(&LintId::StdlibMisuse));
        assert!(!ids("x = string.format(\"%d-%d\", 1, 2)").contains(&LintId::StdlibMisuse));
    }

    #[test]
    fn shadowed_stdlib_disables_its_lints() {
        assert!(
            ids("math = {flor = 1}\nx = math.flor").is_empty(),
            "a user-rebound `math` is not ours to check"
        );
        assert!(ids("function g(math) return math.flor end").is_empty());
        assert!(ids("local tostring = 1").is_empty());
    }

    #[test]
    fn global_write_outside_aa_warns_only_in_function_bodies() {
        let ds = lints("function onGet() count = count + 1 return count end");
        assert!(
            ds.iter().any(|d| d.id == LintId::GlobalWriteOutsideAa),
            "{ds:?}"
        );
        // Top-level setup writes are the normal install idiom.
        assert!(!ids("count = 0").contains(&LintId::GlobalWriteOutsideAa));
        // AA writes and local writes are fine anywhere.
        assert!(
            !ids("function onGet() AA.n = 1 local x = 2 x = 3 return x end")
                .contains(&LintId::GlobalWriteOutsideAa)
        );
        // Upvalue writes are not global writes.
        assert!(!ids("function mk()
                 local n = 0
                 return function() n = n + 1 return n end
             end")
        .contains(&LintId::GlobalWriteOutsideAa));
    }

    #[test]
    fn positions_point_at_the_offending_statement() {
        let ds = lints("x = 1\ny = 2\nfunction onGte() return 1 end");
        let d = ds
            .iter()
            .find(|d| d.id == LintId::UnknownHandler)
            .expect("AA001");
        assert_eq!(d.pos.line, 3, "{d:?}");
    }
}
