//! AST → bytecode lowering.
//!
//! The compiler turns a parsed [`Block`] into a [`Chunk`]: flat opcode
//! vectors with jump-patched control flow, a deduplicated constant pool, and
//! an interned name table. The key transformation is **compile-time slot
//! resolution**: every local variable and upvalue is resolved here, once, to
//! a frame index, so the VM's steady-state variable access is an array index
//! instead of the tree-walker's scope-chain `HashMap` walk. Only true
//! globals (instance state and sealed stdlib names) keep the name-addressed
//! path, because hosts mutate them between invocations (`set_global`,
//! `refresh_aa_env`) and handlers must observe those writes.
//!
//! Slot kinds:
//!
//! * **registers** — locals never referenced by a nested function; they live
//!   directly in the frame and die with it.
//! * **cells** (`Rc<RefCell<Value>>`) — locals that some nested function
//!   captures. [`Op::NewCell`] allocates a *fresh* cell each time the
//!   declaration executes, which is what gives captured loop variables their
//!   per-iteration identity. Capture analysis is conservative: any name that
//!   appears anywhere inside a nested function body is cell-allocated, which
//!   is always semantically safe (merely slower for false positives).
//! * **upvalues** — a closure's references into enclosing frames, resolved
//!   transitively ([`UpvalSrc`]) and materialized when [`Op::MakeClosure`]
//!   runs.
//!
//! Scoping is lexical (standard Lua). One deliberate quirk mirrors the
//! tree-walker: the *outermost* block of a script runs with the instance's
//! globals scope as its environment, so top-level `local x` and
//! `local function f` compile to global stores — that is what makes
//! top-level handlers visible to [`crate::AaInstance::handler`].

use crate::ast::*;
use crate::error::{CompileError, Pos};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Where a resolved local lives in its frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Direct register: `frame[base + i]`.
    Reg(u16),
    /// Heap cell shared with closures: `cells[i]`.
    Cell(u16),
}

/// Where a closure's upvalue is captured from, relative to the frame
/// executing [`Op::MakeClosure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpvalSrc {
    /// A cell of the enclosing frame.
    ParentCell(u16),
    /// An upvalue of the enclosing closure (transitive capture).
    ParentUpval(u16),
}

/// One bytecode instruction. The VM charges one unit of the instruction
/// budget per executed opcode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[i]`.
    Const(u32),
    /// Push `nil`.
    Nil,
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Push register `i`.
    LoadReg(u16),
    /// Pop into register `i`.
    StoreReg(u16),
    /// Push the contents of cell `i`.
    LoadCell(u16),
    /// Pop into cell `i` (in place; closures sharing the cell observe it).
    StoreCell(u16),
    /// Pop into a *fresh* cell stored at slot `i` (executing a captured
    /// declaration; prior captures keep the old cell).
    NewCell(u16),
    /// Push the contents of upvalue `i`.
    LoadUpval(u16),
    /// Pop into upvalue `i`.
    StoreUpval(u16),
    /// Push the global (or sealed stdlib) binding `names[i]`, nil if absent.
    LoadGlobal(u32),
    /// Pop into the instance-global binding `names[i]`.
    StoreGlobal(u32),
    /// Discard the top of stack.
    Pop,
    /// Unconditional jump to instruction `t`.
    Jump(u32),
    /// Pop; jump to `t` when the value is falsy.
    JumpIfFalse(u32),
    /// `and`: if the top is falsy jump to `t` keeping it, else pop it.
    JumpIfFalseKeep(u32),
    /// `or`: if the top is truthy jump to `t` keeping it, else pop it.
    JumpIfTrueKeep(u32),
    /// Pop `b`, pop `a`, push `a + b`.
    Add,
    /// Pop `b`, pop `a`, push `a - b`.
    Sub,
    /// Pop `b`, pop `a`, push `a * b`.
    Mul,
    /// Pop `b`, pop `a`, push `a / b`.
    Div,
    /// Pop `b`, pop `a`, push the floored modulo `a - floor(a/b)*b`.
    Mod,
    /// Pop `b`, pop `a`, push `a ^ b`.
    Pow,
    /// Pop `b`, pop `a`, push `a .. b`.
    Concat,
    /// Pop `b`, pop `a`, push `a == b`.
    Eq,
    /// Pop `b`, pop `a`, push `a ~= b`.
    Ne,
    /// Pop `b`, pop `a`, push `a < b`.
    Lt,
    /// Pop `b`, pop `a`, push `a <= b`.
    Le,
    /// Pop `b`, pop `a`, push `a > b`.
    Gt,
    /// Pop `b`, pop `a`, push `a >= b`.
    Ge,
    /// Pop `a`, push `-a`.
    Neg,
    /// Pop `a`, push `not a`.
    Not,
    /// Pop `a`, push `#a`.
    Len,
    /// Pop key, pop table, push `table[key]`.
    Index,
    /// Pop a table, push `table[keys[i]]` — the fused form of
    /// `Const k; Index` for literal string keys (`t.field`, `t["field"]`),
    /// skipping the push/pop and the runtime key conversion.
    IndexConst(u32),
    /// Push `globals[names[name]][keys[key]]` — the fully fused form of
    /// `LoadGlobal; IndexConst` for the `AA.field` idiom every handler
    /// leans on (paper Fig. 5).
    GlobalIndexConst {
        /// Index into [`Chunk::names`] of the global.
        name: u32,
        /// Index into [`Chunk::keys`] of the field key.
        key: u32,
    },
    /// Pop key, pop table, pop value, run `table[key] = value`.
    StoreIndex,
    /// Pop a table, pop a value, run `table[keys[i]] = value` — the fused
    /// store counterpart of [`Op::IndexConst`].
    StoreIndexConst(u32),
    /// Push a fresh empty table.
    NewTable,
    /// Pop value, pop key, set them on the table now at the top of stack
    /// (the table stays; used by table constructors).
    SetItem,
    /// Pop an object, push `object.names[i]` then the object again
    /// (method-call receiver threading).
    Method(u32),
    /// Call with `n` arguments: stack holds `f, a1, …, an`; pops all,
    /// pushes the result.
    Call(u8),
    /// Capture upvalues per `protos[i]` and push the closure.
    MakeClosure(u32),
    /// Pop the return value and leave the frame.
    Return,
    /// Pop, coerce to number (numeric-`for` header), push.
    ToNum,
    /// Error if register `i` (the `for` step) is zero.
    ForZeroCheck(u16),
    /// Numeric-`for` test: jump to `exit` when the loop is done.
    ForTest {
        /// Register of the (hidden) loop counter.
        idx: u16,
        /// Register of the stop bound.
        stop: u16,
        /// Register of the step.
        step: u16,
        /// Jump target when the loop finishes.
        exit: u32,
    },
    /// Numeric-`for` advance: `idx += step`, jump back to `top`.
    ForStep {
        /// Register of the (hidden) loop counter.
        idx: u16,
        /// Register of the step.
        step: u16,
        /// Jump target of the loop head.
        top: u32,
    },
    /// Pop a table and push a snapshot iterator onto the frame's iterator
    /// stack (`pairs`/`ipairs`).
    IterPrep(IterKind),
    /// Advance the innermost iterator: push key then value, or jump to
    /// `exit` when exhausted.
    IterNext {
        /// Jump target once the iterator is exhausted (its [`Op::IterEnd`]).
        exit: u32,
    },
    /// Pop the innermost iterator (loop exit and `break` both land here).
    IterEnd,
}

/// One compiled function body.
#[derive(Debug)]
pub struct Proto {
    /// The instruction stream; execution begins at 0 and leaves via
    /// [`Op::Return`].
    pub code: Vec<Op>,
    /// Source position of each instruction, parallel to `code` (the position
    /// of the statement the op was emitted for). The VM never reads this;
    /// the static analyzer uses it to anchor diagnostics.
    pub lines: Vec<Pos>,
    /// Number of register slots the frame needs.
    pub n_regs: u16,
    /// Number of cell slots the frame needs.
    pub n_cells: u16,
    /// Where each parameter is bound, in declaration order.
    pub params: Vec<Slot>,
    /// Capture plan for [`Op::MakeClosure`].
    pub upvals: Vec<UpvalSrc>,
}

/// A fully compiled script: shared, immutable, and instantiated many times
/// (one [`crate::AaInstance`] per resource posting).
#[derive(Debug)]
pub struct Chunk {
    /// Deduplicated literal pool (numbers and strings).
    pub consts: Vec<Value>,
    /// Interned names used by global accesses and method calls.
    pub names: Vec<Rc<str>>,
    /// Pre-built table keys for [`Op::IndexConst`]/[`Op::StoreIndexConst`]
    /// (literal string keys resolved at compile time).
    pub keys: Vec<crate::value::Key>,
    /// Every function body in the script, main last.
    pub protos: Vec<Proto>,
    /// Index of the top-level code in `protos`.
    pub main: usize,
}

/// Lowers a parsed block to bytecode.
///
/// # Errors
///
/// Returns a [`CompileError`] only for capacity overflows (more than `u16`
/// locals in one function, more than 255 call arguments, …) — shapes no
/// real handler reaches.
pub fn compile(block: &Block) -> Result<Chunk, CompileError> {
    let mut c = Compiler {
        consts: Vec::new(),
        const_map: HashMap::new(),
        names: Vec::new(),
        name_map: HashMap::new(),
        keys: Vec::new(),
        key_map: HashMap::new(),
        protos: Vec::new(),
        fns: Vec::new(),
    };
    let main = c.compile_func(&[], block, true)?;
    Ok(Chunk {
        consts: c.consts,
        names: c.names,
        keys: c.keys,
        protos: c.protos,
        main: main as usize,
    })
}

/// Dedup key for the constant pool (`f64` keyed by its bit pattern so the
/// pool can live in a `HashMap`).
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Num(u64),
    Str(Rc<str>),
}

enum Resolved {
    Slot(Slot),
    Upval(u16),
    Global,
}

struct BlockScope {
    locals: Vec<(Name, Slot)>,
    reg_mark: u16,
    cell_mark: u16,
}

struct LoopCtx {
    /// `Jump` sites to patch to the loop's exit label.
    breaks: Vec<usize>,
}

struct FnCtx {
    code: Vec<Op>,
    lines: Vec<Pos>,
    /// Position of the statement currently being compiled; stamped on every
    /// emitted op.
    cur_pos: Pos,
    scopes: Vec<BlockScope>,
    n_regs: u16,
    max_regs: u16,
    n_cells: u16,
    max_cells: u16,
    upvals: Vec<UpvalSrc>,
    upval_names: Vec<Name>,
    /// Names referenced anywhere inside nested function bodies — these
    /// locals must live in cells.
    captured: HashSet<Name>,
    loops: Vec<LoopCtx>,
    top_level: bool,
}

struct Compiler {
    consts: Vec<Value>,
    const_map: HashMap<ConstKey, u32>,
    names: Vec<Rc<str>>,
    name_map: HashMap<Rc<str>, u32>,
    keys: Vec<crate::value::Key>,
    key_map: HashMap<Rc<str>, u32>,
    protos: Vec<Proto>,
    fns: Vec<FnCtx>,
}

fn err(message: impl Into<String>) -> CompileError {
    CompileError {
        pos: Pos { line: 0, col: 0 },
        message: message.into(),
    }
}

impl Compiler {
    fn cur(&mut self) -> &mut FnCtx {
        self.fns.last_mut().expect("compiler function stack")
    }

    fn emit(&mut self, op: Op) -> usize {
        let f = self.cur();
        let pos = f.cur_pos;
        f.code.push(op);
        f.lines.push(pos);
        f.code.len() - 1
    }

    fn here(&mut self) -> u32 {
        self.cur().code.len() as u32
    }

    /// Rewrites the jump at `at` to point at the current end of code.
    fn patch_jump(&mut self, at: usize) {
        let target = self.here();
        let op = &mut self.cur().code[at];
        match op {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::JumpIfFalseKeep(t)
            | Op::JumpIfTrueKeep(t)
            | Op::ForTest { exit: t, .. }
            | Op::IterNext { exit: t } => *t = target,
            other => unreachable!("patching a non-jump {other:?}"),
        }
    }

    fn const_idx(&mut self, key: ConstKey, v: impl FnOnce() -> Value) -> Result<u32, CompileError> {
        if let Some(&i) = self.const_map.get(&key) {
            return Ok(i);
        }
        let i = u32::try_from(self.consts.len()).map_err(|_| err("constant pool overflow"))?;
        self.consts.push(v());
        self.const_map.insert(key, i);
        Ok(i)
    }

    fn num_const(&mut self, n: f64) -> Result<u32, CompileError> {
        self.const_idx(ConstKey::Num(n.to_bits()), || Value::Num(n))
    }

    fn str_const(&mut self, s: &Name) -> Result<u32, CompileError> {
        self.const_idx(ConstKey::Str(Rc::clone(s)), || Value::Str(Rc::clone(s)))
    }

    fn key_idx(&mut self, s: &Name) -> Result<u32, CompileError> {
        if let Some(&i) = self.key_map.get(s) {
            return Ok(i);
        }
        let i = u32::try_from(self.keys.len()).map_err(|_| err("key pool overflow"))?;
        self.keys.push(crate::value::Key::Str(Rc::clone(s)));
        self.key_map.insert(Rc::clone(s), i);
        Ok(i)
    }

    fn name_idx(&mut self, name: &Name) -> Result<u32, CompileError> {
        if let Some(&i) = self.name_map.get(name) {
            return Ok(i);
        }
        let i = u32::try_from(self.names.len()).map_err(|_| err("name table overflow"))?;
        self.names.push(Rc::clone(name));
        self.name_map.insert(Rc::clone(name), i);
        Ok(i)
    }

    // ---- scopes and slots ----

    fn begin_scope(&mut self) {
        let f = self.cur();
        f.scopes.push(BlockScope {
            locals: Vec::new(),
            reg_mark: f.n_regs,
            cell_mark: f.n_cells,
        });
    }

    fn end_scope(&mut self) {
        let f = self.cur();
        let sc = f.scopes.pop().expect("scope underflow");
        // Slots are block-scoped: siblings reuse them. Closures keep their
        // captured cells alive through the Rc regardless of slot reuse.
        f.n_regs = sc.reg_mark;
        f.n_cells = sc.cell_mark;
    }

    fn alloc_reg(&mut self) -> Result<u16, CompileError> {
        let f = self.cur();
        let r = f.n_regs;
        f.n_regs = f
            .n_regs
            .checked_add(1)
            .ok_or_else(|| err("too many locals"))?;
        f.max_regs = f.max_regs.max(f.n_regs);
        Ok(r)
    }

    fn alloc_cell(&mut self) -> Result<u16, CompileError> {
        let f = self.cur();
        let c = f.n_cells;
        f.n_cells = f
            .n_cells
            .checked_add(1)
            .ok_or_else(|| err("too many captured locals"))?;
        f.max_cells = f.max_cells.max(f.n_cells);
        Ok(c)
    }

    fn declare_local(&mut self, name: &Name) -> Result<Slot, CompileError> {
        let slot = if self.cur().captured.contains(name) {
            Slot::Cell(self.alloc_cell()?)
        } else {
            Slot::Reg(self.alloc_reg()?)
        };
        let f = self.cur();
        f.scopes
            .last_mut()
            .expect("declaration outside any scope")
            .locals
            .push((Rc::clone(name), slot));
        Ok(slot)
    }

    /// Is the compiler at the outermost block of the top-level code, where
    /// `local` declarations land in the instance globals (matching the
    /// tree-walker, whose top-level environment *is* the globals scope)?
    fn at_main_scope(&mut self) -> bool {
        let f = self.cur();
        f.top_level && f.scopes.len() == 1
    }

    fn find_local(f: &FnCtx, name: &str) -> Option<Slot> {
        f.scopes.iter().rev().find_map(|sc| {
            sc.locals
                .iter()
                .rev()
                .find(|(n, _)| &**n == name)
                .map(|&(_, slot)| slot)
        })
    }

    fn resolve(&mut self, name: &str) -> Resolved {
        let top = self.fns.len() - 1;
        if let Some(slot) = Self::find_local(&self.fns[top], name) {
            return Resolved::Slot(slot);
        }
        match self.resolve_upval(top, name) {
            Some(u) => Resolved::Upval(u),
            None => Resolved::Global,
        }
    }

    /// Resolves `name` as an upvalue of function `fi`, adding capture specs
    /// to every intermediate function (transitive capture).
    fn resolve_upval(&mut self, fi: usize, name: &str) -> Option<u16> {
        if fi == 0 {
            return None;
        }
        if let Some(i) = self.fns[fi].upval_names.iter().position(|n| &**n == name) {
            return Some(i as u16);
        }
        let src = if let Some(slot) = Self::find_local(&self.fns[fi - 1], name) {
            match slot {
                Slot::Cell(c) => UpvalSrc::ParentCell(c),
                // Conservative capture analysis cell-allocates every local
                // referenced from a nested function, so a captured register
                // cannot exist.
                Slot::Reg(_) => unreachable!("captured local in a register"),
            }
        } else {
            UpvalSrc::ParentUpval(self.resolve_upval(fi - 1, name)?)
        };
        let f = &mut self.fns[fi];
        f.upvals.push(src);
        f.upval_names.push(Rc::from(name));
        Some((f.upvals.len() - 1) as u16)
    }

    // ---- functions ----

    fn compile_func(
        &mut self,
        params: &[Name],
        body: &Block,
        top_level: bool,
    ) -> Result<u32, CompileError> {
        let mut captured = HashSet::new();
        captured_names_block(body, &mut captured);
        self.fns.push(FnCtx {
            code: Vec::new(),
            lines: Vec::new(),
            cur_pos: Pos { line: 0, col: 0 },
            scopes: Vec::new(),
            n_regs: 0,
            max_regs: 0,
            n_cells: 0,
            max_cells: 0,
            upvals: Vec::new(),
            upval_names: Vec::new(),
            captured,
            loops: Vec::new(),
            top_level,
        });
        self.begin_scope();
        let mut param_slots = Vec::with_capacity(params.len());
        for p in params {
            param_slots.push(self.declare_local(p)?);
        }
        self.compile_stmts(body)?;
        // Implicit `return nil` falling off the end.
        self.emit(Op::Nil);
        self.emit(Op::Return);
        let f = self.fns.pop().expect("function underflow");
        let i = u32::try_from(self.protos.len()).map_err(|_| err("too many functions"))?;
        self.protos.push(Proto {
            code: f.code,
            lines: f.lines,
            n_regs: f.max_regs,
            n_cells: f.max_cells,
            params: param_slots,
            upvals: f.upvals,
        });
        Ok(i)
    }

    /// Compiles a block's statements in a fresh scope.
    fn compile_block(&mut self, block: &Block) -> Result<(), CompileError> {
        self.begin_scope();
        self.compile_stmts(block)?;
        self.end_scope();
        Ok(())
    }

    /// Compiles a block's statements in the *current* scope (function
    /// bodies, `repeat` bodies whose scope must stay open for `until`).
    fn compile_stmts(&mut self, block: &Block) -> Result<(), CompileError> {
        for (i, stmt) in block.stmts.iter().enumerate() {
            if let Some(&p) = block.at.get(i) {
                self.cur().cur_pos = p;
            }
            self.compile_stmt(stmt)?;
        }
        Ok(())
    }

    // ---- statements ----

    fn compile_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Local(name, init) => {
                match init {
                    Some(e) => self.compile_expr(e)?,
                    None => {
                        self.emit(Op::Nil);
                    }
                }
                if self.at_main_scope() {
                    let ni = self.name_idx(name)?;
                    self.emit(Op::StoreGlobal(ni));
                } else {
                    // Declared *after* the initializer: `local x = x` reads
                    // the outer binding.
                    let slot = self.declare_local(name)?;
                    self.emit_decl_store(slot);
                }
                Ok(())
            }
            Stmt::Assign(target, expr) => {
                // Value first, then the target's object/key — the evaluation
                // order the tree-walker uses.
                self.compile_expr(expr)?;
                self.compile_store_target(target)
            }
            Stmt::ExprStmt(e) => {
                self.compile_expr(e)?;
                self.emit(Op::Pop);
                Ok(())
            }
            Stmt::If(arms, else_body) => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    self.compile_expr(cond)?;
                    let jf = self.emit(Op::JumpIfFalse(0));
                    self.compile_block(body)?;
                    end_jumps.push(self.emit(Op::Jump(0)));
                    self.patch_jump(jf);
                }
                if let Some(body) = else_body {
                    self.compile_block(body)?;
                }
                for j in end_jumps {
                    self.patch_jump(j);
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let top = self.here();
                self.compile_expr(cond)?;
                let exit = self.emit(Op::JumpIfFalse(0));
                self.cur().loops.push(LoopCtx { breaks: Vec::new() });
                self.compile_block(body)?;
                self.emit(Op::Jump(top));
                self.patch_jump(exit);
                self.finish_loop()
            }
            Stmt::Repeat(body, cond) => {
                let top = self.here();
                self.cur().loops.push(LoopCtx { breaks: Vec::new() });
                // The until-condition sees the body's scope.
                self.begin_scope();
                self.compile_stmts(body)?;
                self.compile_expr(cond)?;
                self.end_scope();
                self.emit(Op::JumpIfFalse(top));
                self.finish_loop()
            }
            Stmt::NumericFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                self.begin_scope();
                let idx = self.alloc_reg()?;
                let stop_r = self.alloc_reg()?;
                let step_r = self.alloc_reg()?;
                self.compile_expr(start)?;
                self.emit(Op::ToNum);
                self.emit(Op::StoreReg(idx));
                self.compile_expr(stop)?;
                self.emit(Op::ToNum);
                self.emit(Op::StoreReg(stop_r));
                match step {
                    Some(e) => {
                        self.compile_expr(e)?;
                        self.emit(Op::ToNum);
                    }
                    None => {
                        let one = self.num_const(1.0)?;
                        self.emit(Op::Const(one));
                    }
                }
                self.emit(Op::StoreReg(step_r));
                self.emit(Op::ForZeroCheck(step_r));
                let top = self.here();
                let test = self.emit(Op::ForTest {
                    idx,
                    stop: stop_r,
                    step: step_r,
                    exit: 0,
                });
                self.cur().loops.push(LoopCtx { breaks: Vec::new() });
                self.begin_scope();
                let slot = self.declare_local(var)?;
                self.emit(Op::LoadReg(idx));
                self.emit_decl_store(slot);
                self.compile_stmts(body)?;
                self.end_scope();
                self.emit(Op::ForStep {
                    idx,
                    step: step_r,
                    top,
                });
                self.patch_jump(test);
                self.finish_loop()?;
                self.end_scope();
                Ok(())
            }
            Stmt::GenericFor {
                k,
                v,
                kind,
                expr,
                body,
            } => {
                self.compile_expr(expr)?;
                self.emit(Op::IterPrep(*kind));
                let top = self.here();
                let next = self.emit(Op::IterNext { exit: 0 });
                self.cur().loops.push(LoopCtx { breaks: Vec::new() });
                self.begin_scope();
                let k_slot = self.declare_local(k)?;
                // IterNext pushed key then value; bind value (top) first.
                match v {
                    Some(vname) => {
                        let v_slot = self.declare_local(vname)?;
                        self.emit_decl_store(v_slot);
                    }
                    None => {
                        self.emit(Op::Pop);
                    }
                }
                self.emit_decl_store(k_slot);
                self.compile_stmts(body)?;
                self.end_scope();
                self.emit(Op::Jump(top));
                self.patch_jump(next);
                // break jumps land here too, so the iterator is always
                // popped on the way out.
                self.finish_loop()?;
                self.emit(Op::IterEnd);
                Ok(())
            }
            Stmt::FuncDecl { target, def } => {
                let proto = self.compile_func(&def.params, &def.body, false)?;
                self.emit(Op::MakeClosure(proto));
                self.compile_store_target(target)
            }
            Stmt::LocalFunc { name, def } => {
                if self.at_main_scope() {
                    let proto = self.compile_func(&def.params, &def.body, false)?;
                    self.emit(Op::MakeClosure(proto));
                    let ni = self.name_idx(name)?;
                    self.emit(Op::StoreGlobal(ni));
                    return Ok(());
                }
                // Declare before compiling the body so it can recurse.
                let slot = self.declare_local(name)?;
                if let Slot::Cell(c) = slot {
                    // The cell must exist before MakeClosure captures it.
                    self.emit(Op::Nil);
                    self.emit(Op::NewCell(c));
                }
                let proto = self.compile_func(&def.params, &def.body, false)?;
                self.emit(Op::MakeClosure(proto));
                match slot {
                    Slot::Reg(r) => self.emit(Op::StoreReg(r)),
                    Slot::Cell(c) => self.emit(Op::StoreCell(c)),
                };
                Ok(())
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.compile_expr(e)?,
                    None => {
                        self.emit(Op::Nil);
                    }
                }
                self.emit(Op::Return);
                Ok(())
            }
            Stmt::Break => {
                if self.cur().loops.is_empty() {
                    // The tree-walker treats a stray top-level break as
                    // "stop the script"; match it.
                    self.emit(Op::Nil);
                    self.emit(Op::Return);
                    return Ok(());
                }
                let j = self.emit(Op::Jump(0));
                self.cur()
                    .loops
                    .last_mut()
                    .expect("loop context")
                    .breaks
                    .push(j);
                Ok(())
            }
        }
    }

    /// Pops the innermost loop context and patches its breaks to land here.
    fn finish_loop(&mut self) -> Result<(), CompileError> {
        let ctx = self.cur().loops.pop().expect("loop underflow");
        for j in ctx.breaks {
            self.patch_jump(j);
        }
        Ok(())
    }

    /// Emits the store for a freshly declared local (the value is on top of
    /// the stack). Cells get a *new* allocation so earlier captures are
    /// unaffected.
    fn emit_decl_store(&mut self, slot: Slot) {
        match slot {
            Slot::Reg(r) => self.emit(Op::StoreReg(r)),
            Slot::Cell(c) => self.emit(Op::NewCell(c)),
        };
    }

    /// Emits the store consuming the value on top of the stack into an
    /// assignment target.
    fn compile_store_target(&mut self, target: &Target) -> Result<(), CompileError> {
        match target {
            Target::Name(n) => {
                match self.resolve(n) {
                    Resolved::Slot(Slot::Reg(r)) => self.emit(Op::StoreReg(r)),
                    Resolved::Slot(Slot::Cell(c)) => self.emit(Op::StoreCell(c)),
                    Resolved::Upval(u) => self.emit(Op::StoreUpval(u)),
                    Resolved::Global => {
                        let ni = self.name_idx(n)?;
                        self.emit(Op::StoreGlobal(ni))
                    }
                };
                Ok(())
            }
            Target::Index(obj, key) => {
                self.compile_expr(obj)?;
                if let Expr::Str(s) = &**key {
                    let ki = self.key_idx(s)?;
                    self.emit(Op::StoreIndexConst(ki));
                } else {
                    self.compile_expr(key)?;
                    self.emit(Op::StoreIndex);
                }
                Ok(())
            }
        }
    }

    // ---- expressions ----

    fn compile_expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::Nil => {
                self.emit(Op::Nil);
                Ok(())
            }
            Expr::Bool(true) => {
                self.emit(Op::True);
                Ok(())
            }
            Expr::Bool(false) => {
                self.emit(Op::False);
                Ok(())
            }
            Expr::Num(n) => {
                let i = self.num_const(*n)?;
                self.emit(Op::Const(i));
                Ok(())
            }
            Expr::Str(s) => {
                let i = self.str_const(s)?;
                self.emit(Op::Const(i));
                Ok(())
            }
            Expr::Var(n) => {
                match self.resolve(n) {
                    Resolved::Slot(Slot::Reg(r)) => self.emit(Op::LoadReg(r)),
                    Resolved::Slot(Slot::Cell(c)) => self.emit(Op::LoadCell(c)),
                    Resolved::Upval(u) => self.emit(Op::LoadUpval(u)),
                    Resolved::Global => {
                        let ni = self.name_idx(n)?;
                        self.emit(Op::LoadGlobal(ni))
                    }
                };
                Ok(())
            }
            Expr::Index(obj, key) => {
                if let (Expr::Var(n), Expr::Str(s)) = (&**obj, &**key) {
                    if matches!(self.resolve(n), Resolved::Global) {
                        let name = self.name_idx(n)?;
                        let key = self.key_idx(s)?;
                        self.emit(Op::GlobalIndexConst { name, key });
                        return Ok(());
                    }
                }
                self.compile_expr(obj)?;
                if let Expr::Str(s) = &**key {
                    let ki = self.key_idx(s)?;
                    self.emit(Op::IndexConst(ki));
                } else {
                    self.compile_expr(key)?;
                    self.emit(Op::Index);
                }
                Ok(())
            }
            Expr::Call(f, args) => {
                self.compile_expr(f)?;
                for a in args {
                    self.compile_expr(a)?;
                }
                let n = u8::try_from(args.len()).map_err(|_| err("too many call arguments"))?;
                self.emit(Op::Call(n));
                Ok(())
            }
            Expr::MethodCall(obj, method, args) => {
                self.compile_expr(obj)?;
                let ni = self.name_idx(method)?;
                self.emit(Op::Method(ni));
                for a in args {
                    self.compile_expr(a)?;
                }
                let n = u8::try_from(args.len() + 1).map_err(|_| err("too many call arguments"))?;
                self.emit(Op::Call(n));
                Ok(())
            }
            Expr::Bin(BinOp::And, l, r) => {
                self.compile_expr(l)?;
                let j = self.emit(Op::JumpIfFalseKeep(0));
                self.compile_expr(r)?;
                self.patch_jump(j);
                Ok(())
            }
            Expr::Bin(BinOp::Or, l, r) => {
                self.compile_expr(l)?;
                let j = self.emit(Op::JumpIfTrueKeep(0));
                self.compile_expr(r)?;
                self.patch_jump(j);
                Ok(())
            }
            Expr::Bin(op, l, r) => {
                self.compile_expr(l)?;
                self.compile_expr(r)?;
                self.emit(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Pow => Op::Pow,
                    BinOp::Concat => Op::Concat,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
                Ok(())
            }
            Expr::Un(op, e) => {
                self.compile_expr(e)?;
                self.emit(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                    UnOp::Len => Op::Len,
                });
                Ok(())
            }
            Expr::TableCtor(items) => {
                self.emit(Op::NewTable);
                let mut next_index = 1i64;
                for item in items {
                    match item {
                        TableItem::Positional(e) => {
                            let i = self.num_const(next_index as f64)?;
                            self.emit(Op::Const(i));
                            self.compile_expr(e)?;
                            next_index += 1;
                        }
                        TableItem::Named(n, e) => {
                            let i = self.str_const(n)?;
                            self.emit(Op::Const(i));
                            self.compile_expr(e)?;
                        }
                        TableItem::Keyed(k, e) => {
                            self.compile_expr(k)?;
                            self.compile_expr(e)?;
                        }
                    }
                    self.emit(Op::SetItem);
                }
                Ok(())
            }
            Expr::Func(def) => {
                let proto = self.compile_func(&def.params, &def.body, false)?;
                self.emit(Op::MakeClosure(proto));
                Ok(())
            }
        }
    }
}

// ---- conservative capture analysis ----

/// Collects every variable name referenced (read or written) inside any
/// function definition nested within `block` — the names whose enclosing
/// locals must be cell-allocated.
fn captured_names_block(block: &Block, out: &mut HashSet<Name>) {
    for stmt in &block.stmts {
        captured_names_stmt(stmt, out);
    }
}

fn captured_names_stmt(stmt: &Stmt, out: &mut HashSet<Name>) {
    match stmt {
        Stmt::Local(_, init) => {
            if let Some(e) = init {
                captured_names_expr(e, out);
            }
        }
        Stmt::Assign(target, e) => {
            captured_names_target(target, out);
            captured_names_expr(e, out);
        }
        Stmt::ExprStmt(e) => captured_names_expr(e, out),
        Stmt::If(arms, else_body) => {
            for (c, b) in arms {
                captured_names_expr(c, out);
                captured_names_block(b, out);
            }
            if let Some(b) = else_body {
                captured_names_block(b, out);
            }
        }
        Stmt::While(c, b) => {
            captured_names_expr(c, out);
            captured_names_block(b, out);
        }
        Stmt::Repeat(b, c) => {
            captured_names_block(b, out);
            captured_names_expr(c, out);
        }
        Stmt::NumericFor {
            start,
            stop,
            step,
            body,
            ..
        } => {
            captured_names_expr(start, out);
            captured_names_expr(stop, out);
            if let Some(e) = step {
                captured_names_expr(e, out);
            }
            captured_names_block(body, out);
        }
        Stmt::GenericFor { expr, body, .. } => {
            captured_names_expr(expr, out);
            captured_names_block(body, out);
        }
        Stmt::FuncDecl { target, def } => {
            captured_names_target(target, out);
            all_names_block(&def.body, out);
        }
        Stmt::LocalFunc { def, .. } => all_names_block(&def.body, out),
        Stmt::Return(e) => {
            if let Some(e) = e {
                captured_names_expr(e, out);
            }
        }
        Stmt::Break => {}
    }
}

fn captured_names_target(target: &Target, out: &mut HashSet<Name>) {
    if let Target::Index(obj, key) = target {
        captured_names_expr(obj, out);
        captured_names_expr(key, out);
    }
}

fn captured_names_expr(expr: &Expr, out: &mut HashSet<Name>) {
    match expr {
        Expr::Nil | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) | Expr::Var(_) => {}
        Expr::Index(a, b) => {
            captured_names_expr(a, out);
            captured_names_expr(b, out);
        }
        Expr::Call(f, args) => {
            captured_names_expr(f, out);
            for a in args {
                captured_names_expr(a, out);
            }
        }
        Expr::MethodCall(obj, _, args) => {
            captured_names_expr(obj, out);
            for a in args {
                captured_names_expr(a, out);
            }
        }
        Expr::Bin(_, l, r) => {
            captured_names_expr(l, out);
            captured_names_expr(r, out);
        }
        Expr::Un(_, e) => captured_names_expr(e, out),
        Expr::TableCtor(items) => {
            for item in items {
                match item {
                    TableItem::Positional(e) | TableItem::Named(_, e) => {
                        captured_names_expr(e, out)
                    }
                    TableItem::Keyed(k, e) => {
                        captured_names_expr(k, out);
                        captured_names_expr(e, out);
                    }
                }
            }
        }
        Expr::Func(def) => all_names_block(&def.body, out),
    }
}

/// Collects every variable reference in `block`, including inside nested
/// function definitions (used once we are *inside* a nested function).
fn all_names_block(block: &Block, out: &mut HashSet<Name>) {
    for stmt in &block.stmts {
        all_names_stmt(stmt, out);
    }
}

fn all_names_stmt(stmt: &Stmt, out: &mut HashSet<Name>) {
    match stmt {
        Stmt::Local(_, init) => {
            if let Some(e) = init {
                all_names_expr(e, out);
            }
        }
        Stmt::Assign(target, e) => {
            all_names_target(target, out);
            all_names_expr(e, out);
        }
        Stmt::ExprStmt(e) => all_names_expr(e, out),
        Stmt::If(arms, else_body) => {
            for (c, b) in arms {
                all_names_expr(c, out);
                all_names_block(b, out);
            }
            if let Some(b) = else_body {
                all_names_block(b, out);
            }
        }
        Stmt::While(c, b) => {
            all_names_expr(c, out);
            all_names_block(b, out);
        }
        Stmt::Repeat(b, c) => {
            all_names_block(b, out);
            all_names_expr(c, out);
        }
        Stmt::NumericFor {
            start,
            stop,
            step,
            body,
            ..
        } => {
            all_names_expr(start, out);
            all_names_expr(stop, out);
            if let Some(e) = step {
                all_names_expr(e, out);
            }
            all_names_block(body, out);
        }
        Stmt::GenericFor { expr, body, .. } => {
            all_names_expr(expr, out);
            all_names_block(body, out);
        }
        Stmt::FuncDecl { target, def } => {
            all_names_target(target, out);
            all_names_block(&def.body, out);
        }
        Stmt::LocalFunc { def, .. } => all_names_block(&def.body, out),
        Stmt::Return(e) => {
            if let Some(e) = e {
                all_names_expr(e, out);
            }
        }
        Stmt::Break => {}
    }
}

fn all_names_target(target: &Target, out: &mut HashSet<Name>) {
    match target {
        Target::Name(n) => {
            out.insert(Rc::clone(n));
        }
        Target::Index(obj, key) => {
            all_names_expr(obj, out);
            all_names_expr(key, out);
        }
    }
}

fn all_names_expr(expr: &Expr, out: &mut HashSet<Name>) {
    match expr {
        Expr::Nil | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) => {}
        Expr::Var(n) => {
            out.insert(Rc::clone(n));
        }
        Expr::Index(a, b) => {
            all_names_expr(a, out);
            all_names_expr(b, out);
        }
        Expr::Call(f, args) => {
            all_names_expr(f, out);
            for a in args {
                all_names_expr(a, out);
            }
        }
        Expr::MethodCall(obj, _, args) => {
            all_names_expr(obj, out);
            for a in args {
                all_names_expr(a, out);
            }
        }
        Expr::Bin(_, l, r) => {
            all_names_expr(l, out);
            all_names_expr(r, out);
        }
        Expr::Un(_, e) => all_names_expr(e, out),
        Expr::TableCtor(items) => {
            for item in items {
                match item {
                    TableItem::Positional(e) | TableItem::Named(_, e) => all_names_expr(e, out),
                    TableItem::Keyed(k, e) => {
                        all_names_expr(k, out);
                        all_names_expr(e, out);
                    }
                }
            }
        }
        Expr::Func(def) => all_names_block(&def.body, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn chunk_of(src: &str) -> Chunk {
        compile(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn literals_are_pooled_once() {
        let c = chunk_of(r#"x = "hi" .. "hi" .. "hi" y = 1 + 1"#);
        let strs = c
            .consts
            .iter()
            .filter(|v| matches!(v, Value::Str(_)))
            .count();
        let nums = c
            .consts
            .iter()
            .filter(|v| matches!(v, Value::Num(_)))
            .count();
        assert_eq!(strs, 1, "identical string literals share one slot");
        assert_eq!(nums, 1, "identical numbers share one slot");
    }

    #[test]
    fn locals_resolve_to_slots_not_names() {
        // A function-local variable must never emit a global access.
        let c = chunk_of("function f(a) local b = a + 1 return b end");
        let f = &c.protos[0];
        assert!(
            !f.code
                .iter()
                .any(|op| matches!(op, Op::LoadGlobal(_) | Op::StoreGlobal(_))),
            "locals must compile to register slots: {:?}",
            f.code
        );
        assert!(f.code.iter().any(|op| matches!(op, Op::LoadReg(_))));
    }

    #[test]
    fn top_level_locals_become_instance_globals() {
        // Matching the tree-walker: the script's outermost block runs in the
        // globals scope, so handlers see top-level locals.
        let c = chunk_of("local x = 1");
        let main = &c.protos[c.main];
        assert!(main.code.iter().any(|op| matches!(op, Op::StoreGlobal(_))));
    }

    #[test]
    fn captured_locals_get_cells_plain_locals_get_registers() {
        let c = chunk_of(
            "function outer()
                 local shared = 0
                 local plain = 1
                 local function inc() shared = shared + 1 end
                 inc()
                 return plain
             end",
        );
        let outer = c
            .protos
            .iter()
            .find(|p| p.code.iter().any(|op| matches!(op, Op::NewCell(_))))
            .expect("outer must cell-allocate `shared`");
        assert!(
            outer.code.iter().any(|op| matches!(op, Op::StoreReg(_))),
            "`plain` must stay in a register"
        );
        // The inner function reaches `shared` through an upvalue.
        let inner = c
            .protos
            .iter()
            .find(|p| !p.upvals.is_empty())
            .expect("inner must capture an upvalue");
        assert_eq!(inner.upvals, vec![UpvalSrc::ParentCell(0)]);
    }

    #[test]
    fn jumps_are_patched_in_bounds() {
        let c = chunk_of(
            "for i = 1, 10 do
                 if i % 2 == 0 then x = i else y = i end
                 while y do y = nil end
             end
             for k, v in pairs(t) do z = k end",
        );
        for p in &c.protos {
            for op in &p.code {
                let t = match op {
                    Op::Jump(t)
                    | Op::JumpIfFalse(t)
                    | Op::JumpIfFalseKeep(t)
                    | Op::JumpIfTrueKeep(t)
                    | Op::ForTest { exit: t, .. }
                    | Op::ForStep { top: t, .. }
                    | Op::IterNext { exit: t } => *t,
                    _ => continue,
                };
                assert!((t as usize) < p.code.len(), "jump target {t} out of bounds");
            }
        }
    }

    #[test]
    fn slot_counts_cover_loop_hidden_registers() {
        let c = chunk_of("function f() for i = 1, 3 do local a = i end end");
        let f = &c.protos[0];
        // idx/stop/step hidden regs + i + a.
        assert!(f.n_regs >= 5, "expected ≥5 registers, got {}", f.n_regs);
    }
}
