//! Abstract syntax tree for AAScript.

use std::rc::Rc;

/// An interned identifier or string literal.
///
/// Names are interned as `Rc<str>` at parse time so that the evaluators can
/// clone them (for map keys, method lookups, string-literal values, …)
/// without allocating.
pub type Name = Rc<str>;

/// A full script: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Source position of each statement, parallel to `stmts`. Evaluators
    /// ignore it; the static analyzer uses it to anchor diagnostics.
    pub at: Vec<crate::error::Pos>,
}

/// A function definition (named or anonymous).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Parameter names, in order.
    pub params: Vec<Name>,
    /// The function body.
    pub body: Block,
}

/// The two syntactic iterator forms supported by `for ... in`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterKind {
    /// `pairs(t)` — every key/value in deterministic key order.
    Pairs,
    /// `ipairs(t)` — `1..#t` array entries.
    Ipairs,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::enum_variant_names)]
pub enum Stmt {
    /// `local name = expr` (expr optional → nil).
    Local(Name, Option<Expr>),
    /// `target = expr` where target is a name or index chain.
    Assign(Target, Expr),
    /// An expression evaluated for its side effects (must be a call).
    ExprStmt(Expr),
    /// `if cond then block {elseif cond then block} [else block] end`.
    If(Vec<(Expr, Block)>, Option<Block>),
    /// `while cond do block end`.
    While(Expr, Block),
    /// `repeat block until cond`.
    Repeat(Block, Expr),
    /// `for var = start, stop [, step] do block end`.
    NumericFor {
        /// Loop variable.
        var: Name,
        /// Start expression.
        start: Expr,
        /// Stop expression (inclusive).
        stop: Expr,
        /// Step expression (default 1).
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `for k, v in pairs(t) do block end` (and `ipairs`).
    GenericFor {
        /// Key (or index) variable.
        k: Name,
        /// Value variable (optional).
        v: Option<Name>,
        /// Which iterator.
        kind: IterKind,
        /// The table expression.
        expr: Expr,
        /// Loop body.
        body: Block,
    },
    /// `function name(...) body end` or `function a.b.c(...) ... end`.
    FuncDecl {
        /// Assignment target for the function value.
        target: Target,
        /// The function itself.
        def: Rc<FuncDef>,
    },
    /// `local function name(...) body end`.
    LocalFunc {
        /// Local name bound to the function.
        name: Name,
        /// The function itself.
        def: Rc<FuncDef>,
    },
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `break`.
    Break,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A plain variable.
    Name(Name),
    /// `obj[key]` / `obj.key`.
    Index(Box<Expr>, Box<Expr>),
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^`
    Pow,
    /// `..`
    Concat,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `not`
    Not,
    /// `#`
    Len,
}

/// One entry in a table constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum TableItem {
    /// `value` — appended at the next array index.
    Positional(Expr),
    /// `name = value`.
    Named(Name, Expr),
    /// `[key] = value`.
    Keyed(Expr, Expr),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `nil`
    Nil,
    /// `true` / `false`
    Bool(bool),
    /// A number literal.
    Num(f64),
    /// A string literal.
    Str(Name),
    /// A variable reference.
    Var(Name),
    /// `expr[expr]` / `expr.name`.
    Index(Box<Expr>, Box<Expr>),
    /// `f(args)`.
    Call(Box<Expr>, Vec<Expr>),
    /// `obj:method(args)` — sugar for `obj.method(obj, args)`.
    MethodCall(Box<Expr>, Name, Vec<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// `{ ... }` table constructor.
    TableCtor(Vec<TableItem>),
    /// `function(...) body end`.
    Func(Rc<FuncDef>),
}
