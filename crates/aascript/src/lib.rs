//! # aascript — the sandboxed active-attribute scripting runtime
//!
//! RBAY attaches to each resource attribute a handler written by the site
//! admin and invoked at runtime (paper §III). The paper used a modified Lua
//! interpreter; this crate is a from-scratch implementation of the same
//! idea: a small Lua-style language whose only data structure is the table,
//! executed under two sandbox restrictions:
//!
//! 1. **Instruction budget** — every evaluation step decrements a counter;
//!    exhaustion terminates the handler immediately.
//! 2. **No dangerous libraries** — only `math`, `string`, and `table`
//!    manipulation plus `tostring`/`tonumber`/`type` exist; there is no
//!    `io`, `os`, `require`, or `load`.
//!
//! ## Example: the paper's Fig. 5 password handler
//!
//! ```
//! use aascript::{Script, SharedSandbox, Value};
//!
//! let src = r#"
//!     AA = {NodeId = 27,
//!           IP = "131.94.130.118",
//!           Password = "3053482032"}
//!     function onGet(caller, password)
//!         if (password == AA.Password) then
//!             return AA.NodeId
//!         end
//!         return nil
//!     end
//! "#;
//! let sandbox = SharedSandbox::new();
//! let script = Script::compile(src)?;
//! let aa = script.instantiate(&sandbox, 10_000)?;
//! let ok = aa.invoke("onGet", &[Value::str("joe"), Value::str("3053482032")], 10_000)?;
//! assert_eq!(ok.as_num().unwrap(), 27.0);
//! let denied = aa.invoke("onGet", &[Value::str("joe"), Value::str("wrong")], 10_000)?;
//! assert!(!denied.truthy());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod ast;
pub mod compile;
mod error;
mod interp;
mod lexer;
mod parser;
mod stdlib;
mod value;
pub mod vm;

pub use error::{CompileError, Pos, RuntimeError};
pub use value::{display_value, BcClosure, Key, NativeFn, Table, Value};

use interp::{child_env, lookup, scope_size_bytes, sealed_env_from, Env, Interp};
use std::rc::Rc;
use vm::Vm;

/// Which execution engine runs a script.
///
/// Both engines share the parser, values, stdlib, and sandbox rules, and
/// are kept behaviorally identical (a differential property test asserts
/// it). The tree-walker survives as the reference oracle; the bytecode VM
/// is the production engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Compile to bytecode and run on the VM (default). The instruction
    /// budget is charged per opcode.
    #[default]
    Bytecode,
    /// Walk the AST directly. The instruction budget is charged per
    /// visited node.
    TreeWalk,
}

/// The standard handler names of the active-attribute API (paper Table I).
pub const HANDLER_NAMES: [&str; 5] = [
    "onGet",
    "onSubscribe",
    "onUnsubscribe",
    "onDeliver",
    "onTimer",
];

/// A stdlib environment shared between many AA instances.
///
/// Sharing is safe: the environment is sealed, so script assignments shadow
/// rather than mutate it. One `SharedSandbox` per node keeps per-AA memory
/// proportional to the AA itself, which is what the paper's Fig. 8c
/// measures.
#[derive(Clone)]
pub struct SharedSandbox {
    env: Env,
}

impl SharedSandbox {
    /// Builds the sealed stdlib environment.
    pub fn new() -> Self {
        SharedSandbox {
            env: sealed_env_from(stdlib::sandbox_globals()),
        }
    }
}

impl Default for SharedSandbox {
    fn default() -> Self {
        SharedSandbox::new()
    }
}

impl std::fmt::Debug for SharedSandbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedSandbox")
    }
}

/// A compiled AAScript program (parsed once, instantiable many times).
///
/// Holds both the AST (for the tree-walking oracle) and the lowered
/// bytecode [`compile::Chunk`]; [`Script::engine`] selects which one
/// [`Script::instantiate`] uses.
#[derive(Debug, Clone)]
pub struct Script {
    block: Rc<ast::Block>,
    chunk: Rc<compile::Chunk>,
    engine: Engine,
    source_len: usize,
}

impl Script {
    /// Parses and lowers `src` into a reusable compiled script running on
    /// the default engine (the bytecode VM).
    ///
    /// # Errors
    ///
    /// Returns the first lexical or syntactic error.
    pub fn compile(src: &str) -> Result<Script, CompileError> {
        let block = Rc::new(parser::parse(src)?);
        let chunk = Rc::new(compile::compile(&block)?);
        Ok(Script {
            block,
            chunk,
            engine: Engine::default(),
            source_len: src.len(),
        })
    }

    /// Runs the static analyzer over the compiled script and returns its
    /// findings (empty = lint-clean). This is the install-time gate hosts
    /// enforce their `LintPolicy` over; see [`analysis`] for the lint
    /// catalog.
    pub fn analyze(&self, opts: &analysis::LintOptions) -> Vec<analysis::Diagnostic> {
        analysis::analyze(&self.block, &self.chunk, opts)
    }

    /// Selects the execution engine for instances of this script.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine instances of this script will run on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs the script top-to-bottom in a fresh instance environment,
    /// producing an [`AaInstance`] whose globals (the `AA` table, handler
    /// functions) persist across handler invocations.
    ///
    /// # Errors
    ///
    /// Any runtime error raised by top-level code, including budget
    /// exhaustion.
    pub fn instantiate(
        &self,
        sandbox: &SharedSandbox,
        budget: u64,
    ) -> Result<AaInstance, RuntimeError> {
        let globals = child_env(&sandbox.env);
        match self.engine {
            Engine::Bytecode => {
                let mut vm = Vm::new(budget, globals.clone());
                vm.exec_main(&self.chunk)?;
            }
            Engine::TreeWalk => {
                let mut interp = Interp::new(budget, globals.clone());
                interp.exec_chunk(&self.block, &globals)?;
            }
        }
        Ok(AaInstance {
            globals,
            engine: self.engine,
            source_len: self.source_len,
        })
    }
}

/// A live active attribute: the persistent state left behind by running its
/// script (the `AA` table plus handler functions), ready for event
/// dispatch.
#[derive(Debug)]
pub struct AaInstance {
    globals: Env,
    engine: Engine,
    source_len: usize,
}

impl AaInstance {
    /// Looks up a handler: a global function named `name`, or a
    /// same-named function inside the global `AA` table (the paper allows
    /// both styles).
    pub fn handler(&self, name: &str) -> Option<Value> {
        let direct = lookup(&self.globals, name);
        if matches!(
            direct,
            Value::Func(_) | Value::Compiled(_) | Value::Native(..)
        ) {
            return Some(direct);
        }
        if let Value::Table(aa) = lookup(&self.globals, "AA") {
            let v = aa.borrow().get(&Key::Str(name.into()));
            if matches!(v, Value::Func(_) | Value::Compiled(_) | Value::Native(..)) {
                return Some(v);
            }
        }
        None
    }

    /// Whether the instance defines `name` as a handler.
    pub fn has_handler(&self, name: &str) -> bool {
        self.handler(name).is_some()
    }

    /// Invokes a handler with a fresh instruction budget.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Undefined`] if no such handler exists, or any error
    /// the handler raises (including budget exhaustion).
    pub fn invoke(&self, name: &str, args: &[Value], budget: u64) -> Result<Value, RuntimeError> {
        let f = self
            .handler(name)
            .ok_or_else(|| RuntimeError::Undefined(format!("handler `{name}`")))?;
        match self.engine {
            Engine::Bytecode => {
                let mut vm = Vm::new(budget, self.globals.clone());
                vm.call(&f, args)
            }
            Engine::TreeWalk => {
                let mut interp = Interp::new(budget, self.globals.clone());
                interp.call(&f, args)
            }
        }
    }

    /// The engine this instance dispatches handlers on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Reads a global of the instance (e.g. the `AA` table).
    pub fn global(&self, name: &str) -> Value {
        lookup(&self.globals, name)
    }

    /// Sets a global of the instance (used by the runtime to expose the
    /// key-value map to handlers).
    pub fn set_global(&self, name: &str, value: Value) {
        interp::declare(&self.globals, name, value);
    }

    /// Approximate memory footprint of this instance: its own globals
    /// (the AA table, handler closures) plus fixed bookkeeping. The
    /// compiled script and the sealed sandbox are shared across instances
    /// and are not charged. This is the quantity compared against the
    /// PAST baseline in Fig. 8c.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 48 + scope_size_bytes(&self.globals)
    }

    /// Length of the (shared) source this instance was built from.
    pub fn source_len(&self) -> usize {
        self.source_len
    }
}

/// Compiles and instantiates in one step — convenience for tests and
/// examples.
///
/// # Errors
///
/// Compile errors are boxed together with runtime errors.
pub fn eval_script(src: &str, budget: u64) -> Result<AaInstance, Box<dyn std::error::Error>> {
    let sandbox = SharedSandbox::new();
    let script = Script::compile(src)?;
    Ok(script.instantiate(&sandbox, budget)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(src: &str) -> f64 {
        let aa = eval_script(&format!("function main() {src} end"), 100_000).unwrap();
        aa.invoke("main", &[], 100_000).unwrap().as_num().unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(num("return 2 + 3 * 4"), 14.0);
        assert_eq!(num("return (2 + 3) * 4"), 20.0);
        assert_eq!(num("return 2 ^ 3 ^ 2"), 512.0, "right associative");
        assert_eq!(num("return -2 ^ 2"), -4.0, "pow binds tighter than unary");
        assert_eq!(num("return 7 % 3"), 1.0);
        assert_eq!(num("return -7 % 3"), 2.0, "Lua modulo semantics");
        assert_eq!(num("return 10 / 4"), 2.5);
    }

    #[test]
    fn control_flow() {
        assert_eq!(num("if 1 < 2 then return 1 else return 2 end"), 1.0);
        assert_eq!(
            num(
                "local x = 0\nif x > 0 then return 1 elseif x == 0 then return 2 else return 3 end"
            ),
            2.0
        );
        assert_eq!(
            num("local s = 0\nfor i = 1, 10 do s = s + i end\nreturn s"),
            55.0
        );
        assert_eq!(
            num("local s = 0\nfor i = 10, 1, -2 do s = s + i end\nreturn s"),
            30.0
        );
        assert_eq!(
            num("local s = 0\nlocal i = 0\nwhile i < 5 do i = i + 1\ns = s + i end\nreturn s"),
            15.0
        );
        assert_eq!(
            num("local i = 0\nrepeat i = i + 1 until i >= 3\nreturn i"),
            3.0
        );
        assert_eq!(
            num("local s = 0\nfor i = 1, 100 do if i > 3 then break end\ns = s + i end\nreturn s"),
            6.0
        );
    }

    #[test]
    fn closures_capture_environment() {
        let src = r#"
            function counter()
                local n = 0
                return function()
                    n = n + 1
                    return n
                end
            end
            function main()
                local c = counter()
                local a = c()
                local b = c()
                return a * 10 + b
            end
        "#;
        let aa = eval_script(src, 100_000).unwrap();
        assert_eq!(
            aa.invoke("main", &[], 100_000).unwrap().as_num().unwrap(),
            12.0,
            "closure state persists between calls"
        );
    }

    #[test]
    fn tables_and_generic_for() {
        assert_eq!(
            num(r#"local t = {a = 1, b = 2, c = 3}
                   local s = 0
                   for k, v in pairs(t) do s = s + v end
                   return s"#),
            6.0
        );
        assert_eq!(
            num(r#"local t = {10, 20, 30}
                   local s = 0
                   for i, v in ipairs(t) do s = s + i * v end
                   return s"#),
            140.0
        );
        assert_eq!(num("local t = {}\nt.x = {y = 5}\nreturn t.x.y"), 5.0);
        assert_eq!(num("local t = {[3] = 9}\nreturn t[3]"), 9.0);
    }

    #[test]
    fn method_call_passes_self() {
        let src = r#"
            obj = {factor = 3}
            function obj.scale(self, x)
                return self.factor * x
            end
            function main()
                return obj:scale(5)
            end
        "#;
        let aa = eval_script(src, 100_000).unwrap();
        assert_eq!(
            aa.invoke("main", &[], 100_000).unwrap().as_num().unwrap(),
            15.0
        );
    }

    #[test]
    fn budget_terminates_infinite_loop() {
        let aa = eval_script("function spin() while true do end end", 100_000).unwrap();
        let err = aa.invoke("spin", &[], 5_000).unwrap_err();
        assert_eq!(err, RuntimeError::BudgetExhausted);
    }

    #[test]
    fn budget_terminates_infinite_recursion_or_overflows() {
        let aa = eval_script("function f() return f() end", 100_000).unwrap();
        let err = aa.invoke("f", &[], 1_000_000).unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::StackOverflow | RuntimeError::BudgetExhausted
            ),
            "{err:?}"
        );
    }

    #[test]
    fn top_level_budget_applies_too() {
        let sandbox = SharedSandbox::new();
        let script = Script::compile("x = 0\nwhile true do x = x + 1 end").unwrap();
        let err = script.instantiate(&sandbox, 2_000).unwrap_err();
        assert_eq!(err, RuntimeError::BudgetExhausted);
    }

    #[test]
    fn fig5_password_handler_end_to_end() {
        let src = r#"
            AA = {NodeId = 27,
                  IP = "131.94.130.118",
                  Password = "3053482032"}
            function onGet(caller, password)
                if (password == AA.Password) then
                    return AA.NodeId
                end
                return nil
            end
        "#;
        let aa = eval_script(src, 100_000).unwrap();
        let granted = aa
            .invoke(
                "onGet",
                &[Value::str("joe"), Value::str("3053482032")],
                10_000,
            )
            .unwrap();
        assert_eq!(granted.as_num().unwrap(), 27.0);
        let denied = aa
            .invoke("onGet", &[Value::str("joe"), Value::str("nope")], 10_000)
            .unwrap();
        assert!(matches!(denied, Value::Nil));
    }

    #[test]
    fn handlers_inside_aa_table_work_too() {
        let src = r#"
            AA = {Value = 10}
            AA.onGet = function(caller)
                return AA.Value * 2
            end
        "#;
        let aa = eval_script(src, 100_000).unwrap();
        assert!(aa.has_handler("onGet"));
        assert!(!aa.has_handler("onDeliver"));
        assert_eq!(
            aa.invoke("onGet", &[Value::Nil], 10_000)
                .unwrap()
                .as_num()
                .unwrap(),
            20.0
        );
    }

    #[test]
    fn missing_handler_is_an_error() {
        let aa = eval_script("x = 1", 10_000).unwrap();
        assert!(matches!(
            aa.invoke("onGet", &[], 10_000),
            Err(RuntimeError::Undefined(_))
        ));
    }

    #[test]
    fn instances_do_not_share_state() {
        let sandbox = SharedSandbox::new();
        let script =
            Script::compile("count = 0\nfunction bump() count = count + 1\nreturn count end")
                .unwrap();
        let a = script.instantiate(&sandbox, 10_000).unwrap();
        let b = script.instantiate(&sandbox, 10_000).unwrap();
        assert_eq!(a.invoke("bump", &[], 1_000).unwrap().as_num().unwrap(), 1.0);
        assert_eq!(a.invoke("bump", &[], 1_000).unwrap().as_num().unwrap(), 2.0);
        assert_eq!(
            b.invoke("bump", &[], 1_000).unwrap().as_num().unwrap(),
            1.0,
            "instance b must not see a's counter"
        );
    }

    #[test]
    fn sandbox_stdlib_cannot_be_poisoned_across_instances() {
        let sandbox = SharedSandbox::new();
        let evil = Script::compile("math = 666").unwrap();
        evil.instantiate(&sandbox, 10_000).unwrap();
        // A fresh instance still sees the intact stdlib.
        let good = Script::compile("function f() return math.abs(-1) end").unwrap();
        let inst = good.instantiate(&sandbox, 10_000).unwrap();
        assert_eq!(inst.invoke("f", &[], 1_000).unwrap().as_num().unwrap(), 1.0);
    }

    #[test]
    fn state_persists_between_invocations() {
        let src = r#"
            AA = {uses = 0}
            function onGet(caller)
                AA.uses = AA.uses + 1
                return AA.uses
            end
        "#;
        let aa = eval_script(src, 100_000).unwrap();
        for expect in 1..=3 {
            let got = aa.invoke("onGet", &[Value::Nil], 10_000).unwrap();
            assert_eq!(got.as_num().unwrap(), expect as f64);
        }
    }

    #[test]
    fn set_global_exposes_runtime_data() {
        let aa = eval_script("function read() return injected end", 10_000).unwrap();
        aa.set_global("injected", Value::Num(42.0));
        assert_eq!(
            aa.invoke("read", &[], 1_000).unwrap().as_num().unwrap(),
            42.0
        );
    }

    #[test]
    fn size_accounting_grows_with_state() {
        let small = eval_script("AA = {x = 1}", 10_000).unwrap();
        let big = eval_script(
            r#"AA = {}
               for i = 1, 200 do AA["key" .. i] = "value" .. i end"#,
            1_000_000,
        )
        .unwrap();
        assert!(big.size_bytes() > small.size_bytes() + 1_000);
    }

    #[test]
    fn string_comparison_and_concat() {
        let aa = eval_script(
            r#"function f(a, b) return a .. "-" .. b end
               function cmp(a, b) return a < b end"#,
            10_000,
        )
        .unwrap();
        let v = aa
            .invoke("f", &[Value::str("x"), Value::Num(3.0)], 1_000)
            .unwrap();
        assert_eq!(display_value(&v), "x-3");
        let c = aa
            .invoke("cmp", &[Value::str("apple"), Value::str("banana")], 1_000)
            .unwrap();
        assert!(c.truthy());
    }

    #[test]
    fn treewalk_closure_env_cycle_is_the_documented_divergence() {
        // DESIGN.md §10, divergence (3): a walker handler stored in the
        // globals it captures is an Rc cycle the walker never breaks, so
        // dropping the instance leaks its globals scope. VM closures
        // capture individual cells and are fully reclaimed. This test pins
        // both halves of the documented behavior; if the walker is ever
        // fixed, flip the first assertion and delete the note in interp.rs.
        let src = "function onGet() return 1 end";
        let sandbox = SharedSandbox::new();

        let walker = Script::compile(src)
            .unwrap()
            .with_engine(Engine::TreeWalk)
            .instantiate(&sandbox, 10_000)
            .unwrap();
        let weak = Rc::downgrade(&walker.globals);
        drop(walker);
        assert!(
            weak.upgrade().is_some(),
            "walker closure-env cycle keeps the dropped instance's globals alive"
        );

        let vm = Script::compile(src)
            .unwrap()
            .with_engine(Engine::Bytecode)
            .instantiate(&sandbox, 10_000)
            .unwrap();
        let weak = Rc::downgrade(&vm.globals);
        drop(vm);
        assert!(
            weak.upgrade().is_none(),
            "VM instances must be fully reclaimed on drop"
        );
    }

    #[test]
    fn type_errors_are_reported_not_panicking() {
        let aa = eval_script("function f() return {} + 1 end", 10_000).unwrap();
        assert!(matches!(
            aa.invoke("f", &[], 1_000),
            Err(RuntimeError::TypeError(_))
        ));
        let aa = eval_script("function f() return nil .. \"x\" end", 10_000).unwrap();
        assert!(matches!(
            aa.invoke("f", &[], 1_000),
            Err(RuntimeError::TypeError(_))
        ));
        let aa = eval_script("function f() local x\nreturn x.y end", 10_000).unwrap();
        assert!(matches!(
            aa.invoke("f", &[], 1_000),
            Err(RuntimeError::TypeError(_))
        ));
    }
}

#[cfg(test)]
mod pcall_tests {
    use super::*;

    #[test]
    fn pcall_catches_script_errors() {
        let aa = eval_script(
            r#"
            function risky()
                error("kaboom")
            end
            function main()
                local r = pcall(risky)
                if r.ok then
                    return "unexpected"
                end
                return r.error
            end
        "#,
            100_000,
        )
        .unwrap();
        let v = aa.invoke("main", &[], 10_000).unwrap();
        assert_eq!(display_value(&v), "kaboom");
    }

    #[test]
    fn pcall_passes_values_through_on_success() {
        let aa = eval_script(
            r#"
            function double(x) return x * 2 end
            function main()
                local r = pcall(double, 21)
                return r.value
            end
        "#,
            100_000,
        )
        .unwrap();
        assert_eq!(
            aa.invoke("main", &[], 10_000).unwrap().as_num().unwrap(),
            42.0
        );
    }

    #[test]
    fn pcall_catches_type_errors_too() {
        let aa = eval_script(
            r#"
            function bad() return {} + 1 end
            function main()
                local r = pcall(bad)
                return r.ok
            end
        "#,
            100_000,
        )
        .unwrap();
        assert!(!aa.invoke("main", &[], 10_000).unwrap().truthy());
    }

    #[test]
    fn pcall_cannot_shield_from_the_budget() {
        let aa = eval_script(
            r#"
            function spin() while true do end end
            function main()
                local r = pcall(spin)
                return "survived"
            end
        "#,
            100_000,
        )
        .unwrap();
        let err = aa.invoke("main", &[], 5_000).unwrap_err();
        assert_eq!(err, RuntimeError::BudgetExhausted, "sandbox wins");
    }

    #[test]
    fn indirect_pcall_reference_still_works_or_errors_cleanly() {
        // Assigning pcall to a variable and calling it goes through the
        // same dispatch (the name travels with the native), so it works.
        let aa = eval_script(
            r#"
            function main()
                local p = pcall
                local r = p(function() return 7 end)
                return r.value
            end
        "#,
            100_000,
        )
        .unwrap();
        assert_eq!(
            aa.invoke("main", &[], 10_000).unwrap().as_num().unwrap(),
            7.0
        );
    }
}

#[cfg(test)]
mod cyclic_tests {
    use super::*;

    #[test]
    fn cyclic_tables_do_not_hang_tostring() {
        let aa = eval_script(
            r#"
            t = {}
            t.me = t
            function main()
                return tostring(t)
            end
        "#,
            100_000,
        )
        .unwrap();
        let v = aa.invoke("main", &[], 100_000).unwrap();
        let s = display_value(&v);
        assert!(s.contains('…'), "cycle rendered with an ellipsis: {s}");
    }

    #[test]
    fn cyclic_tables_do_not_hang_size_accounting() {
        let aa = eval_script("t = {}\nt.me = t\nt.pad = \"xxxx\"", 100_000).unwrap();
        // Must terminate and count the string payload at least once.
        let sz = aa.size_bytes();
        assert!(sz > 4, "{sz}");
    }

    #[test]
    fn mutually_recursive_tables_terminate() {
        let aa = eval_script(
            r#"
            a = {}
            b = {peer = a}
            a.peer = b
            function main() return tostring(a) end
        "#,
            100_000,
        )
        .unwrap();
        let v = aa.invoke("main", &[], 100_000).unwrap();
        assert!(!display_value(&v).is_empty());
    }
}
