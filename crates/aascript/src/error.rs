//! Error types for compilation and execution of AAScript programs.

use core::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compile-time error (lexing or parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// A runtime error raised while executing a handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The handler exceeded its instruction budget and was terminated —
    /// the sandbox's first protection (paper §III.B).
    BudgetExhausted,
    /// Call stack grew beyond the configured depth.
    StackOverflow,
    /// A value of the wrong type was used (e.g. arithmetic on a table).
    TypeError(String),
    /// An undefined variable, field, or handler was referenced.
    Undefined(String),
    /// Anything else (bad argument counts, invalid table keys, ...).
    Other(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::BudgetExhausted => write!(f, "instruction budget exhausted"),
            RuntimeError::StackOverflow => write!(f, "call stack overflow"),
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::Undefined(m) => write!(f, "undefined: {m}"),
            RuntimeError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError {
            pos: Pos { line: 3, col: 7 },
            message: "unexpected `end`".into(),
        };
        assert_eq!(e.to_string(), "compile error at 3:7: unexpected `end`");
        assert_eq!(
            RuntimeError::BudgetExhausted.to_string(),
            "instruction budget exhausted"
        );
        assert_eq!(
            RuntimeError::TypeError("x".into()).to_string(),
            "type error: x"
        );
    }
}
