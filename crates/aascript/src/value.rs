//! Runtime values: nil, booleans, numbers, strings, tables, and functions.
//!
//! Like Lua, AAScript technically has one data structure — the table, an
//! associative array (paper §III.B). Tables are reference values shared via
//! `Rc<RefCell<..>>`; everything else is a value type.

use crate::ast::FuncDef;
use crate::error::RuntimeError;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A table key: strings and numbers (integral `f64`s are canonicalized so
/// `t[1]` and `t[1.0]` are the same slot).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Key {
    /// Integer key (array part, `t[1]`).
    Int(i64),
    /// String key (`t.name`), interned.
    Str(Rc<str>),
}

impl Key {
    /// Converts a runtime value into a key.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError::Other`] for nil, non-integral numbers used
    /// where no exact integer exists, booleans, tables, and functions.
    pub fn from_value(v: &Value) -> Result<Key, RuntimeError> {
        match v {
            Value::Num(n) if n.fract() == 0.0 && n.is_finite() => Ok(Key::Int(*n as i64)),
            Value::Num(_) => Err(RuntimeError::Other(
                "table key must be an integer or string".into(),
            )),
            Value::Str(s) => Ok(Key::Str(Rc::clone(s))),
            other => Err(RuntimeError::Other(format!(
                "invalid table key of type {}",
                other.type_name()
            ))),
        }
    }
}

/// The associative-array data structure. Kept ordered (`BTreeMap`) so
/// iteration with `pairs` is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Table {
    entries: BTreeMap<Key, Value>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Gets a value by key (`nil` if absent).
    pub fn get(&self, key: &Key) -> Value {
        self.entries.get(key).cloned().unwrap_or(Value::Nil)
    }

    /// Sets a value; setting `nil` removes the entry, like Lua.
    pub fn set(&mut self, key: Key, value: Value) {
        if matches!(value, Value::Nil) {
            self.entries.remove(&key);
        } else {
            self.entries.insert(key, value);
        }
    }

    /// The border `#t`: the number of consecutive integer keys from 1.
    pub fn len(&self) -> i64 {
        let mut n = 0;
        while self.entries.contains_key(&Key::Int(n + 1)) {
            n += 1;
        }
        n
    }

    /// Whether the table has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries (any key shape).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Deterministic iteration over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.entries.iter()
    }

    /// Inserts at position `pos` (1-based) in the array part, shifting
    /// later elements up (`table.insert`).
    pub fn array_insert(&mut self, pos: i64, value: Value) {
        let n = self.len();
        let mut i = n;
        while i >= pos {
            let v = self.get(&Key::Int(i));
            self.set(Key::Int(i + 1), v);
            i -= 1;
        }
        self.set(Key::Int(pos), value);
    }

    /// Removes position `pos` (1-based) from the array part, shifting later
    /// elements down (`table.remove`). Returns the removed value.
    pub fn array_remove(&mut self, pos: i64) -> Value {
        let n = self.len();
        let removed = self.get(&Key::Int(pos));
        let mut i = pos;
        while i < n {
            let v = self.get(&Key::Int(i + 1));
            self.set(Key::Int(i), v);
            i += 1;
        }
        if n > 0 {
            self.set(Key::Int(n), Value::Nil);
        }
        removed
    }

    /// Approximate heap footprint of this table in bytes, used by the
    /// Fig. 8c memory accounting. Recurses into nested tables with a depth
    /// limit so cyclic tables terminate.
    pub fn deep_size_bytes(&self) -> usize {
        self.deep_size_bytes_depth(8)
    }

    fn deep_size_bytes_depth(&self, depth: u32) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for (k, v) in &self.entries {
            total += std::mem::size_of::<Key>()
                + match k {
                    Key::Str(s) => s.len(),
                    Key::Int(_) => 0,
                };
            total += v.size_bytes_depth(depth);
        }
        total
    }
}

/// A user-defined function: its definition plus the environment it closed
/// over.
pub struct Closure {
    /// The parsed function definition.
    pub def: Rc<FuncDef>,
    /// Captured environment (interpreter scope chain).
    pub env: crate::interp::Env,
}

impl fmt::Debug for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Closure(params={:?})", self.def.params)
    }
}

/// A compiled (bytecode) function: a shared [`Chunk`](crate::compile::Chunk)
/// plus the upvalue cells it closed over.
pub struct BcClosure {
    /// The compiled chunk this closure's code lives in.
    pub chunk: Rc<crate::compile::Chunk>,
    /// Index of this function's prototype within the chunk.
    pub proto: usize,
    /// Captured upvalue cells, in the prototype's declared order.
    pub upvals: Vec<Rc<RefCell<Value>>>,
}

impl fmt::Debug for BcClosure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BcClosure(proto={})", self.proto)
    }
}

/// A native (Rust) function exposed to scripts.
pub type NativeFn = Rc<dyn Fn(&[Value]) -> Result<Value, RuntimeError>>;

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// The absent value.
    Nil,
    /// A boolean.
    Bool(bool),
    /// A double-precision number (the only numeric type, like Lua 5.1).
    Num(f64),
    /// An immutable string.
    Str(Rc<str>),
    /// A shared, mutable table.
    Table(Rc<RefCell<Table>>),
    /// A script-defined function (tree-walking engine).
    Func(Rc<Closure>),
    /// A script-defined function compiled to bytecode (VM engine).
    Compiled(Rc<BcClosure>),
    /// A built-in function from the sandboxed stdlib.
    Native(&'static str, NativeFn),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Builds a fresh empty table value.
    pub fn table() -> Value {
        Value::Table(Rc::new(RefCell::new(Table::new())))
    }

    /// Lua truthiness: everything but `nil` and `false` is true.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The `type()` name of this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Table(_) => "table",
            Value::Func(_) | Value::Compiled(_) | Value::Native(..) => "function",
        }
    }

    /// Numeric view, coercing numeric strings like Lua's arithmetic does
    /// not — AAScript is strict: only numbers convert.
    pub fn as_num(&self) -> Result<f64, RuntimeError> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(RuntimeError::TypeError(format!(
                "expected number, got {}",
                other.type_name()
            ))),
        }
    }

    /// String view for concatenation: numbers and strings only.
    pub fn concat_str(&self) -> Result<String, RuntimeError> {
        match self {
            Value::Str(s) => Ok(s.to_string()),
            Value::Num(n) => Ok(fmt_num(*n)),
            other => Err(RuntimeError::TypeError(format!(
                "cannot concatenate {}",
                other.type_name()
            ))),
        }
    }

    /// Structural equality (`==`): tables and functions compare by
    /// identity, everything else by value.
    pub fn script_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Table(a), Value::Table(b)) => Rc::ptr_eq(a, b),
            (Value::Func(a), Value::Func(b)) => Rc::ptr_eq(a, b),
            (Value::Compiled(a), Value::Compiled(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a, _), Value::Native(b, _)) => a == b,
            _ => false,
        }
    }

    /// Approximate heap footprint in bytes (Fig. 8c accounting).
    pub fn size_bytes(&self) -> usize {
        self.size_bytes_depth(8)
    }

    pub(crate) fn size_bytes_depth(&self, depth: u32) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.len(),
                Value::Table(t) if depth > 0 => {
                    // A cyclic table (or a borrow held elsewhere) stops the
                    // descent; charge the handle only.
                    match t.try_borrow() {
                        Ok(tb) => tb.deep_size_bytes_depth(depth - 1),
                        Err(_) => 0,
                    }
                }
                Value::Table(_) => 0,
                // A bytecode closure's persistent state is its captured
                // cells (the chunk itself is shared, like the tree-walker's
                // AST, and is not charged per instance).
                Value::Compiled(c) if depth > 0 => c
                    .upvals
                    .iter()
                    .map(|cell| match cell.try_borrow() {
                        Ok(v) => v.size_bytes_depth(depth - 1),
                        Err(_) => 0,
                    })
                    .sum(),
                _ => 0,
            }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", display_value(self))
    }
}

/// Formats a number the way Lua prints it: integral values without a
/// decimal point.
pub fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// The `tostring()` rendering of a value. Nested tables render to a
/// bounded depth so cyclic tables terminate.
pub fn display_value(v: &Value) -> String {
    display_value_depth(v, 6)
}

fn display_value_depth(v: &Value, depth: u32) -> String {
    match v {
        Value::Nil => "nil".into(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => fmt_num(*n),
        Value::Str(s) => s.to_string(),
        Value::Table(t) => {
            if depth == 0 {
                return "{…}".into();
            }
            let Ok(t) = t.try_borrow() else {
                return "{…}".into();
            };
            let inner: Vec<String> = t
                .iter()
                .map(|(k, v)| match k {
                    Key::Str(s) => format!("{s} = {}", display_value_depth(v, depth - 1)),
                    Key::Int(i) => format!("[{i}] = {}", display_value_depth(v, depth - 1)),
                })
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        Value::Func(_) | Value::Compiled(_) => "function".into(),
        Value::Native(name, _) => format!("function: {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_lua() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Num(0.0).truthy(), "0 is truthy in Lua");
        assert!(Value::str("").truthy(), "empty string is truthy in Lua");
    }

    #[test]
    fn keys_canonicalize_integral_floats() {
        assert_eq!(Key::from_value(&Value::Num(1.0)).unwrap(), Key::Int(1));
        assert!(Key::from_value(&Value::Num(1.5)).is_err());
        assert!(Key::from_value(&Value::Nil).is_err());
        assert_eq!(
            Key::from_value(&Value::str("x")).unwrap(),
            Key::Str("x".into())
        );
    }

    #[test]
    fn table_set_nil_removes() {
        let mut t = Table::new();
        t.set(Key::Str("a".into()), Value::Num(1.0));
        assert_eq!(t.entry_count(), 1);
        t.set(Key::Str("a".into()), Value::Nil);
        assert_eq!(t.entry_count(), 0);
        assert!(matches!(t.get(&Key::Str("a".into())), Value::Nil));
    }

    #[test]
    fn array_len_counts_consecutive_from_one() {
        let mut t = Table::new();
        for i in 1..=4 {
            t.set(Key::Int(i), Value::Num(i as f64));
        }
        assert_eq!(t.len(), 4);
        t.set(Key::Int(3), Value::Nil);
        assert_eq!(t.len(), 2, "hole stops the border");
    }

    #[test]
    fn array_insert_and_remove_shift() {
        let mut t = Table::new();
        for i in 1..=3 {
            t.set(Key::Int(i), Value::Num(i as f64));
        }
        t.array_insert(2, Value::Num(99.0));
        let vals: Vec<f64> = (1..=4)
            .map(|i| t.get(&Key::Int(i)).as_num().unwrap())
            .collect();
        assert_eq!(vals, vec![1.0, 99.0, 2.0, 3.0]);
        let removed = t.array_remove(1);
        assert_eq!(removed.as_num().unwrap(), 1.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&Key::Int(1)).as_num().unwrap(), 99.0);
    }

    #[test]
    fn equality_by_identity_for_tables() {
        let a = Value::table();
        let b = Value::table();
        assert!(!a.script_eq(&b));
        assert!(a.script_eq(&a.clone()));
        assert!(Value::str("x").script_eq(&Value::str("x")));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(3.5), "3.5");
        assert_eq!(fmt_num(-2.0), "-2");
    }

    #[test]
    fn display_table_is_deterministic() {
        let t = Value::table();
        if let Value::Table(rc) = &t {
            let mut b = rc.borrow_mut();
            b.set(Key::Str("b".into()), Value::Num(2.0));
            b.set(Key::Str("a".into()), Value::Num(1.0));
            b.set(Key::Int(1), Value::str("x"));
        }
        assert_eq!(display_value(&t), "{[1] = x, a = 1, b = 2}");
    }

    #[test]
    fn size_accounting_counts_strings_and_nesting() {
        let t = Value::table();
        if let Value::Table(rc) = &t {
            rc.borrow_mut()
                .set(Key::Str("password".into()), Value::str("3053482032"));
        }
        let sz = t.size_bytes();
        assert!(sz > 10, "must include string payload, got {sz}");
    }
}
