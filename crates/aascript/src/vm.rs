//! The bytecode VM with the same sandbox contract as the tree-walker.
//!
//! Executes a [`Chunk`] on an explicit value stack shared by all frames
//! (each call takes a window of registers at the top and restores the stack
//! on exit). The instruction budget is charged **per executed opcode** —
//! this is the engine that literally matches the paper's "strictly limits
//! the number of bytecode instructions a handler can execute" (§III.B). The
//! same call-depth limit as the tree-walker guards the Rust stack, and the
//! same `pcall` special form catches script errors while keeping
//! [`RuntimeError::BudgetExhausted`] and [`RuntimeError::StackOverflow`]
//! uncatchable.
//!
//! Globals intentionally stay name-addressed through the instance's
//! [`Env`]: hosts write them between invocations (`set_global`,
//! `refresh_aa_env`) and handlers must observe the new bindings, so they
//! cannot be slot-resolved at compile time.

use crate::ast::IterKind;
use crate::compile::{Chunk, Op, Proto, Slot, UpvalSrc};
use crate::error::RuntimeError;
use crate::interp::{declare_interned, lookup, Env, Interp};
use crate::value::{BcClosure, Key, Table, Value};
use std::cell::RefCell;
use std::rc::Rc;

/// The bytecode executor. Like [`Interp`], it holds only the sandbox
/// counters and the globals handle; all program state lives in frames,
/// cells, and shared tables.
#[derive(Debug)]
pub struct Vm {
    /// Remaining instruction budget for the current invocation.
    pub budget: u64,
    depth: u32,
    max_depth: u32,
    globals: Env,
    stack: Vec<Value>,
}

thread_local! {
    /// One recycled operand stack per thread. A host invokes handlers at
    /// very high rates (every query triggers one), so the per-invocation
    /// `Vec` allocation is measurable; the most recently dropped VM parks
    /// its buffer here for the next one. A single slot suffices: nested
    /// VMs (a VM delegating through the tree-walker back into a VM) are
    /// rare and simply allocate fresh.
    static SPARE_STACK: std::cell::Cell<Option<Vec<Value>>> =
        const { std::cell::Cell::new(None) };
}

/// Largest buffer worth parking in [`SPARE_STACK`].
const SPARE_MAX_CAPACITY: usize = 1024;

impl Drop for Vm {
    fn drop(&mut self) {
        let mut stack = std::mem::take(&mut self.stack);
        if stack.capacity() == 0 || stack.capacity() > SPARE_MAX_CAPACITY {
            return;
        }
        stack.clear(); // drop the values, keep the capacity
        SPARE_STACK.with(|slot| slot.set(Some(stack)));
    }
}

impl Vm {
    /// Creates a VM with the given instruction budget; `globals` is where
    /// global reads and writes land.
    pub fn new(budget: u64, globals: Env) -> Self {
        let stack = SPARE_STACK
            .with(std::cell::Cell::take)
            .unwrap_or_else(|| Vec::with_capacity(32));
        Vm {
            budget,
            depth: 0,
            max_depth: 120,
            globals,
            stack,
        }
    }

    /// Runs a chunk's top-level code (instantiation), returning the value
    /// of a top-level `return` (or nil).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`], including budget exhaustion.
    pub fn exec_main(&mut self, chunk: &Rc<Chunk>) -> Result<Value, RuntimeError> {
        self.run_frame(chunk, chunk.main, &[], &[])
    }

    /// Calls a function value with arguments.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TypeError`] when `f` is not callable, plus anything
    /// the body raises.
    pub fn call(&mut self, f: &Value, args: &[Value]) -> Result<Value, RuntimeError> {
        match f {
            // Same special form as the tree-walker: `pcall` catches script
            // errors but can never shield a handler from the sandbox
            // (budget exhaustion, stack overflow).
            Value::Native("pcall", _) => {
                let Some(inner) = args.first() else {
                    return Err(RuntimeError::Other("pcall needs a function".into()));
                };
                let result = self.call(inner, &args[1..]);
                let table = Rc::new(RefCell::new(Table::new()));
                match result {
                    Ok(v) => {
                        let mut t = table.borrow_mut();
                        t.set(Key::Str("ok".into()), Value::Bool(true));
                        t.set(Key::Str("value".into()), v);
                    }
                    Err(e @ RuntimeError::BudgetExhausted)
                    | Err(e @ RuntimeError::StackOverflow) => return Err(e),
                    Err(e) => {
                        let mut t = table.borrow_mut();
                        t.set(Key::Str("ok".into()), Value::Bool(false));
                        t.set(Key::Str("error".into()), Value::str(e.to_string()));
                    }
                }
                Ok(Value::Table(table))
            }
            Value::Compiled(c) => {
                if self.depth >= self.max_depth {
                    return Err(RuntimeError::StackOverflow);
                }
                self.depth += 1;
                let chunk = Rc::clone(&c.chunk);
                let result = self.run_frame(&chunk, c.proto, &c.upvals, args);
                self.depth -= 1;
                result
            }
            Value::Native(_, nf) => nf(args),
            // A tree-walk closure can flow in through a shared global or
            // table; delegate to the tree-walker on the same budget.
            Value::Func(_) => {
                let mut interp = Interp::new(self.budget, Rc::clone(&self.globals));
                let result = interp.call(f, args);
                self.budget = interp.budget;
                result
            }
            other => Err(RuntimeError::TypeError(format!(
                "attempt to call a {} value",
                other.type_name()
            ))),
        }
    }

    /// Pushes a frame for `protos[proto]`, binds `args`, runs it to its
    /// `Return`, and restores the stack.
    fn run_frame(
        &mut self,
        chunk: &Rc<Chunk>,
        proto: usize,
        upvals: &[Rc<RefCell<Value>>],
        args: &[Value],
    ) -> Result<Value, RuntimeError> {
        let p = &chunk.protos[proto];
        let base = self.stack.len();
        self.stack.resize(base + p.n_regs as usize, Value::Nil);
        let mut cells: Vec<Rc<RefCell<Value>>> = if p.n_cells > 0 {
            (0..p.n_cells)
                .map(|_| Rc::new(RefCell::new(Value::Nil)))
                .collect()
        } else {
            Vec::new()
        };
        for (i, slot) in p.params.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(Value::Nil);
            match slot {
                Slot::Reg(r) => self.stack[base + *r as usize] = v,
                Slot::Cell(c) => cells[*c as usize] = Rc::new(RefCell::new(v)),
            }
        }
        let result = self.run(chunk, p, base, &mut cells, upvals);
        // Unconditionally restore: on error the frame may leave operands
        // behind; on success the return value has already been popped.
        self.stack.truncate(base);
        result
    }

    #[allow(clippy::too_many_lines)]
    fn run(
        &mut self,
        chunk: &Rc<Chunk>,
        proto: &Proto,
        base: usize,
        cells: &mut [Rc<RefCell<Value>>],
        upvals: &[Rc<RefCell<Value>>],
    ) -> Result<Value, RuntimeError> {
        // Snapshot iterators for generic-for, innermost last. Local to the
        // frame: a `return` mid-loop drops them with the frame.
        let mut iters: Vec<std::vec::IntoIter<(Key, Value)>> = Vec::new();
        let code = &proto.code;
        let mut pc = 0usize;
        // One-entry inline cache for global reads: handlers typically hit
        // the same global (`AA`) several times in a row, and the binding
        // can only change under this frame's feet through `StoreGlobal` or
        // a `Call` (which may run arbitrary stores) — both invalidate.
        let mut gcache_name = u32::MAX;
        let mut gcache_val = Value::Nil;
        loop {
            // One budget unit per opcode — the paper's sandbox rule.
            if self.budget == 0 {
                return Err(RuntimeError::BudgetExhausted);
            }
            self.budget -= 1;
            match code[pc] {
                Op::Const(i) => self.stack.push(chunk.consts[i as usize].clone()),
                Op::Nil => self.stack.push(Value::Nil),
                Op::True => self.stack.push(Value::Bool(true)),
                Op::False => self.stack.push(Value::Bool(false)),
                Op::LoadReg(r) => {
                    let v = self.stack[base + r as usize].clone();
                    self.stack.push(v);
                }
                Op::StoreReg(r) => {
                    let v = self.pop();
                    self.stack[base + r as usize] = v;
                }
                Op::LoadCell(c) => {
                    let v = cells[c as usize].borrow().clone();
                    self.stack.push(v);
                }
                Op::StoreCell(c) => {
                    let v = self.pop();
                    *cells[c as usize].borrow_mut() = v;
                }
                Op::NewCell(c) => {
                    let v = self.pop();
                    cells[c as usize] = Rc::new(RefCell::new(v));
                }
                Op::LoadUpval(u) => {
                    let v = upvals[u as usize].borrow().clone();
                    self.stack.push(v);
                }
                Op::StoreUpval(u) => {
                    let v = self.pop();
                    *upvals[u as usize].borrow_mut() = v;
                }
                Op::LoadGlobal(i) => {
                    if gcache_name == i {
                        self.stack.push(gcache_val.clone());
                    } else {
                        let v = lookup(&self.globals, &chunk.names[i as usize]);
                        gcache_name = i;
                        gcache_val = v.clone();
                        self.stack.push(v);
                    }
                }
                Op::StoreGlobal(i) => {
                    let v = self.pop();
                    gcache_name = u32::MAX;
                    declare_interned(&self.globals, &chunk.names[i as usize], v);
                }
                Op::Pop => {
                    self.pop();
                }
                Op::Jump(t) => {
                    pc = t as usize;
                    continue;
                }
                Op::JumpIfFalse(t) => {
                    if !self.pop().truthy() {
                        pc = t as usize;
                        continue;
                    }
                }
                Op::JumpIfFalseKeep(t) => {
                    if !self.top().truthy() {
                        pc = t as usize;
                        continue;
                    }
                    self.pop();
                }
                Op::JumpIfTrueKeep(t) => {
                    if self.top().truthy() {
                        pc = t as usize;
                        continue;
                    }
                    self.pop();
                }
                Op::Add => self.arith(|a, b| a + b)?,
                Op::Sub => self.arith(|a, b| a - b)?,
                Op::Mul => self.arith(|a, b| a * b)?,
                Op::Div => self.arith(|a, b| a / b)?,
                Op::Mod => self.arith(|a, b| a - (a / b).floor() * b)?,
                Op::Pow => self.arith(f64::powf)?,
                Op::Concat => {
                    let r = self.pop();
                    let l = self.pop();
                    let mut s = l.concat_str()?;
                    s.push_str(&r.concat_str()?);
                    self.stack.push(Value::str(s));
                }
                Op::Eq => {
                    let r = self.pop();
                    let l = self.pop();
                    self.stack.push(Value::Bool(l.script_eq(&r)));
                }
                Op::Ne => {
                    let r = self.pop();
                    let l = self.pop();
                    self.stack.push(Value::Bool(!l.script_eq(&r)));
                }
                Op::Lt => self.compare(|o| o.is_lt())?,
                Op::Le => self.compare(|o| o.is_le())?,
                Op::Gt => self.compare(|o| o.is_gt())?,
                Op::Ge => self.compare(|o| o.is_ge())?,
                Op::Neg => {
                    let v = self.pop();
                    self.stack.push(Value::Num(-v.as_num()?));
                }
                Op::Not => {
                    let v = self.pop();
                    self.stack.push(Value::Bool(!v.truthy()));
                }
                Op::Len => {
                    let v = self.pop();
                    let n = match &v {
                        Value::Str(s) => s.len() as f64,
                        Value::Table(t) => t.borrow().len() as f64,
                        other => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot take length of a {}",
                                other.type_name()
                            )))
                        }
                    };
                    self.stack.push(Value::Num(n));
                }
                Op::Index => {
                    let k = self.pop();
                    let o = self.pop();
                    match o {
                        Value::Table(t) => {
                            let key = Key::from_value(&k)?;
                            let v = t.borrow().get(&key);
                            self.stack.push(v);
                        }
                        other => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::GlobalIndexConst { name, key } => {
                    let o = if gcache_name == name {
                        gcache_val.clone()
                    } else {
                        let v = lookup(&self.globals, &chunk.names[name as usize]);
                        gcache_name = name;
                        gcache_val = v.clone();
                        v
                    };
                    match o {
                        Value::Table(t) => {
                            let v = t.borrow().get(&chunk.keys[key as usize]);
                            self.stack.push(v);
                        }
                        other => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::IndexConst(i) => {
                    let o = self.pop();
                    match o {
                        Value::Table(t) => {
                            let v = t.borrow().get(&chunk.keys[i as usize]);
                            self.stack.push(v);
                        }
                        other => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::StoreIndex => {
                    let k = self.pop();
                    let o = self.pop();
                    let v = self.pop();
                    match o {
                        Value::Table(t) => {
                            let key = Key::from_value(&k)?;
                            t.borrow_mut().set(key, v);
                        }
                        other => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::StoreIndexConst(i) => {
                    let o = self.pop();
                    let v = self.pop();
                    match o {
                        Value::Table(t) => {
                            t.borrow_mut().set(chunk.keys[i as usize].clone(), v);
                        }
                        other => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::NewTable => self.stack.push(Value::table()),
                Op::SetItem => {
                    let v = self.pop();
                    let k = self.pop();
                    let key = Key::from_value(&k)?;
                    let Some(Value::Table(t)) = self.stack.last() else {
                        unreachable!("SetItem without a table under construction");
                    };
                    t.borrow_mut().set(key, v);
                }
                Op::Method(i) => {
                    let o = self.pop();
                    match &o {
                        Value::Table(t) => {
                            let m = t
                                .borrow()
                                .get(&Key::Str(Rc::clone(&chunk.names[i as usize])));
                            self.stack.push(m);
                            self.stack.push(o);
                        }
                        other => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot call method on a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::Call(argc) => {
                    let at = self.stack.len() - argc as usize;
                    let call_args = self.stack.split_off(at);
                    let f = self.pop();
                    let v = self.call(&f, &call_args)?;
                    // The callee may have stored globals.
                    gcache_name = u32::MAX;
                    self.stack.push(v);
                }
                Op::MakeClosure(i) => {
                    let p = &chunk.protos[i as usize];
                    let captured: Vec<Rc<RefCell<Value>>> = p
                        .upvals
                        .iter()
                        .map(|src| match src {
                            UpvalSrc::ParentCell(c) => Rc::clone(&cells[*c as usize]),
                            UpvalSrc::ParentUpval(u) => Rc::clone(&upvals[*u as usize]),
                        })
                        .collect();
                    self.stack.push(Value::Compiled(Rc::new(BcClosure {
                        chunk: Rc::clone(chunk),
                        proto: i as usize,
                        upvals: captured,
                    })));
                }
                Op::Return => return Ok(self.pop()),
                Op::ToNum => {
                    let v = self.pop();
                    self.stack.push(Value::Num(v.as_num()?));
                }
                Op::ForZeroCheck(s) => {
                    if self.reg_num(base, s) == 0.0 {
                        return Err(RuntimeError::Other("for step must be non-zero".into()));
                    }
                }
                Op::ForTest {
                    idx,
                    stop,
                    step,
                    exit,
                } => {
                    let i = self.reg_num(base, idx);
                    let stop = self.reg_num(base, stop);
                    let step = self.reg_num(base, step);
                    if !((step > 0.0 && i <= stop) || (step < 0.0 && i >= stop)) {
                        pc = exit as usize;
                        continue;
                    }
                }
                Op::ForStep { idx, step, top } => {
                    let next = self.reg_num(base, idx) + self.reg_num(base, step);
                    self.stack[base + idx as usize] = Value::Num(next);
                    pc = top as usize;
                    continue;
                }
                Op::IterPrep(kind) => {
                    let v = self.pop();
                    let Value::Table(t) = v else {
                        return Err(RuntimeError::TypeError(format!(
                            "cannot iterate a {}",
                            v.type_name()
                        )));
                    };
                    // Snapshot, like the tree-walker, so body mutations
                    // cannot invalidate the walk.
                    let entries: Vec<(Key, Value)> = match kind {
                        IterKind::Pairs => t
                            .borrow()
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect(),
                        IterKind::Ipairs => {
                            let tb = t.borrow();
                            let mut out = Vec::new();
                            let mut i = 1i64;
                            loop {
                                let v = tb.get(&Key::Int(i));
                                if matches!(v, Value::Nil) {
                                    break;
                                }
                                out.push((Key::Int(i), v));
                                i += 1;
                            }
                            out
                        }
                    };
                    iters.push(entries.into_iter());
                }
                Op::IterNext { exit } => match iters.last_mut().and_then(Iterator::next) {
                    Some((k, v)) => {
                        let key_val = match k {
                            Key::Int(i) => Value::Num(i as f64),
                            Key::Str(s) => Value::Str(s),
                        };
                        self.stack.push(key_val);
                        self.stack.push(v);
                    }
                    None => {
                        pc = exit as usize;
                        continue;
                    }
                },
                Op::IterEnd => {
                    iters.pop();
                }
            }
            pc += 1;
        }
    }

    #[inline]
    fn pop(&mut self) -> Value {
        self.stack.pop().expect("operand stack underflow")
    }

    #[inline]
    fn top(&self) -> &Value {
        self.stack.last().expect("operand stack underflow")
    }

    /// Reads a numeric-`for` control register (always a number: the loop
    /// header coerces via `ToNum`).
    #[inline]
    fn reg_num(&self, base: usize, r: u16) -> f64 {
        match &self.stack[base + r as usize] {
            Value::Num(n) => *n,
            other => unreachable!("for-loop register holds {}", other.type_name()),
        }
    }

    #[inline]
    fn arith(&mut self, f: impl FnOnce(f64, f64) -> f64) -> Result<(), RuntimeError> {
        let r = self.pop();
        let l = self.pop();
        // Left operand's type error surfaces first, like the tree-walker.
        let a = l.as_num()?;
        let b = r.as_num()?;
        self.stack.push(Value::Num(f(a, b)));
        Ok(())
    }

    fn compare(&mut self, f: impl FnOnce(std::cmp::Ordering) -> bool) -> Result<(), RuntimeError> {
        let r = self.pop();
        let l = self.pop();
        let ord = match (&l, &r) {
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => {
                return Err(RuntimeError::TypeError(format!(
                    "cannot compare {} with {}",
                    l.type_name(),
                    r.type_name()
                )))
            }
        };
        // NaN comparisons are false.
        self.stack.push(Value::Bool(ord.is_some_and(f)));
        Ok(())
    }
}
