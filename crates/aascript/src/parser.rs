//! Recursive-descent parser for AAScript.

use crate::ast::*;
use crate::error::{CompileError, Pos};
use crate::lexer::{lex, Spanned, Tok};
use std::collections::HashMap;
use std::rc::Rc;

/// Parses `src` into a [`Block`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its position.
pub fn parse(src: &str) -> Result<Block, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        interner: HashMap::new(),
    };
    let block = p.block()?;
    p.expect(Tok::Eof)?;
    Ok(block)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    /// Dedup map so each distinct identifier/string literal is one `Rc<str>`.
    interner: HashMap<String, Name>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), CompileError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: String) -> CompileError {
        CompileError {
            pos: self.pos(),
            message,
        }
    }

    fn intern(&mut self, s: String) -> Name {
        if let Some(n) = self.interner.get(&s) {
            return n.clone();
        }
        let n: Name = Rc::from(s.as_str());
        self.interner.insert(s, n.clone());
        n
    }

    fn name(&mut self) -> Result<Name, CompileError> {
        match self.peek().clone() {
            Tok::Name(n) => {
                self.bump();
                Ok(self.intern(n))
            }
            other => Err(self.err(format!("expected a name, found {other:?}"))),
        }
    }

    /// Does the current token end a block?
    fn block_ends(&self) -> bool {
        matches!(
            self.peek(),
            Tok::End | Tok::Else | Tok::Elseif | Tok::Eof | Tok::Until
        )
    }

    fn block(&mut self) -> Result<Block, CompileError> {
        let mut stmts = Vec::new();
        let mut at = Vec::new();
        loop {
            while self.eat(Tok::Semi) {}
            if self.block_ends() {
                break;
            }
            let pos = self.pos();
            let stmt = self.statement()?;
            let is_terminal = matches!(stmt, Stmt::Return(_) | Stmt::Break);
            stmts.push(stmt);
            at.push(pos);
            if is_terminal {
                while self.eat(Tok::Semi) {}
                break;
            }
        }
        Ok(Block { stmts, at })
    }

    fn statement(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            Tok::Local => {
                self.bump();
                if self.eat(Tok::Function) {
                    let name = self.name()?;
                    let def = self.func_body()?;
                    return Ok(Stmt::LocalFunc { name, def });
                }
                let name = self.name()?;
                let init = if self.eat(Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                Ok(Stmt::Local(name, init))
            }
            Tok::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(Tok::Then)?;
                let body = self.block()?;
                arms.push((cond, body));
                let mut else_body = None;
                loop {
                    match self.peek().clone() {
                        Tok::Elseif => {
                            self.bump();
                            let c = self.expr()?;
                            self.expect(Tok::Then)?;
                            let b = self.block()?;
                            arms.push((c, b));
                        }
                        Tok::Else => {
                            self.bump();
                            else_body = Some(self.block()?);
                            self.expect(Tok::End)?;
                            break;
                        }
                        Tok::End => {
                            self.bump();
                            break;
                        }
                        other => {
                            return Err(
                                self.err(format!("expected elseif/else/end, found {other:?}"))
                            )
                        }
                    }
                }
                Ok(Stmt::If(arms, else_body))
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Do)?;
                let body = self.block()?;
                self.expect(Tok::End)?;
                Ok(Stmt::While(cond, body))
            }
            Tok::Repeat => {
                self.bump();
                let body = self.block()?;
                self.expect(Tok::Until)?;
                let cond = self.expr()?;
                Ok(Stmt::Repeat(body, cond))
            }
            Tok::For => {
                self.bump();
                let first = self.name()?;
                if self.eat(Tok::Assign) {
                    let start = self.expr()?;
                    self.expect(Tok::Comma)?;
                    let stop = self.expr()?;
                    let step = if self.eat(Tok::Comma) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(Tok::Do)?;
                    let body = self.block()?;
                    self.expect(Tok::End)?;
                    return Ok(Stmt::NumericFor {
                        var: first,
                        start,
                        stop,
                        step,
                        body,
                    });
                }
                let second = if self.eat(Tok::Comma) {
                    Some(self.name()?)
                } else {
                    None
                };
                self.expect(Tok::In)?;
                let iter_name = self.name()?;
                let kind = match &*iter_name {
                    "pairs" => IterKind::Pairs,
                    "ipairs" => IterKind::Ipairs,
                    other => {
                        return Err(self.err(format!(
                            "generic for supports pairs/ipairs, found `{other}`"
                        )))
                    }
                };
                self.expect(Tok::LParen)?;
                let expr = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Do)?;
                let body = self.block()?;
                self.expect(Tok::End)?;
                Ok(Stmt::GenericFor {
                    k: first,
                    v: second,
                    kind,
                    expr,
                    body,
                })
            }
            Tok::Function => {
                self.bump();
                // function Name{.Name} [: Name] (...) ... end
                let base = self.name()?;
                let mut target = Target::Name(base.clone());
                let mut expr_so_far = Expr::Var(base);
                while self.eat(Tok::Dot) {
                    let field = self.name()?;
                    target = Target::Index(
                        Box::new(expr_so_far.clone()),
                        Box::new(Expr::Str(field.clone())),
                    );
                    expr_so_far = Expr::Index(Box::new(expr_so_far), Box::new(Expr::Str(field)));
                }
                let def = self.func_body()?;
                Ok(Stmt::FuncDecl { target, def })
            }
            Tok::Return => {
                self.bump();
                if self.block_ends() || *self.peek() == Tok::Semi {
                    Ok(Stmt::Return(None))
                } else {
                    Ok(Stmt::Return(Some(self.expr()?)))
                }
            }
            Tok::Break => {
                self.bump();
                Ok(Stmt::Break)
            }
            _ => {
                // Assignment or call statement.
                let e = self.suffixed_expr()?;
                if self.eat(Tok::Assign) {
                    let target = match e {
                        Expr::Var(n) => Target::Name(n),
                        Expr::Index(obj, key) => Target::Index(obj, key),
                        _ => return Err(self.err("invalid assignment target".into())),
                    };
                    let value = self.expr()?;
                    Ok(Stmt::Assign(target, value))
                } else {
                    match e {
                        Expr::Call(..) | Expr::MethodCall(..) => Ok(Stmt::ExprStmt(e)),
                        _ => Err(self.err("expression statements must be calls".into())),
                    }
                }
            }
        }
    }

    fn func_body(&mut self) -> Result<Rc<FuncDef>, CompileError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                params.push(self.name()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let body = self.block()?;
        self.expect(Tok::End)?;
        Ok(Rc::new(FuncDef { params, body }))
    }

    // ---- Expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.eat(Tok::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(Tok::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.concat_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.concat_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn concat_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.add_expr()?;
        if self.eat(Tok::Concat) {
            // Right associative.
            let rhs = self.concat_expr()?;
            Ok(Expr::Bin(BinOp::Concat, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let op = match self.peek() {
            Tok::Not => Some(UnOp::Not),
            Tok::Minus => Some(UnOp::Neg),
            Tok::Hash => Some(UnOp::Len),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            Ok(Expr::Un(op, Box::new(operand)))
        } else {
            self.pow_expr()
        }
    }

    fn pow_expr(&mut self) -> Result<Expr, CompileError> {
        let base = self.suffixed_expr()?;
        if self.eat(Tok::Caret) {
            // Right associative, binds tighter than unary on the right.
            let exp = self.unary_expr()?;
            Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    /// A primary expression followed by any chain of `.name`, `[expr]`,
    /// `(args)`, and `:method(args)` suffixes.
    fn suffixed_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                Tok::Dot => {
                    self.bump();
                    let field = self.name()?;
                    e = Expr::Index(Box::new(e), Box::new(Expr::Str(field)));
                }
                Tok::LBracket => {
                    self.bump();
                    let key = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(key));
                }
                Tok::LParen => {
                    self.bump();
                    let args = self.call_args()?;
                    e = Expr::Call(Box::new(e), args);
                }
                Tok::Colon => {
                    self.bump();
                    let method = self.name()?;
                    self.expect(Tok::LParen)?;
                    let args = self.call_args()?;
                    e = Expr::MethodCall(Box::new(e), method, args);
                }
                Tok::Str(s) => {
                    // Lua shorthand: f "literal".
                    self.bump();
                    let s = self.intern(s);
                    e = Expr::Call(Box::new(e), vec![Expr::Str(s)]);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, CompileError> {
        let mut args = Vec::new();
        if self.eat(Tok::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            Tok::Nil => {
                self.bump();
                Ok(Expr::Nil)
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::Str(s) => {
                self.bump();
                let s = self.intern(s);
                Ok(Expr::Str(s))
            }
            Tok::Name(n) => {
                self.bump();
                let n = self.intern(n);
                Ok(Expr::Var(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let mut items = Vec::new();
                while !self.eat(Tok::RBrace) {
                    let item = match self.peek().clone() {
                        Tok::LBracket => {
                            self.bump();
                            let key = self.expr()?;
                            self.expect(Tok::RBracket)?;
                            self.expect(Tok::Assign)?;
                            let value = self.expr()?;
                            TableItem::Keyed(key, value)
                        }
                        Tok::Name(n) if self.toks[self.i + 1].tok == Tok::Assign => {
                            self.bump();
                            self.bump();
                            let n = self.intern(n);
                            let value = self.expr()?;
                            TableItem::Named(n, value)
                        }
                        _ => TableItem::Positional(self.expr()?),
                    };
                    items.push(item);
                    if !self.eat(Tok::Comma) && !self.eat(Tok::Semi) {
                        self.expect(Tok::RBrace)?;
                        break;
                    }
                }
                Ok(Expr::TableCtor(items))
            }
            Tok::Function => {
                self.bump();
                let def = self.func_body()?;
                Ok(Expr::Func(def))
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_local_and_assign() {
        let b = parse("local x = 1\nx = x + 1").unwrap();
        assert_eq!(b.stmts.len(), 2);
        assert!(matches!(&b.stmts[0], Stmt::Local(n, Some(_)) if &**n == "x"));
        assert!(matches!(&b.stmts[1], Stmt::Assign(Target::Name(n), _) if &**n == "x"));
    }

    #[test]
    fn parses_fig5_password_handler() {
        // The paper's Fig. 5 example, verbatim modulo whitespace.
        let src = r#"
            AA = {NodeId = 27,
                  IP = "131.94.130.118",
                  Password = "3053482032"}
            function onGet(caller, password)
                if (password == AA.Password) then
                    return AA.NodeId
                end
                return nil
            end
        "#;
        let b = parse(src).unwrap();
        assert_eq!(b.stmts.len(), 2);
        assert!(
            matches!(&b.stmts[1], Stmt::FuncDecl { target: Target::Name(n), .. } if &**n == "onGet")
        );
    }

    #[test]
    fn precedence_and_or() {
        // a or b and c  ==  a or (b and c)
        let b = parse("x = a or b and c").unwrap();
        let Stmt::Assign(_, Expr::Bin(BinOp::Or, _, rhs)) = &b.stmts[0] else {
            panic!("expected or at top");
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::And, _, _)));
    }

    #[test]
    fn precedence_arith_vs_cmp() {
        // 1 + 2 < 3 * 4  ==  (1+2) < (3*4)
        let b = parse("x = 1 + 2 < 3 * 4").unwrap();
        let Stmt::Assign(_, Expr::Bin(BinOp::Lt, l, r)) = &b.stmts[0] else {
            panic!("expected < at top");
        };
        assert!(matches!(**l, Expr::Bin(BinOp::Add, _, _)));
        assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn concat_is_right_associative() {
        let b = parse(r#"x = "a" .. "b" .. "c""#).unwrap();
        let Stmt::Assign(_, Expr::Bin(BinOp::Concat, _, rhs)) = &b.stmts[0] else {
            panic!();
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Concat, _, _)));
    }

    #[test]
    fn method_call_sugar() {
        let b = parse("obj:poke(1, 2)").unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::ExprStmt(Expr::MethodCall(_, m, args)) if &**m == "poke" && args.len() == 2
        ));
    }

    #[test]
    fn numeric_and_generic_for() {
        let b = parse("for i = 1, 10, 2 do x = i end").unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::NumericFor { step: Some(_), .. }
        ));
        let b = parse("for k, v in pairs(t) do x = k end").unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::GenericFor {
                kind: IterKind::Pairs,
                v: Some(_),
                ..
            }
        ));
        let b = parse("for i in ipairs(t) do x = i end").unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::GenericFor {
                kind: IterKind::Ipairs,
                v: None,
                ..
            }
        ));
        assert!(parse("for k in custom(t) do end").is_err());
    }

    #[test]
    fn table_constructors() {
        let b = parse(r#"t = {1, 2, name = "x", [5] = true}"#).unwrap();
        let Stmt::Assign(_, Expr::TableCtor(items)) = &b.stmts[0] else {
            panic!();
        };
        assert_eq!(items.len(), 4);
        assert!(matches!(items[0], TableItem::Positional(_)));
        assert!(matches!(&items[2], TableItem::Named(n, _) if &**n == "name"));
        assert!(matches!(items[3], TableItem::Keyed(_, _)));
    }

    #[test]
    fn nested_function_targets() {
        let b = parse("function a.b.c(x) return x end").unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::FuncDecl {
                target: Target::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn repeat_until() {
        let b = parse("repeat x = x + 1 until x > 3").unwrap();
        assert!(matches!(&b.stmts[0], Stmt::Repeat(_, _)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("local = 3").is_err());
        assert!(parse("if x then").is_err());
        assert!(parse("x +").is_err());
        assert!(parse("3 = x").is_err());
        assert!(parse("x").is_err(), "bare non-call expression statement");
        assert!(parse("end").is_err());
    }

    #[test]
    fn return_must_end_block() {
        assert!(parse("return 1\nx = 2").is_err());
        assert!(parse("if a then return 1 end\nx = 2").is_ok());
        assert!(parse("return").is_ok());
        assert!(parse("return;").is_ok());
    }

    #[test]
    fn call_string_shorthand() {
        let b = parse(r#"f "hello""#).unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::ExprStmt(Expr::Call(_, args)) if args.len() == 1
        ));
    }
}
