//! Tokenizer for AAScript source text (a Lua-style grammar).

use crate::error::{CompileError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names
    /// An identifier.
    Name(String),
    /// A numeric literal.
    Num(f64),
    /// A string literal (unescaped).
    Str(String),

    // Keywords
    /// `and`
    And,
    /// `break`
    Break,
    /// `do`
    Do,
    /// `else`
    Else,
    /// `elseif`
    Elseif,
    /// `end`
    End,
    /// `false`
    False,
    /// `for`
    For,
    /// `function`
    Function,
    /// `if`
    If,
    /// `in`
    In,
    /// `local`
    Local,
    /// `nil`
    Nil,
    /// `not`
    Not,
    /// `or`
    Or,
    /// `return`
    Return,
    /// `then`
    Then,
    /// `true`
    True,
    /// `while`
    While,
    /// `repeat`
    Repeat,
    /// `until`
    Until,

    // Symbols
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `#`
    Hash,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Assign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    Concat,

    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes `src` into a vector ending with [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed numbers, unterminated strings or
/// block comments, and unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($pos:expr, $($arg:tt)*) => {
            return Err(CompileError { pos: $pos, message: format!($($arg)*) })
        };
    }

    let advance = |i: &mut usize, line: &mut u32, col: &mut u32, c: char| {
        *i += 1;
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };

        // Whitespace
        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col, c);
            continue;
        }

        // Comments: `--` line or `--[[ ... ]]` block
        if c == '-' && bytes.get(i + 1) == Some(&'-') {
            if bytes.get(i + 2) == Some(&'[') && bytes.get(i + 3) == Some(&'[') {
                advance(&mut i, &mut line, &mut col, '-');
                advance(&mut i, &mut line, &mut col, '-');
                advance(&mut i, &mut line, &mut col, '[');
                advance(&mut i, &mut line, &mut col, '[');
                loop {
                    if i >= bytes.len() {
                        err!(pos, "unterminated block comment");
                    }
                    if bytes[i] == ']' && bytes.get(i + 1) == Some(&']') {
                        advance(&mut i, &mut line, &mut col, ']');
                        advance(&mut i, &mut line, &mut col, ']');
                        break;
                    }
                    let ch = bytes[i];
                    advance(&mut i, &mut line, &mut col, ch);
                }
            } else {
                while i < bytes.len() && bytes[i] != '\n' {
                    let ch = bytes[i];
                    advance(&mut i, &mut line, &mut col, ch);
                }
            }
            continue;
        }

        // Identifiers and keywords
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                let ch = bytes[i];
                advance(&mut i, &mut line, &mut col, ch);
            }
            let word: String = bytes[start..i].iter().collect();
            let tok = match word.as_str() {
                "and" => Tok::And,
                "break" => Tok::Break,
                "do" => Tok::Do,
                "else" => Tok::Else,
                "elseif" => Tok::Elseif,
                "end" => Tok::End,
                "false" => Tok::False,
                "for" => Tok::For,
                "function" => Tok::Function,
                "if" => Tok::If,
                "in" => Tok::In,
                "local" => Tok::Local,
                "nil" => Tok::Nil,
                "not" => Tok::Not,
                "or" => Tok::Or,
                "return" => Tok::Return,
                "then" => Tok::Then,
                "true" => Tok::True,
                "while" => Tok::While,
                "repeat" => Tok::Repeat,
                "until" => Tok::Until,
                _ => Tok::Name(word),
            };
            out.push(Spanned { tok, pos });
            continue;
        }

        // Numbers: decimal with optional fraction and exponent; 0x hex ints.
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && matches!(bytes.get(i + 1), Some('x') | Some('X')) {
                advance(&mut i, &mut line, &mut col, '0');
                advance(&mut i, &mut line, &mut col, 'x');
                let hstart = i;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    let ch = bytes[i];
                    advance(&mut i, &mut line, &mut col, ch);
                }
                if hstart == i {
                    err!(pos, "malformed hex literal");
                }
                let hex: String = bytes[hstart..i].iter().collect();
                let v = u64::from_str_radix(&hex, 16).map_err(|_| CompileError {
                    pos,
                    message: "hex literal out of range".into(),
                })?;
                out.push(Spanned {
                    tok: Tok::Num(v as f64),
                    pos,
                });
                continue;
            }
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                let ch = bytes[i];
                advance(&mut i, &mut line, &mut col, ch);
            }
            if i < bytes.len() && bytes[i] == '.' && bytes.get(i + 1) != Some(&'.') {
                advance(&mut i, &mut line, &mut col, '.');
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    let ch = bytes[i];
                    advance(&mut i, &mut line, &mut col, ch);
                }
            }
            if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                advance(&mut i, &mut line, &mut col, 'e');
                if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                    let ch = bytes[i];
                    advance(&mut i, &mut line, &mut col, ch);
                }
                let estart = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    let ch = bytes[i];
                    advance(&mut i, &mut line, &mut col, ch);
                }
                if estart == i {
                    err!(pos, "malformed exponent");
                }
            }
            let text: String = bytes[start..i].iter().collect();
            let v: f64 = text.parse().map_err(|_| CompileError {
                pos,
                message: format!("malformed number `{text}`"),
            })?;
            out.push(Spanned {
                tok: Tok::Num(v),
                pos,
            });
            continue;
        }

        // Strings
        if c == '"' || c == '\'' {
            let quote = c;
            advance(&mut i, &mut line, &mut col, c);
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    err!(pos, "unterminated string");
                }
                let ch = bytes[i];
                if ch == quote {
                    advance(&mut i, &mut line, &mut col, ch);
                    break;
                }
                if ch == '\n' {
                    err!(pos, "unterminated string (newline)");
                }
                if ch == '\\' {
                    advance(&mut i, &mut line, &mut col, ch);
                    if i >= bytes.len() {
                        err!(pos, "unterminated escape");
                    }
                    let esc = bytes[i];
                    let decoded = match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '\\' => '\\',
                        '"' => '"',
                        '\'' => '\'',
                        other => err!(Pos { line, col }, "unknown escape `\\{other}`"),
                    };
                    s.push(decoded);
                    advance(&mut i, &mut line, &mut col, esc);
                } else {
                    s.push(ch);
                    advance(&mut i, &mut line, &mut col, ch);
                }
            }
            out.push(Spanned {
                tok: Tok::Str(s),
                pos,
            });
            continue;
        }

        // Symbols
        let two = |a: char| bytes.get(i + 1) == Some(&a);
        let (tok, width) = match c {
            '+' => (Tok::Plus, 1),
            '-' => (Tok::Minus, 1),
            '*' => (Tok::Star, 1),
            '/' => (Tok::Slash, 1),
            '%' => (Tok::Percent, 1),
            '^' => (Tok::Caret, 1),
            '#' => (Tok::Hash, 1),
            '=' if two('=') => (Tok::Eq, 2),
            '=' => (Tok::Assign, 1),
            '~' if two('=') => (Tok::Ne, 2),
            '<' if two('=') => (Tok::Le, 2),
            '<' => (Tok::Lt, 1),
            '>' if two('=') => (Tok::Ge, 2),
            '>' => (Tok::Gt, 1),
            '(' => (Tok::LParen, 1),
            ')' => (Tok::RParen, 1),
            '{' => (Tok::LBrace, 1),
            '}' => (Tok::RBrace, 1),
            '[' => (Tok::LBracket, 1),
            ']' => (Tok::RBracket, 1),
            ';' => (Tok::Semi, 1),
            ':' => (Tok::Colon, 1),
            ',' => (Tok::Comma, 1),
            '.' if two('.') => (Tok::Concat, 2),
            '.' => (Tok::Dot, 1),
            other => err!(pos, "unexpected character `{other}`"),
        };
        for _ in 0..width {
            let ch = bytes[i];
            advance(&mut i, &mut line, &mut col, ch);
        }
        out.push(Spanned { tok, pos });
    }

    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_names() {
        assert_eq!(
            toks("local x = nil"),
            vec![
                Tok::Local,
                Tok::Name("x".into()),
                Tok::Assign,
                Tok::Nil,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Num(42.0), Tok::Eof]);
        assert_eq!(toks("3.5"), vec![Tok::Num(3.5), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Num(1000.0), Tok::Eof]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Num(0.25), Tok::Eof]);
        assert_eq!(toks("0xFF"), vec![Tok::Num(255.0), Tok::Eof]);
    }

    #[test]
    fn number_dot_dot_is_concat_not_fraction() {
        assert_eq!(
            toks("1..2"),
            vec![Tok::Num(1.0), Tok::Concat, Tok::Num(2.0), Tok::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""a\nb" 'c\'d'"#),
            vec![Tok::Str("a\nb".into()), Tok::Str("c'd".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- comment\nb --[[ block\nover lines ]] c"),
            vec![
                Tok::Name("a".into()),
                Tok::Name("b".into()),
                Tok::Name("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a == b ~= c <= d >= e < f > g"),
            vec![
                Tok::Name("a".into()),
                Tok::Eq,
                Tok::Name("b".into()),
                Tok::Ne,
                Tok::Name("c".into()),
                Tok::Le,
                Tok::Name("d".into()),
                Tok::Ge,
                Tok::Name("e".into()),
                Tok::Lt,
                Tok::Name("f".into()),
                Tok::Gt,
                Tok::Name("g".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("x\n  y").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("0x").is_err());
        assert!(lex("1e").is_err());
        assert!(lex("--[[ never closed").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }
}
