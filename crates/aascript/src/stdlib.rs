//! The sandboxed standard library.
//!
//! Only math, string, and table manipulation plus a few conversion
//! primitives are exposed — the paper's second sandbox modification removes
//! "core libraries relating to kernel access, file system access, network
//! access" from the executing environment (§III.B). There is deliberately no
//! `io`, `os`, `require`, `load`, or coroutine support, and no source of
//! nondeterminism.

use crate::error::RuntimeError;
use crate::interp::{declare, root_env, Env};
use crate::value::{display_value, Key, NativeFn, Table, Value};
use std::cell::RefCell;
use std::rc::Rc;

fn native(
    name: &'static str,
    f: impl Fn(&[Value]) -> Result<Value, RuntimeError> + 'static,
) -> Value {
    let nf: NativeFn = Rc::new(f);
    Value::Native(name, nf)
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Nil)
}

fn num_arg(args: &[Value], i: usize, fname: &str) -> Result<f64, RuntimeError> {
    arg(args, i)
        .as_num()
        .map_err(|_| RuntimeError::TypeError(format!("bad argument #{} to {fname}", i + 1)))
}

fn str_arg(args: &[Value], i: usize, fname: &str) -> Result<String, RuntimeError> {
    match arg(args, i) {
        Value::Str(s) => Ok(s.to_string()),
        other => Err(RuntimeError::TypeError(format!(
            "bad argument #{} to {fname} (string expected, got {})",
            i + 1,
            other.type_name()
        ))),
    }
}

fn table_arg(args: &[Value], i: usize, fname: &str) -> Result<Rc<RefCell<Table>>, RuntimeError> {
    match arg(args, i) {
        Value::Table(t) => Ok(t),
        other => Err(RuntimeError::TypeError(format!(
            "bad argument #{} to {fname} (table expected, got {})",
            i + 1,
            other.type_name()
        ))),
    }
}

/// Resolves Lua-style string indices: 1-based, negative counts from the
/// end; returns a byte range.
fn str_range(len: usize, i: f64, j: f64) -> (usize, usize) {
    let n = len as i64;
    let norm = |x: f64, default_neg: i64| -> i64 {
        let x = x as i64;
        if x >= 0 {
            x
        } else {
            (n + x + 1).max(default_neg)
        }
    };
    let mut start = norm(i, 1);
    let mut stop = norm(j, 0);
    if start < 1 {
        start = 1;
    }
    if stop > n {
        stop = n;
    }
    if start > stop {
        return (0, 0);
    }
    ((start - 1) as usize, stop as usize)
}

/// Builds a fresh global environment containing the sandboxed stdlib.
pub fn sandbox_globals() -> Env {
    let env = root_env();

    declare(
        &env,
        "tostring",
        native("tostring", |args| {
            Ok(Value::str(display_value(&arg(args, 0))))
        }),
    );

    declare(
        &env,
        "tonumber",
        native("tonumber", |args| match arg(args, 0) {
            Value::Num(n) => Ok(Value::Num(n)),
            Value::Str(s) => Ok(s
                .trim()
                .parse::<f64>()
                .map(Value::Num)
                .unwrap_or(Value::Nil)),
            _ => Ok(Value::Nil),
        }),
    );

    declare(
        &env,
        "type",
        native("type", |args| Ok(Value::str(arg(args, 0).type_name()))),
    );

    declare(
        &env,
        "assert",
        native("assert", |args| {
            let v = arg(args, 0);
            if v.truthy() {
                Ok(v)
            } else {
                let msg = match arg(args, 1) {
                    Value::Str(s) => s.to_string(),
                    Value::Nil => "assertion failed!".into(),
                    other => display_value(&other),
                };
                Err(RuntimeError::Other(msg))
            }
        }),
    );

    declare(
        &env,
        "error",
        native("error", |args| {
            Err(RuntimeError::Other(display_value(&arg(args, 0))))
        }),
    );

    // `pcall` is dispatched specially by the interpreter (it must run the
    // callee); this binding only provides the name. Unlike Lua's
    // multi-value return, it returns a table: `{ok = bool, value = ...}`
    // on success, `{ok = false, error = "..."}` on a caught error.
    declare(
        &env,
        "pcall",
        native("pcall", |_args| {
            Err(RuntimeError::Other(
                "pcall must be called directly, not through a variable".into(),
            ))
        }),
    );

    // ---- math ----
    let math = Table::new();
    let math = Rc::new(RefCell::new(math));
    let mut m = math.borrow_mut();
    m.set(Key::Str("pi".into()), Value::Num(std::f64::consts::PI));
    m.set(Key::Str("huge".into()), Value::Num(f64::INFINITY));
    m.set(
        Key::Str("abs".into()),
        native("math.abs", |a| Ok(Value::Num(num_arg(a, 0, "abs")?.abs()))),
    );
    m.set(
        Key::Str("ceil".into()),
        native("math.ceil", |a| {
            Ok(Value::Num(num_arg(a, 0, "ceil")?.ceil()))
        }),
    );
    m.set(
        Key::Str("floor".into()),
        native("math.floor", |a| {
            Ok(Value::Num(num_arg(a, 0, "floor")?.floor()))
        }),
    );
    m.set(
        Key::Str("sqrt".into()),
        native("math.sqrt", |a| {
            Ok(Value::Num(num_arg(a, 0, "sqrt")?.sqrt()))
        }),
    );
    m.set(
        Key::Str("max".into()),
        native("math.max", |a| {
            if a.is_empty() {
                return Err(RuntimeError::Other("math.max needs arguments".into()));
            }
            let mut best = num_arg(a, 0, "max")?;
            for i in 1..a.len() {
                best = best.max(num_arg(a, i, "max")?);
            }
            Ok(Value::Num(best))
        }),
    );
    m.set(
        Key::Str("min".into()),
        native("math.min", |a| {
            if a.is_empty() {
                return Err(RuntimeError::Other("math.min needs arguments".into()));
            }
            let mut best = num_arg(a, 0, "min")?;
            for i in 1..a.len() {
                best = best.min(num_arg(a, i, "min")?);
            }
            Ok(Value::Num(best))
        }),
    );
    m.set(
        Key::Str("fmod".into()),
        native("math.fmod", |a| {
            Ok(Value::Num(num_arg(a, 0, "fmod")? % num_arg(a, 1, "fmod")?))
        }),
    );
    drop(m);
    declare(&env, "math", Value::Table(math));

    // ---- string ----
    let string = Rc::new(RefCell::new(Table::new()));
    let mut s = string.borrow_mut();
    s.set(
        Key::Str("len".into()),
        native("string.len", |a| {
            Ok(Value::Num(str_arg(a, 0, "len")?.len() as f64))
        }),
    );
    s.set(
        Key::Str("upper".into()),
        native("string.upper", |a| {
            Ok(Value::str(str_arg(a, 0, "upper")?.to_uppercase()))
        }),
    );
    s.set(
        Key::Str("lower".into()),
        native("string.lower", |a| {
            Ok(Value::str(str_arg(a, 0, "lower")?.to_lowercase()))
        }),
    );
    s.set(
        Key::Str("sub".into()),
        native("string.sub", |a| {
            let text = str_arg(a, 0, "sub")?;
            let i = num_arg(a, 1, "sub")?;
            let j = match arg(a, 2) {
                Value::Nil => -1.0,
                v => v.as_num()?,
            };
            let (lo, hi) = str_range(text.len(), i, j);
            Ok(Value::str(&text[lo..hi]))
        }),
    );
    s.set(
        Key::Str("rep".into()),
        native("string.rep", |a| {
            let text = str_arg(a, 0, "rep")?;
            let n = num_arg(a, 1, "rep")?.max(0.0) as usize;
            if text.len().saturating_mul(n) > 1 << 20 {
                return Err(RuntimeError::Other("string.rep result too large".into()));
            }
            Ok(Value::str(text.repeat(n)))
        }),
    );
    s.set(
        Key::Str("find".into()),
        native("string.find", |a| {
            // Plain substring find (no patterns in the sandbox); returns the
            // 1-based start index or nil.
            let hay = str_arg(a, 0, "find")?;
            let needle = str_arg(a, 1, "find")?;
            Ok(hay
                .find(&needle)
                .map(|i| Value::Num((i + 1) as f64))
                .unwrap_or(Value::Nil))
        }),
    );
    s.set(
        Key::Str("byte".into()),
        native("string.byte", |a| {
            let text = str_arg(a, 0, "byte")?;
            let i = match arg(a, 1) {
                Value::Nil => 1.0,
                v => v.as_num()?,
            };
            let (lo, hi) = str_range(text.len(), i, i);
            if lo >= hi {
                return Ok(Value::Nil);
            }
            Ok(Value::Num(text.as_bytes()[lo] as f64))
        }),
    );
    s.set(
        Key::Str("char".into()),
        native("string.char", |a| {
            let mut out = String::new();
            for i in 0..a.len() {
                let c = num_arg(a, i, "char")? as u32;
                let c = char::from_u32(c)
                    .ok_or_else(|| RuntimeError::Other(format!("invalid char code {c}")))?;
                out.push(c);
            }
            Ok(Value::str(out))
        }),
    );
    s.set(
        Key::Str("format".into()),
        native("string.format", |a| {
            // Minimal %s / %d / %f / %% support.
            let fmt = str_arg(a, 0, "format")?;
            let mut out = String::new();
            let mut argi = 1usize;
            let mut chars = fmt.chars().peekable();
            while let Some(c) = chars.next() {
                if c != '%' {
                    out.push(c);
                    continue;
                }
                match chars.next() {
                    Some('%') => out.push('%'),
                    Some('s') => {
                        out.push_str(&display_value(&arg(a, argi)));
                        argi += 1;
                    }
                    Some('d') => {
                        out.push_str(&format!("{}", num_arg(a, argi, "format")? as i64));
                        argi += 1;
                    }
                    Some('f') => {
                        out.push_str(&format!("{:.6}", num_arg(a, argi, "format")?));
                        argi += 1;
                    }
                    other => {
                        return Err(RuntimeError::Other(format!(
                            "unsupported format directive %{}",
                            other.map(String::from).unwrap_or_default()
                        )))
                    }
                }
            }
            Ok(Value::str(out))
        }),
    );
    drop(s);
    declare(&env, "string", Value::Table(string));

    // ---- table ----
    let table_lib = Rc::new(RefCell::new(Table::new()));
    let mut t = table_lib.borrow_mut();
    t.set(
        Key::Str("insert".into()),
        native("table.insert", |a| {
            let t = table_arg(a, 0, "insert")?;
            match a.len() {
                2 => {
                    let n = t.borrow().len();
                    t.borrow_mut().set(Key::Int(n + 1), arg(a, 1));
                    Ok(Value::Nil)
                }
                3 => {
                    let pos = num_arg(a, 1, "insert")? as i64;
                    t.borrow_mut().array_insert(pos, arg(a, 2));
                    Ok(Value::Nil)
                }
                n => Err(RuntimeError::Other(format!(
                    "wrong number of arguments to table.insert ({n})"
                ))),
            }
        }),
    );
    t.set(
        Key::Str("remove".into()),
        native("table.remove", |a| {
            let t = table_arg(a, 0, "remove")?;
            let pos = match arg(a, 1) {
                Value::Nil => t.borrow().len(),
                v => v.as_num()? as i64,
            };
            if pos == 0 {
                return Ok(Value::Nil);
            }
            let removed = t.borrow_mut().array_remove(pos);
            Ok(removed)
        }),
    );
    t.set(
        Key::Str("concat".into()),
        native("table.concat", |a| {
            let t = table_arg(a, 0, "concat")?;
            let sep = match arg(a, 1) {
                Value::Nil => String::new(),
                Value::Str(s) => s.to_string(),
                other => {
                    return Err(RuntimeError::TypeError(format!(
                        "bad separator of type {}",
                        other.type_name()
                    )))
                }
            };
            let t = t.borrow();
            let mut parts = Vec::new();
            for i in 1..=t.len() {
                parts.push(t.get(&Key::Int(i)).concat_str()?);
            }
            Ok(Value::str(parts.join(&sep)))
        }),
    );
    drop(t);
    declare(&env, "table", Value::Table(table_lib));

    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{lookup, Interp};
    use crate::parser::parse;

    fn run(src: &str) -> Result<Value, RuntimeError> {
        let block = parse(src).expect("parse");
        let env = sandbox_globals();
        let mut interp = Interp::new(100_000, env.clone());
        interp.exec_chunk(&block, &env)
    }

    fn run_num(src: &str) -> f64 {
        run(src).unwrap().as_num().unwrap()
    }

    fn run_str(src: &str) -> String {
        match run(src).unwrap() {
            Value::Str(s) => s.to_string(),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn math_functions() {
        assert_eq!(run_num("return math.abs(-3)"), 3.0);
        assert_eq!(run_num("return math.floor(2.9)"), 2.0);
        assert_eq!(run_num("return math.ceil(2.1)"), 3.0);
        assert_eq!(run_num("return math.sqrt(16)"), 4.0);
        assert_eq!(run_num("return math.max(1, 9, 4)"), 9.0);
        assert_eq!(run_num("return math.min(1, 9, -4)"), -4.0);
        assert_eq!(run_num("return math.fmod(7, 3)"), 1.0);
        assert!(run_num("return math.huge") > 1e300);
    }

    #[test]
    fn string_functions() {
        assert_eq!(run_num(r#"return string.len("hello")"#), 5.0);
        assert_eq!(run_str(r#"return string.upper("aBc")"#), "ABC");
        assert_eq!(run_str(r#"return string.sub("hello", 2, 4)"#), "ell");
        assert_eq!(run_str(r#"return string.sub("hello", -3)"#), "llo");
        assert_eq!(run_str(r#"return string.rep("ab", 3)"#), "ababab");
        assert_eq!(run_num(r#"return string.find("hello", "ll")"#), 3.0);
        assert!(matches!(
            run(r#"return string.find("hello", "xyz")"#).unwrap(),
            Value::Nil
        ));
        assert_eq!(run_num(r#"return string.byte("A")"#), 65.0);
        assert_eq!(run_str("return string.char(104, 105)"), "hi");
        assert_eq!(run_str(r#"return string.format("%s=%d", "x", 7)"#), "x=7");
    }

    #[test]
    fn table_functions() {
        assert_eq!(
            run_num("local t = {1, 2}\ntable.insert(t, 9)\nreturn t[3]"),
            9.0
        );
        assert_eq!(
            run_num("local t = {1, 2, 3}\ntable.insert(t, 1, 9)\nreturn t[1] + t[4]"),
            12.0
        );
        assert_eq!(
            run_num("local t = {5, 6, 7}\nlocal r = table.remove(t, 1)\nreturn r + #t"),
            7.0
        );
        assert_eq!(
            run_str(r#"return table.concat({"a", "b", "c"}, "-")"#),
            "a-b-c"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(run_str("return tostring(42)"), "42");
        assert_eq!(run_str("return tostring(nil)"), "nil");
        assert_eq!(run_num(r#"return tonumber("3.5")"#), 3.5);
        assert!(matches!(
            run(r#"return tonumber("zebra")"#).unwrap(),
            Value::Nil
        ));
        assert_eq!(run_str("return type({})"), "table");
        assert_eq!(run_str(r#"return type("")"#), "string");
    }

    #[test]
    fn assert_and_error() {
        assert!(run("assert(true)").is_ok());
        assert!(matches!(
            run(r#"assert(false, "boom")"#),
            Err(RuntimeError::Other(m)) if m == "boom"
        ));
        assert!(matches!(
            run(r#"error("explode")"#),
            Err(RuntimeError::Other(m)) if m == "explode"
        ));
    }

    #[test]
    fn no_dangerous_libraries() {
        let env = sandbox_globals();
        for name in [
            "io",
            "os",
            "require",
            "load",
            "loadstring",
            "dofile",
            "coroutine",
        ] {
            assert!(
                matches!(lookup(&env, name), Value::Nil),
                "{name} must not exist in the sandbox"
            );
        }
    }

    #[test]
    fn rep_bomb_is_rejected() {
        assert!(matches!(
            run(r#"return string.rep("aaaaaaaaaa", 10000000)"#),
            Err(RuntimeError::Other(_))
        ));
    }
}
