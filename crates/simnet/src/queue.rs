//! The simulator's event queue: a two-tier calendar/bucket queue.
//!
//! Discrete-event simulators spend a large share of their hot path inside
//! the pending-event priority queue. A single global `BinaryHeap` costs
//! `O(log n)` comparisons per operation over the *whole* event population;
//! a calendar queue exploits the fact that almost every event is scheduled
//! a short latency into the future (one network hop, one timer tick) by
//! hashing events into fixed-width time buckets, making the common
//! schedule/pop pair amortized `O(1)`-ish in the pending count.
//!
//! Design:
//!
//! * **Near tier** — a wheel of [`NUM_BUCKETS`] buckets, each covering
//!   [`BUCKET_WIDTH_US`] µs of virtual time. An event lands in bucket
//!   `(at / width) % NUM_BUCKETS`. At any instant every bucket holds
//!   events of exactly one "day" (width-sized window), so each bucket is a
//!   tiny min-heap ordered by `(at, seq)`.
//! * **Far tier** — events scheduled beyond the wheel horizon
//!   (`NUM_BUCKETS × width`, ≈ 1 s) go to an overflow `BinaryHeap`. They
//!   are *lazily* merged: the pop path simply compares the overflow head
//!   against the wheel head, so far-future timers cost `O(log overflow)`
//!   only when they actually become due.
//!
//! Ordering is **exactly** the total order of the previous global heap:
//! `(at, seq)` lexicographically, where `seq` is the global schedule
//! sequence number. The engine's determinism guarantees are therefore
//! preserved bit-for-bit (asserted by the trace-equality tests in
//! `engine.rs`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Width of one calendar bucket in microseconds (must be a power of two;
/// 256 µs ≈ half a typical intra-site one-way latency).
pub const BUCKET_WIDTH_US: u64 = 1 << BUCKET_SHIFT;
const BUCKET_SHIFT: u32 = 8;

/// Number of buckets in the wheel. With 256 µs buckets the wheel covers
/// ~1.05 s of virtual time — enough for every per-message latency and the
/// common maintenance timers; anything longer overflows to the far tier.
pub const NUM_BUCKETS: usize = 1 << 12;
const DAY_MASK: u64 = (NUM_BUCKETS as u64) - 1;

/// One queued event.
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (at, seq) wins.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Where the next event lives (result of the shared peek scan).
enum Loc {
    Wheel(usize),
    Overflow,
}

/// A two-tier calendar/bucket event queue with exact `(at, seq)` ordering.
///
/// ```
/// use simnet::queue::CalendarQueue;
/// use simnet::SimTime;
///
/// let mut q = CalendarQueue::new();
/// q.push(SimTime::from_millis(5), 1, "b");
/// q.push(SimTime::from_millis(1), 0, "a");
/// q.push(SimTime::from_secs(30), 2, "far");
/// assert_eq!(q.pop().map(|(_, _, p)| p), Some("a"));
/// assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
/// assert_eq!(q.pop().map(|(_, _, p)| p), Some("far"));
/// assert!(q.pop().is_none());
/// ```
pub struct CalendarQueue<T> {
    buckets: Vec<BinaryHeap<Entry<T>>>,
    overflow: BinaryHeap<Entry<T>>,
    /// First "day" (bucket-width window) that may still hold events.
    /// Invariant: every queued event's day is `>= cursor_day`.
    cursor_day: u64,
    /// Events currently in the wheel (not counting overflow).
    wheel_len: usize,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..NUM_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor_day: 0,
            wheel_len: 0,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn day_of(at: SimTime) -> u64 {
        at.as_micros() >> BUCKET_SHIFT
    }

    /// Inserts an event. `seq` must be unique per queue (the engine's
    /// global schedule counter).
    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        let day = Self::day_of(at);
        // The engine never schedules into the past, but run_until() can
        // leave `now` ahead of the cursor; moving the cursor back is always
        // safe (it only costs a rescan of empty buckets).
        if day < self.cursor_day {
            self.cursor_day = day;
        }
        let entry = Entry { at, seq, payload };
        if day >= self.cursor_day + NUM_BUCKETS as u64 {
            self.overflow.push(entry);
        } else {
            self.buckets[(day & DAY_MASK) as usize].push(entry);
            self.wheel_len += 1;
        }
        self.len += 1;
    }

    /// Locates the earliest event, advancing the cursor past empty days.
    ///
    /// The scan walks at most one full rotation from the cursor. Within a
    /// single scan, a bucket whose top is at exactly the scanned day is a
    /// provable wheel minimum (any earlier event would have been some
    /// already-scanned bucket's top); tops at wrapped (later-rotation) days
    /// are tracked as fallback candidates so the scan is bounded by
    /// [`NUM_BUCKETS`] even after a cursor rollback. The cursor ends at the
    /// winning event's day, preserving the invariant that no queued event
    /// is earlier than the cursor.
    fn peek_loc(&mut self) -> Option<Loc> {
        if self.len == 0 {
            return None;
        }
        let overflow_key = self.overflow.peek().map(|e| (e.at, e.seq));
        let overflow_day = overflow_key.map(|(at, _)| Self::day_of(at));

        // (day, bucket index, (at, seq)) of the best wheel candidate.
        let mut wheel_best: Option<(u64, usize, (SimTime, u64))> = None;
        if self.wheel_len > 0 {
            let start = self.cursor_day;
            for step in 0..NUM_BUCKETS as u64 {
                let d = start + step;
                let idx = (d & DAY_MASK) as usize;
                if let Some(top) = self.buckets[idx].peek() {
                    let top_day = Self::day_of(top.at);
                    if top_day == d {
                        // Exact hit: the wheel minimum. Any wrapped
                        // candidates recorded so far are >= d + NUM_BUCKETS.
                        wheel_best = Some((top_day, idx, (top.at, top.seq)));
                        break;
                    }
                    // Wrapped top (a later rotation): candidate, keep the min.
                    if wheel_best.is_none_or(|(bd, _, _)| top_day < bd) {
                        wheel_best = Some((top_day, idx, (top.at, top.seq)));
                    }
                }
                // If the overflow head is due no later than every unscanned
                // day, it bounds the result; stop scanning.
                if overflow_day.is_some_and(|od| d >= od) {
                    break;
                }
            }
        }

        match (wheel_best, overflow_key) {
            (Some((_, _, wkey)), Some(okey)) if okey < wkey => {
                self.cursor_day = Self::day_of(okey.0);
                Some(Loc::Overflow)
            }
            (Some((d, idx, _)), _) => {
                self.cursor_day = d;
                Some(Loc::Wheel(idx))
            }
            (None, Some(okey)) => {
                self.cursor_day = Self::day_of(okey.0);
                Some(Loc::Overflow)
            }
            (None, None) => unreachable!("len > 0 but no event found"),
        }
    }

    /// `(at, seq)` of the earliest event without removing it.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        let loc = self.peek_loc()?;
        let entry = match loc {
            Loc::Wheel(idx) => self.buckets[idx].peek(),
            Loc::Overflow => self.overflow.peek(),
        };
        entry.map(|e| (e.at, e.seq))
    }

    /// Removes and returns the earliest event as `(at, seq, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let loc = self.peek_loc()?;
        let entry = match loc {
            Loc::Wheel(idx) => {
                self.wheel_len -= 1;
                self.buckets[idx].pop()
            }
            Loc::Overflow => self.overflow.pop(),
        }
        .expect("peek_loc found an event");
        self.len -= 1;
        Some((entry.at, entry.seq, entry.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u64>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, payload)) = q.pop() {
            assert_eq!(seq, payload, "payload tracks seq in these tests");
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = CalendarQueue::new();
        // Same timestamp: must pop in seq order; different timestamps: time
        // order regardless of insertion order.
        q.push(SimTime::from_micros(500), 3, 3);
        q.push(SimTime::from_micros(100), 2, 2);
        q.push(SimTime::from_micros(500), 1, 1);
        q.push(SimTime::from_micros(100), 0, 0);
        let order = drain(&mut q);
        assert_eq!(
            order,
            vec![
                (SimTime::from_micros(100), 0),
                (SimTime::from_micros(100), 2),
                (SimTime::from_micros(500), 1),
                (SimTime::from_micros(500), 3),
            ]
        );
    }

    #[test]
    fn matches_reference_heap_on_random_workload() {
        // Deterministic pseudo-random interleaving of pushes and pops,
        // compared against a plain sorted reference.
        let mut q = CalendarQueue::new();
        let mut reference: Vec<(SimTime, u64)> = Vec::new();
        let mut x: u64 = 0x1234_5678;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = SimTime::ZERO;
        for round in 0..2_000u64 {
            let seq = round;
            // Mix of near (same-bucket), mid (wheel), and far (overflow).
            let delta = match rng() % 10 {
                0..=5 => rng() % 700,                // near: < 1ms
                6..=8 => rng() % 200_000,            // mid: < 200ms
                _ => 1_000_000 + rng() % 30_000_000, // far: 1s..31s
            };
            let at = now + crate::SimDuration::from_micros(delta);
            q.push(at, seq, seq);
            reference.push((at, seq));
            if round % 3 == 0 {
                reference.sort();
                let expect = reference.remove(0);
                let got = q.pop().expect("queue non-empty");
                assert_eq!((got.0, got.1), expect, "round {round}");
                now = got.0; // events only move time forward
            }
        }
        reference.sort();
        for expect in reference {
            let got = q.pop().expect("queue non-empty");
            assert_eq!((got.0, got.1), expect);
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_overflow_pops_in_order() {
        let mut q = CalendarQueue::new();
        // All beyond the wheel horizon (> ~1s).
        q.push(SimTime::from_secs(30), 0, 0);
        q.push(SimTime::from_secs(10), 1, 1);
        q.push(SimTime::from_secs(20), 2, 2);
        // One near event.
        q.push(SimTime::from_micros(5), 3, 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, s, _)| s).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn push_after_long_idle_gap_is_found() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(1), 0, 0);
        assert!(q.pop().is_some());
        // Far beyond where the cursor sits — crosses many wheel rotations.
        q.push(SimTime::from_secs(120), 1, 1);
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(120), 1)));
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(1));
        // And the queue is reusable afterwards.
        q.push(SimTime::from_secs(121), 2, 2);
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(2));
    }

    #[test]
    fn overflow_then_near_insert_keeps_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_secs(5), 0, 0); // overflow at insert time
        q.push(SimTime::from_micros(10), 1, 1);
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(1));
        // Cursor is now near zero; the overflow event must still surface
        // even though the wheel is empty.
        q.push(SimTime::from_secs(5).max(SimTime::ZERO), 2, 2);
        let next_two: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, s, _)| s).collect();
        assert_eq!(next_two, vec![0, 2], "same-time overflow events pop by seq");
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.push(SimTime::from_micros(i * 37 % 1000), i, i);
        }
        assert_eq!(q.len(), 100);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert!(q.is_empty());
    }
}
