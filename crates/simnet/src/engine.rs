//! The discrete-event simulation engine.
//!
//! Protocol code is written against [`Actor`] (message/timer callbacks) and
//! [`Context`] (send, timers, clock, randomness). The [`Simulation`] owns one
//! actor per [`NodeAddr`] and executes events in deterministic virtual-time
//! order: runs with the same seed produce identical traces.
//!
//! ## Hot path
//!
//! The engine keeps two queues. Message deliveries and timer fires — the
//! overwhelming majority of events — live in a [`CalendarQueue`] keyed on
//! `(at, seq)` and carry plain-data payloads, so scheduling and dispatching
//! them allocates nothing (the per-callback pending buffer is pooled and
//! reused). External [`Simulation::schedule_call`] closures, which are rare
//! and inherently boxed, live in a small side heap; the pop path merges the
//! two by key, preserving the exact global `(at, seq)` order a single heap
//! would produce.

use crate::obs::Recorder;
use crate::queue::CalendarQueue;
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeAddr, SiteId, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

/// Application-chosen identifier distinguishing concurrent timers on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub u64);

/// One recorded event, when tracing is enabled (see
/// [`Simulation::enable_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered.
    Deliver {
        /// Delivery time.
        at: SimTime,
        /// Sender.
        from: NodeAddr,
        /// Receiver.
        to: NodeAddr,
    },
    /// A timer fired.
    Timer {
        /// Firing time.
        at: SimTime,
        /// The timer's owner.
        node: NodeAddr,
        /// The token it was armed with.
        token: TimerToken,
    },
}

/// What a pending event is, as exposed to [`Scheduler`]s in exploration
/// mode. Payloads stay opaque; the kind carries exactly the node footprint
/// a partial-order reduction needs to decide commutativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A message in flight from `from` to `to`.
    Deliver {
        /// Sender.
        from: NodeAddr,
        /// Receiver.
        to: NodeAddr,
    },
    /// A timer armed on `node`.
    Timer {
        /// The timer's owner.
        node: NodeAddr,
        /// The token it was armed with.
        token: TimerToken,
    },
    /// An external [`Simulation::schedule_call`] against `node`.
    Call {
        /// The call's target.
        node: NodeAddr,
    },
}

impl EventKind {
    /// The (at most two) nodes this event reads or writes.
    pub fn footprint(&self) -> (NodeAddr, NodeAddr) {
        match *self {
            EventKind::Deliver { from, to } => (from, to),
            EventKind::Timer { node, .. } | EventKind::Call { node } => (node, node),
        }
    }

    /// Whether this event touches `node`.
    pub fn touches(&self, node: NodeAddr) -> bool {
        let (a, b) = self.footprint();
        a == node || b == node
    }

    /// Whether two events operate on disjoint nodes — in which case firing
    /// them in either order reaches the same state, and an explorer only
    /// needs one of the two orders.
    pub fn commutes_with(&self, other: &EventKind) -> bool {
        let (a, b) = other.footprint();
        !self.touches(a) && !self.touches(b)
    }

    /// Whether the event is a message delivery (the only kind a fault
    /// injector may drop).
    pub fn is_deliver(&self) -> bool {
        matches!(self, EventKind::Deliver { .. })
    }
}

/// Descriptor of one pending event in exploration mode. The `seq` is the
/// event's identity: deterministic replay of the same decision prefix
/// reproduces the same sequence numbers, so a recorded schedule can name
/// events by `seq` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDesc {
    /// Nominal (earliest) execution time.
    pub at: SimTime,
    /// Globally unique, deterministic sequence number.
    pub seq: u64,
    /// What the event is and which nodes it touches.
    pub kind: EventKind,
}

/// One decision a [`Scheduler`] can make about the ready set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Choice {
    /// Execute the pending event with this `seq`.
    Fire(u64),
    /// Drop the pending *delivery* with this `seq` (fault injection:
    /// message lost in flight).
    Drop(u64),
    /// Crash this node (fault injection; all its pending and future
    /// traffic is discarded).
    Crash(NodeAddr),
}

/// The "which ready event fires next" policy, abstracted.
///
/// In normal operation the calendar queue plays the role of a fixed
/// earliest-`(at, seq)` scheduler; in exploration mode
/// ([`Simulation::enable_exploration`]) the engine instead presents the
/// co-enabled ready set to a `Scheduler` and lets it pick — which is what
/// lets `rbay-check` enumerate interleavings instead of sampling one per
/// seed. Returning `None` abandons the run (used by explorers to prune
/// redundant branches).
pub trait Scheduler {
    /// Picks the next action, given the ready set sorted by `(at, seq)`
    /// (never empty). `step` counts decisions made so far this run.
    fn choose(&mut self, step: usize, ready: &[EventDesc]) -> Option<Choice>;
}

/// The default scheduling policy: always fire the earliest `(at, seq)`
/// event — exactly the total order the calendar queue produces, so a run
/// explored under `EarliestFirst` is byte-identical to a normal run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EarliestFirst;

impl Scheduler for EarliestFirst {
    fn choose(&mut self, _step: usize, ready: &[EventDesc]) -> Option<Choice> {
        ready.first().map(|e| Choice::Fire(e.seq))
    }
}

/// Wire-size accounting for simulated messages.
///
/// The default implementation charges the in-memory size, which is a fair
/// stand-in for the compact binary encodings real deployments use; override
/// it for messages with significant heap payloads.
pub trait MessageSize {
    /// Approximate encoded size of this message in bytes.
    fn wire_size(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of_val(self)
    }
}

/// A simulated protocol participant.
///
/// One actor instance lives at each [`NodeAddr`]. All callbacks receive a
/// [`Context`] for sending messages, arming timers, and sampling randomness.
pub trait Actor: Sized {
    /// The message type exchanged between actors of this simulation.
    type Msg: MessageSize;

    /// Called once when the simulation starts (in address order).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this actor.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg);

    /// Called when a timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, token: TimerToken) {
        let _ = (ctx, token);
    }
}

/// A deferred external call against one actor.
type CallFn<A> = Box<dyn FnOnce(&mut A, &mut Context<'_, <A as Actor>::Msg>)>;

/// Plain-data event payloads stored in the calendar queue. Unlike the old
/// single-heap design there is no `Call` variant here, so the per-message
/// path never touches a boxed closure.
enum EventPayload<M> {
    Deliver {
        from: NodeAddr,
        to: NodeAddr,
        msg: M,
    },
    Timer {
        node: NodeAddr,
        token: TimerToken,
        generation: u64,
    },
}

/// A boxed [`Simulation::schedule_call`] closure in the side heap.
struct ScheduledCall<A: Actor> {
    at: SimTime,
    seq: u64,
    node: NodeAddr,
    f: CallFn<A>,
}

impl<A: Actor> PartialEq for ScheduledCall<A> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<A: Actor> Eq for ScheduledCall<A> {}
impl<A: Actor> PartialOrd for ScheduledCall<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: Actor> Ord for ScheduledCall<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest call pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

enum PendingEvent<M> {
    Deliver { to: NodeAddr, msg: M },
    Timer { token: TimerToken, generation: u64 },
}

/// One pending event in the exploration store (calendar queue and call
/// heap merged into a flat, removable-by-`seq` vector).
struct StoredEvent<A: Actor> {
    at: SimTime,
    seq: u64,
    entry: StoredEntry<A>,
}

enum StoredEntry<A: Actor> {
    Payload(EventPayload<A::Msg>),
    Call { node: NodeAddr, f: CallFn<A> },
}

impl<A: Actor> StoredEvent<A> {
    fn desc(&self) -> EventDesc {
        let kind = match &self.entry {
            StoredEntry::Payload(EventPayload::Deliver { from, to, .. }) => EventKind::Deliver {
                from: *from,
                to: *to,
            },
            StoredEntry::Payload(EventPayload::Timer { node, token, .. }) => EventKind::Timer {
                node: *node,
                token: *token,
            },
            StoredEntry::Call { node, .. } => EventKind::Call { node: *node },
        };
        EventDesc {
            at: self.at,
            seq: self.seq,
            kind,
        }
    }
}

/// Lazy timer cancellation: each `(node, token)` pair has a generation
/// counter, bumped by a cancel. A queued timer remembers the generation it
/// was armed under and is silently discarded at fire time if a cancel
/// happened in between. Workloads that never cancel skip the map entirely.
#[derive(Default)]
struct TimerGens {
    gens: HashMap<(NodeAddr, TimerToken), u64>,
    any_cancels: bool,
}

impl TimerGens {
    fn current(&self, node: NodeAddr, token: TimerToken) -> u64 {
        if !self.any_cancels {
            return 0;
        }
        self.gens.get(&(node, token)).copied().unwrap_or(0)
    }

    fn cancel(&mut self, node: NodeAddr, token: TimerToken) {
        self.any_cancels = true;
        *self.gens.entry((node, token)).or_insert(0) += 1;
    }
}

/// Everything an actor callback may touch besides its own state.
///
/// Sends and timer arms are buffered and applied to the global event queue
/// when the callback returns, preserving deterministic ordering.
pub struct Context<'a, M> {
    now: SimTime,
    self_addr: NodeAddr,
    topology: &'a Topology,
    rng: &'a mut SmallRng,
    stats: &'a mut NetStats,
    timers: &'a mut TimerGens,
    pending: Vec<(SimTime, PendingEvent<M>)>,
}

impl<'a, M: MessageSize> Context<'a, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's own address.
    pub fn self_addr(&self) -> NodeAddr {
        self.self_addr
    }

    /// The site this actor lives in.
    pub fn self_site(&self) -> SiteId {
        self.topology.site_of(self.self_addr)
    }

    /// The shared topology (read-only).
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The deterministic simulation RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `msg` to `to`; it is delivered after a latency sampled from the
    /// topology. Messages to failed nodes are dropped at delivery time, like
    /// packets to a crashed host.
    pub fn send(&mut self, to: NodeAddr, msg: M) {
        let cross = self.topology.site_of(self.self_addr) != self.topology.site_of(to);
        self.stats.record_send(msg.wire_size(), cross);
        // Fault injection: messages may be lost in flight.
        let loss = self.topology.loss_prob();
        if loss > 0.0 && rand::Rng::gen_bool(self.rng, loss) {
            self.stats.record_drop();
            return;
        }
        let lat = self.topology.sample_latency(self.self_addr, to, self.rng);
        self.pending
            .push((self.now + lat, PendingEvent::Deliver { to, msg }));
    }

    /// Arms a timer on this actor that fires after `delay` with `token`.
    ///
    /// Arming the same token twice yields two independent fires; use
    /// [`Context::cancel_timer`] to invalidate earlier arms.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let generation = self.timers.current(self.self_addr, token);
        self.pending
            .push((self.now + delay, PendingEvent::Timer { token, generation }));
    }

    /// Cancels every outstanding timer this actor armed with `token`.
    ///
    /// Cancellation is lazy: the queued events stay in the queue and are
    /// discarded (and counted in [`NetStats::cancelled_timers`]) when they
    /// reach the head. Timers armed *after* the cancel fire normally —
    /// including ones armed later in the same callback.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        // Bumping the generation also invalidates arms buffered earlier in
        // this same callback: they carry the pre-bump generation.
        self.timers.cancel(self.self_addr, token);
    }
}

/// What [`Simulation::pop_next`] found at the head of the merged queues.
enum Next<A: Actor> {
    Event(EventPayload<A::Msg>),
    Call { node: NodeAddr, f: CallFn<A> },
}

/// A deterministic discrete-event simulation over a fixed set of actors.
///
/// ```
/// use simnet::{Actor, Context, MessageSize, NodeAddr, Simulation, Topology};
///
/// struct Echo(u32);
/// #[derive(Debug)]
/// struct Ping;
/// impl MessageSize for Ping {}
/// impl Actor for Echo {
///     type Msg = Ping;
///     fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _from: NodeAddr, _msg: Ping) {
///         self.0 += 1;
///     }
/// }
///
/// let topo = Topology::single_site(2, 0.5);
/// let mut sim = Simulation::new(topo, 42, |_| Echo(0));
/// sim.schedule_call(simnet::SimTime::ZERO, NodeAddr(0), |_, ctx| {
///     ctx.send(NodeAddr(1), Ping);
/// });
/// sim.run_until_idle();
/// assert_eq!(sim.actor(NodeAddr(1)).0, 1);
/// ```
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    topology: Topology,
    /// Deliveries and timer fires: the allocation-free hot path.
    events: CalendarQueue<EventPayload<A::Msg>>,
    /// Rare boxed external calls, merged with `events` by `(at, seq)`.
    calls: BinaryHeap<ScheduledCall<A>>,
    now: SimTime,
    rng: SmallRng,
    stats: NetStats,
    timers: TimerGens,
    failed: Vec<bool>,
    seq: u64,
    started: bool,
    trace: Option<Vec<TraceEvent>>,
    trace_cap: usize,
    /// Observability-plane handle; disabled (a no-op) by default. The
    /// engine's only job is to keep its clock current at every dispatch so
    /// actor-layer hooks stamp events with the right virtual time.
    obs: Recorder,
    /// Recycled `Context::pending` buffer: swapped into each callback's
    /// context and back, so steady-state dispatch does not allocate.
    pending_pool: Vec<(SimTime, PendingEvent<A::Msg>)>,
    /// Exploration store ([`Simulation::enable_exploration`]): when
    /// `Some`, newly scheduled events land here instead of the calendar
    /// queue so a [`Scheduler`] can fire them in any order. `None` (the
    /// default) leaves the calendar-queue hot path untouched.
    explore: Option<Vec<StoredEvent<A>>>,
    /// Wall-clock nanoseconds spent inside `run_*` loops. Kept out of
    /// [`NetStats`] so stats snapshots stay comparable across runs.
    wall_nanos: u64,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation with one actor per topology address, built by
    /// `make` (called with each address in order), seeded deterministically.
    pub fn new(topology: Topology, seed: u64, mut make: impl FnMut(NodeAddr) -> A) -> Self {
        let n = topology.node_count();
        let actors = (0..n as u32).map(|i| make(NodeAddr(i))).collect();
        Simulation {
            actors,
            failed: vec![false; n],
            topology,
            events: CalendarQueue::new(),
            calls: BinaryHeap::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            stats: NetStats::default(),
            timers: TimerGens::default(),
            seq: 0,
            started: false,
            trace: None,
            trace_cap: 0,
            obs: Recorder::default(),
            pending_pool: Vec::new(),
            explore: None,
            wall_nanos: 0,
        }
    }

    /// Switches the engine into exploration mode: every event already
    /// queued (and every event scheduled from now on) moves into a flat
    /// store from which a [`Scheduler`] may fire events in any order
    /// within a co-enabled window, drop deliveries, or crash nodes —
    /// the substrate of systematic interleaving checking.
    ///
    /// May be called at any point, so a scenario can run its setup phase
    /// on the fast calendar-queue path and only explore the interesting
    /// window. In exploration mode `run_until*`/`run_for` still work and
    /// follow the default earliest-`(at, seq)` order, and firing an event
    /// advances the clock to `max(now, at)` — an event deliberately held
    /// back past later events models a delayed delivery.
    pub fn enable_exploration(&mut self) {
        if self.explore.is_some() {
            return;
        }
        let mut store = Vec::new();
        while let Some((at, seq, payload)) = self.events.pop() {
            store.push(StoredEvent {
                at,
                seq,
                entry: StoredEntry::Payload(payload),
            });
        }
        while let Some(call) = self.calls.pop() {
            store.push(StoredEvent {
                at: call.at,
                seq: call.seq,
                entry: StoredEntry::Call {
                    node: call.node,
                    f: call.f,
                },
            });
        }
        self.explore = Some(store);
    }

    /// Whether exploration mode is on.
    pub fn exploration_enabled(&self) -> bool {
        self.explore.is_some()
    }

    /// Starts recording delivered messages and fired timers, keeping at
    /// most `capacity` events (older events are not evicted; recording
    /// simply stops at the cap, which keeps tracing O(1) per event).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Vec::with_capacity(capacity.min(1 << 20)));
        self.trace_cap = capacity;
    }

    /// The recorded trace so far (empty slice when tracing is off).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Installs an observability recorder (usually a clone of a recorder
    /// shared with the per-node protocol layers). The engine advances the
    /// recorder's clock at every dispatch and bumps per-node delivery
    /// counters when the recorder is enabled.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The installed observability recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    fn record_trace(&mut self, ev: TraceEvent) {
        if let Some(t) = &mut self.trace {
            if t.len() < self.trace_cap {
                t.push(ev);
            }
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology the simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Adjusts the message-loss probability mid-run. Loss is sampled per
    /// send, so this opens or closes a fault-injection window immediately
    /// (e.g. lossy period, then a clean recovery phase).
    pub fn set_loss_prob(&mut self, p: f64) {
        self.topology.set_loss_prob(p);
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Wall-clock time spent executing events so far.
    pub fn wall_time(&self) -> Duration {
        Duration::from_nanos(self.wall_nanos)
    }

    /// Engine throughput: executed events per wall-clock second, measured
    /// over all `run_*` calls so far. Returns 0.0 before the first run.
    ///
    /// The event count itself is deterministic ([`NetStats::events`]); only
    /// this rate depends on the host machine.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.stats.events() as f64 * 1e9 / self.wall_nanos as f64
    }

    /// Immutable access to the actor at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn actor(&self, addr: NodeAddr) -> &A {
        &self.actors[addr.index()]
    }

    /// Mutable access to the actor at `addr` (outside of callbacks).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn actor_mut(&mut self, addr: NodeAddr) -> &mut A {
        &mut self.actors[addr.index()]
    }

    /// Iterates over `(addr, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (NodeAddr, &A)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeAddr(i as u32), a))
    }

    /// Marks `addr` as crashed: deliveries, timers, and calls targeting it
    /// are dropped until [`Simulation::revive_node`].
    pub fn fail_node(&mut self, addr: NodeAddr) {
        self.failed[addr.index()] = true;
    }

    /// Brings a crashed node back. Its actor state is as it was at failure.
    pub fn revive_node(&mut self, addr: NodeAddr) {
        self.failed[addr.index()] = false;
    }

    /// Whether `addr` is currently failed.
    pub fn is_failed(&self, addr: NodeAddr) -> bool {
        self.failed[addr.index()]
    }

    /// Cancels every outstanding timer `node` armed with `token` (the
    /// external counterpart of [`Context::cancel_timer`]).
    pub fn cancel_timer(&mut self, node: NodeAddr, token: TimerToken) {
        self.timers.cancel(node, token);
    }

    /// Schedules `f` to run on the actor at `node` at absolute time `at`
    /// (clamped to now if already past).
    pub fn schedule_call(
        &mut self,
        at: SimTime,
        node: NodeAddr,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>) + 'static,
    ) {
        let at = at.max(self.now);
        let seq = self.next_seq();
        if let Some(store) = &mut self.explore {
            store.push(StoredEvent {
                at,
                seq,
                entry: StoredEntry::Call {
                    node,
                    f: Box::new(f),
                },
            });
        } else {
            self.calls.push(ScheduledCall {
                at,
                seq,
                node,
                f: Box::new(f),
            });
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            self.dispatch_call_now(NodeAddr(i as u32), |a, ctx| a.on_start(ctx));
        }
    }

    /// Runs `f` against actor `node` with a live context, immediately, then
    /// flushes buffered sends/timers into the event queue.
    fn dispatch_call_now(
        &mut self,
        node: NodeAddr,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>),
    ) {
        if self.failed[node.index()] {
            return;
        }
        let mut ctx = Context {
            now: self.now,
            self_addr: node,
            topology: &self.topology,
            rng: &mut self.rng,
            stats: &mut self.stats,
            timers: &mut self.timers,
            // Reuse the pooled buffer; callbacks cannot re-enter dispatch,
            // so one buffer covers every callback in the simulation.
            pending: std::mem::take(&mut self.pending_pool),
        };
        f(&mut self.actors[node.index()], &mut ctx);
        let mut pending = ctx.pending;
        for (at, ev) in pending.drain(..) {
            let seq = self.next_seq();
            let payload = match ev {
                PendingEvent::Deliver { to, msg } => EventPayload::Deliver {
                    from: node,
                    to,
                    msg,
                },
                PendingEvent::Timer { token, generation } => EventPayload::Timer {
                    node,
                    token,
                    generation,
                },
            };
            if let Some(store) = &mut self.explore {
                store.push(StoredEvent {
                    at,
                    seq,
                    entry: StoredEntry::Payload(payload),
                });
            } else {
                self.events.push(at, seq, payload);
            }
        }
        self.pending_pool = pending;
    }

    /// Discards exploration-store events that would be no-ops anyway
    /// (cancelled timers; anything touching a crashed node), so the ready
    /// set presented to schedulers contains only events whose order can
    /// matter. Note this is eager relative to the normal path (which
    /// discards at pop time): a node revived *before* a pending delivery's
    /// timestamp would receive it on the normal path but not here, so
    /// exploration treats crashes as permanent.
    fn explore_prune(&mut self) {
        let Simulation {
            explore,
            failed,
            timers,
            stats,
            ..
        } = self;
        let Some(store) = explore else { return };
        store.retain(|e| match &e.entry {
            StoredEntry::Payload(EventPayload::Deliver { from, to, .. }) => {
                if failed[from.index()] || failed[to.index()] {
                    stats.record_drop();
                    false
                } else {
                    true
                }
            }
            StoredEntry::Payload(EventPayload::Timer {
                node,
                token,
                generation,
            }) => {
                if failed[node.index()] {
                    false
                } else if timers.current(*node, *token) != *generation {
                    stats.record_cancelled_timer();
                    false
                } else {
                    true
                }
            }
            StoredEntry::Call { node, .. } => !failed[node.index()],
        });
    }

    /// The co-enabled ready set: every pending event whose timestamp lies
    /// within `window` of the earliest pending timestamp, sorted by
    /// `(at, seq)`. Events separated by more than the window are treated
    /// as causally ordered by time (a heartbeat due in 300ms cannot race
    /// a delivery due now), which keeps the branching factor at the scale
    /// of genuinely concurrent events.
    ///
    /// Returns an empty set when the simulation has quiesced. Only
    /// meaningful in exploration mode.
    pub fn explore_ready(&mut self, window: SimDuration) -> Vec<EventDesc> {
        self.start_if_needed();
        self.explore_prune();
        let Some(store) = &self.explore else {
            return Vec::new();
        };
        let Some(min_at) = store.iter().map(|e| e.at).min() else {
            return Vec::new();
        };
        let horizon = min_at + window;
        let mut ready: Vec<EventDesc> = store
            .iter()
            .filter(|e| e.at <= horizon)
            .map(|e| e.desc())
            .collect();
        ready.sort_by_key(|d| (d.at, d.seq));
        ready
    }

    /// Executes the stored event with sequence number `seq`, advancing the
    /// clock to `max(now, at)`. Returns false if no such event is pending
    /// (replayed schedules tolerate vanished events that way).
    pub fn explore_fire(&mut self, seq: u64) -> bool {
        self.start_if_needed();
        let Some(store) = &mut self.explore else {
            return false;
        };
        let Some(i) = store.iter().position(|e| e.seq == seq) else {
            return false;
        };
        let ev = store.swap_remove(i);
        self.now = self.now.max(ev.at);
        match ev.entry {
            StoredEntry::Payload(p) => self.execute(Next::Event(p)),
            StoredEntry::Call { node, f } => self.execute(Next::Call { node, f }),
        }
        true
    }

    /// Drops the stored *delivery* with sequence number `seq` (fault
    /// injection: the message is lost in flight). Refuses (returns false)
    /// for timers and calls, which a network cannot lose.
    pub fn explore_drop(&mut self, seq: u64) -> bool {
        let Some(store) = &mut self.explore else {
            return false;
        };
        let Some(i) = store.iter().position(|e| e.seq == seq) else {
            return false;
        };
        if !matches!(
            store[i].entry,
            StoredEntry::Payload(EventPayload::Deliver { .. })
        ) {
            return false;
        }
        store.swap_remove(i);
        self.stats.record_drop();
        true
    }

    /// Applies one scheduler [`Choice`].
    pub fn explore_apply(&mut self, choice: Choice) -> bool {
        match choice {
            Choice::Fire(seq) => self.explore_fire(seq),
            Choice::Drop(seq) => self.explore_drop(seq),
            Choice::Crash(node) => {
                self.fail_node(node);
                true
            }
        }
    }

    /// Number of pending events in the exploration store (after pruning
    /// no-ops). Zero means the simulation has quiesced.
    pub fn explore_pending(&mut self) -> usize {
        self.explore_prune();
        self.explore.as_ref().map_or(0, |s| s.len())
    }

    /// Drives the simulation with `sched` until quiescence, the scheduler
    /// prunes the run, or `max_steps` decisions have been applied.
    /// Returns the number of steps taken. Requires exploration mode.
    pub fn run_explored(
        &mut self,
        sched: &mut dyn Scheduler,
        window: SimDuration,
        max_steps: u64,
    ) -> u64 {
        let mut n = 0;
        while n < max_steps {
            let ready = self.explore_ready(window);
            if ready.is_empty() {
                break;
            }
            let Some(choice) = sched.choose(n as usize, &ready) else {
                break;
            };
            if !self.explore_apply(choice) {
                break;
            }
            n += 1;
        }
        n
    }

    /// Fires stored events in default `(at, seq)` order — the exploration-
    /// mode equivalent of the normal run loop, used so `run_until*` keep
    /// working after [`Simulation::enable_exploration`].
    fn run_explored_default(&mut self, deadline: Option<SimTime>, limit: u64) -> u64 {
        self.start_if_needed();
        let mut n = 0;
        while n < limit {
            self.explore_prune();
            let Some(store) = &self.explore else { break };
            let Some((at, seq)) = store.iter().map(|e| (e.at, e.seq)).min() else {
                break;
            };
            if deadline.is_some_and(|d| at > d) {
                break;
            }
            self.explore_fire(seq);
            n += 1;
        }
        n
    }

    /// The `(at)` of the earliest queued event across both queues.
    fn peek_next_at(&mut self) -> Option<SimTime> {
        let ekey = self.events.peek_key();
        let ckey = self.calls.peek().map(|c| (c.at, c.seq));
        match (ekey, ckey) {
            (None, None) => None,
            (Some((at, _)), None) | (None, Some((at, _))) => Some(at),
            (Some(e), Some(c)) => Some(e.min(c).0),
        }
    }

    /// Pops the globally earliest event, merging the calendar queue and the
    /// call heap by `(at, seq)`.
    fn pop_next(&mut self) -> Option<(SimTime, Next<A>)> {
        let ekey = self.events.peek_key();
        let ckey = self.calls.peek().map(|c| (c.at, c.seq));
        let take_event = match (ekey, ckey) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(e), Some(c)) => e < c,
        };
        if take_event {
            let (at, _seq, payload) = self.events.pop().expect("peeked event exists");
            Some((at, Next::Event(payload)))
        } else {
            let call = self.calls.pop().expect("peeked call exists");
            Some((
                call.at,
                Next::Call {
                    node: call.node,
                    f: call.f,
                },
            ))
        }
    }

    /// Executes events until the queue is empty or `limit` events have run.
    /// Returns the number of events executed.
    pub fn run_until_idle_with_limit(&mut self, limit: u64) -> u64 {
        if self.explore.is_some() {
            return self.run_explored_default(None, limit);
        }
        self.start_if_needed();
        let wall = Instant::now();
        let mut n = 0;
        while n < limit {
            let Some((at, next)) = self.pop_next() else {
                break;
            };
            self.now = at;
            self.execute(next);
            n += 1;
        }
        self.wall_nanos += wall.elapsed().as_nanos() as u64;
        n
    }

    /// Executes events until the queue drains.
    ///
    /// # Panics
    ///
    /// Panics after 500 million events, which indicates a runaway protocol
    /// (e.g. an unbounded periodic timer with no stop condition).
    pub fn run_until_idle(&mut self) -> u64 {
        let limit = 500_000_000;
        let n = self.run_until_idle_with_limit(limit);
        assert!(
            n < limit,
            "simulation did not quiesce within {limit} events"
        );
        n
    }

    /// Executes events with timestamps `<= deadline`; the clock ends at
    /// `deadline` even if the queue drained earlier.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        if self.explore.is_some() {
            let n = self.run_explored_default(Some(deadline), u64::MAX);
            self.now = self.now.max(deadline);
            return n;
        }
        self.start_if_needed();
        let wall = Instant::now();
        let mut n = 0;
        while let Some(at) = self.peek_next_at() {
            if at > deadline {
                break;
            }
            let (at, next) = self.pop_next().expect("peeked event exists");
            self.now = at;
            self.execute(next);
            n += 1;
        }
        self.now = self.now.max(deadline);
        self.wall_nanos += wall.elapsed().as_nanos() as u64;
        n
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    fn execute(&mut self, next: Next<A>) {
        self.stats.record_event();
        self.obs.set_now(self.now);
        match next {
            Next::Event(EventPayload::Deliver { from, to, msg }) => {
                if self.failed[to.index()] || self.failed[from.index()] {
                    self.stats.record_drop();
                    return;
                }
                self.stats.record_delivery();
                self.record_trace(TraceEvent::Deliver {
                    at: self.now,
                    from,
                    to,
                });
                self.obs.count(to, "deliver");
                self.dispatch_call_now(to, move |a, ctx| a.on_message(ctx, from, msg));
            }
            Next::Event(EventPayload::Timer {
                node,
                token,
                generation,
            }) => {
                if self.timers.current(node, token) != generation {
                    self.stats.record_cancelled_timer();
                    return;
                }
                self.record_trace(TraceEvent::Timer {
                    at: self.now,
                    node,
                    token,
                });
                self.dispatch_call_now(node, move |a, ctx| a.on_timer(ctx, token));
            }
            Next::Call { node, f } => {
                self.dispatch_call_now(node, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(#[allow(dead_code)] u32),
    }
    impl MessageSize for Msg {}

    #[derive(Default)]
    struct PingPong {
        pings: u32,
        pongs: u32,
        last_timer: Option<TimerToken>,
    }

    impl Actor for PingPong {
        type Msg = Msg;
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeAddr, msg: Msg) {
            match msg {
                Msg::Ping(n) => {
                    self.pings += 1;
                    ctx.send(from, Msg::Pong(n));
                }
                Msg::Pong(_) => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, token: TimerToken) {
            self.last_timer = Some(token);
        }
    }

    fn two_node_sim() -> Simulation<PingPong> {
        Simulation::new(Topology::single_site(2, 1.0), 1, |_| PingPong::default())
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = two_node_sim();
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(1), Msg::Ping(7));
        });
        sim.run_until_idle();
        assert_eq!(sim.actor(NodeAddr(1)).pings, 1);
        assert_eq!(sim.actor(NodeAddr(0)).pongs, 1);
        // One round trip over a 1ms-RTT link takes about 1ms of virtual
        // time. The jitter model's minimum one-way latency is
        // mean - jitter_scale = 0.5ms * (1 - 0.05), so the tightest valid
        // lower bound for a round trip is 0.95ms.
        assert!(sim.now().as_millis_f64() >= 0.9);
        assert!(sim.now().as_millis_f64() < 3.0);
        assert_eq!(sim.stats().events(), 3); // call + ping + pong
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        let mut sim = two_node_sim();
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(25), TimerToken(99));
        });
        sim.run_until(SimTime::from_millis(24));
        assert_eq!(sim.actor(NodeAddr(0)).last_timer, None);
        sim.run_until(SimTime::from_millis(26));
        assert_eq!(sim.actor(NodeAddr(0)).last_timer, Some(TimerToken(99)));
    }

    #[test]
    fn failed_nodes_drop_messages() {
        let mut sim = two_node_sim();
        sim.fail_node(NodeAddr(1));
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(1), Msg::Ping(1));
        });
        sim.run_until_idle();
        assert_eq!(sim.actor(NodeAddr(1)).pings, 0);
        assert_eq!(sim.stats().dropped(), 1);
        sim.revive_node(NodeAddr(1));
        let now = sim.now();
        sim.schedule_call(now, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(1), Msg::Ping(2));
        });
        sim.run_until_idle();
        assert_eq!(sim.actor(NodeAddr(1)).pings, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        // Full-fidelity determinism: two same-seed runs over the 8-site EC2
        // topology must agree on the clock, every stats counter, and the
        // complete event trace (delivery and timer order included).
        let run = |seed: u64| {
            let mut sim =
                Simulation::new(Topology::aws_ec2_8_sites(4), seed, |_| PingPong::default());
            sim.enable_trace(1 << 16);
            for i in 0..16u32 {
                sim.schedule_call(SimTime::ZERO, NodeAddr(i), move |_, ctx| {
                    ctx.send(NodeAddr((i + 7) % 32), Msg::Ping(i));
                });
            }
            sim.run_until_idle();
            (sim.now(), sim.stats().clone(), sim.trace().to_vec())
        };
        let (now_a, stats_a, trace_a) = run(5);
        let (now_b, stats_b, trace_b) = run(5);
        assert_eq!(now_a, now_b);
        assert_eq!(stats_a, stats_b);
        assert!(!trace_a.is_empty());
        assert_eq!(trace_a, trace_b);
        assert_ne!(now_a, run(6).0);
    }

    #[test]
    fn same_timestamp_events_pop_in_schedule_order() {
        // With a zero-RTT topology every send lands at the same instant; the
        // seq tie-break must preserve the order the events were scheduled.
        struct Quiet;
        #[derive(Debug)]
        struct Nudge;
        impl MessageSize for Nudge {}
        impl Actor for Quiet {
            type Msg = Nudge;
            fn on_message(&mut self, _: &mut Context<'_, Nudge>, _: NodeAddr, _: Nudge) {}
        }
        let mut sim = Simulation::new(Topology::single_site(4, 0.0), 9, |_| Quiet);
        sim.enable_trace(16);
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(1), Nudge);
            ctx.send(NodeAddr(2), Nudge);
            ctx.send(NodeAddr(3), Nudge);
            ctx.set_timer(SimDuration::ZERO, TimerToken(5));
        });
        sim.run_until_idle();
        let trace = sim.trace();
        assert_eq!(trace.len(), 4, "{trace:?}");
        assert!(matches!(
            trace[0],
            TraceEvent::Deliver {
                to: NodeAddr(1),
                at: SimTime::ZERO,
                ..
            }
        ));
        assert!(matches!(
            trace[1],
            TraceEvent::Deliver {
                to: NodeAddr(2),
                ..
            }
        ));
        assert!(matches!(
            trace[2],
            TraceEvent::Deliver {
                to: NodeAddr(3),
                ..
            }
        ));
        assert!(matches!(
            trace[3],
            TraceEvent::Timer {
                token: TimerToken(5),
                ..
            }
        ));
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim = two_node_sim();
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), TimerToken(1));
            ctx.set_timer(SimDuration::from_millis(20), TimerToken(2));
        });
        sim.schedule_call(SimTime::from_millis(5), NodeAddr(0), |_, ctx| {
            ctx.cancel_timer(TimerToken(1));
        });
        sim.run_until_idle();
        // Token 1 was cancelled before its fire time; token 2 fires.
        assert_eq!(sim.actor(NodeAddr(0)).last_timer, Some(TimerToken(2)));
        assert_eq!(sim.stats().cancelled_timers(), 1);
    }

    #[test]
    fn rearm_after_cancel_fires() {
        // set, cancel, re-set in a single callback: only the re-arm fires.
        let mut sim = two_node_sim();
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), TimerToken(7));
            ctx.cancel_timer(TimerToken(7));
            ctx.set_timer(SimDuration::from_millis(30), TimerToken(7));
        });
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(sim.actor(NodeAddr(0)).last_timer, None);
        assert_eq!(sim.stats().cancelled_timers(), 1);
        sim.run_until(SimTime::from_millis(40));
        assert_eq!(sim.actor(NodeAddr(0)).last_timer, Some(TimerToken(7)));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = two_node_sim();
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn cross_site_traffic_is_accounted() {
        let mut sim = Simulation::new(Topology::aws_ec2_8_sites(1), 2, |_| PingPong::default());
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(4), Msg::Ping(0)); // Virginia -> Singapore
        });
        sim.run_until_idle();
        assert_eq!(sim.stats().cross_site_sent(), 2); // ping + pong
    }

    #[test]
    fn on_start_runs_once_for_every_actor() {
        struct Starter {
            started: bool,
        }
        #[derive(Debug)]
        struct Nothing;
        impl MessageSize for Nothing {}
        impl Actor for Starter {
            type Msg = Nothing;
            fn on_start(&mut self, _ctx: &mut Context<'_, Nothing>) {
                assert!(!self.started, "on_start ran twice");
                self.started = true;
            }
            fn on_message(&mut self, _: &mut Context<'_, Nothing>, _: NodeAddr, _: Nothing) {}
        }
        let mut sim = Simulation::new(Topology::single_site(5, 0.1), 0, |_| Starter {
            started: false,
        });
        sim.run_until_idle();
        sim.run_until_idle();
        assert!(sim.actors().all(|(_, a)| a.started));
    }

    #[test]
    fn events_per_sec_is_positive_after_running() {
        let mut sim = two_node_sim();
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(1), Msg::Ping(0));
        });
        sim.run_until_idle();
        assert!(sim.stats().events() > 0);
        assert!(sim.events_per_sec() > 0.0);
        assert!(sim.wall_time() > Duration::ZERO);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::topology::Topology;

    #[derive(Debug)]
    struct Echo;
    impl MessageSize for Echo {}
    struct Node;
    impl Actor for Node {
        type Msg = Echo;
        fn on_message(&mut self, ctx: &mut Context<'_, Echo>, from: NodeAddr, _m: Echo) {
            if ctx.self_addr() == NodeAddr(1) {
                ctx.send(from, Echo);
            }
        }
    }

    #[test]
    fn trace_records_deliveries_in_time_order() {
        let mut sim = Simulation::new(Topology::single_site(2, 1.0), 3, |_| Node);
        sim.enable_trace(16);
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(1), Echo);
            ctx.set_timer(SimDuration::from_millis(50), TimerToken(9));
        });
        sim.run_until_idle();
        let trace = sim.trace();
        assert_eq!(trace.len(), 3, "{trace:?}");
        assert!(matches!(
            trace[0],
            TraceEvent::Deliver {
                to: NodeAddr(1),
                ..
            }
        ));
        assert!(matches!(
            trace[1],
            TraceEvent::Deliver {
                to: NodeAddr(0),
                ..
            }
        ));
        assert!(matches!(
            trace[2],
            TraceEvent::Timer {
                token: TimerToken(9),
                ..
            }
        ));
        // Monotone timestamps.
        let times: Vec<SimTime> = trace
            .iter()
            .map(|e| match e {
                TraceEvent::Deliver { at, .. } | TraceEvent::Timer { at, .. } => *at,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trace_capacity_is_respected() {
        let mut sim = Simulation::new(Topology::single_site(2, 1.0), 4, |_| Node);
        sim.enable_trace(1);
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(1), Echo);
        });
        sim.run_until_idle();
        assert_eq!(sim.trace().len(), 1);
    }

    #[test]
    fn trace_off_by_default() {
        let sim = Simulation::new(Topology::single_site(2, 1.0), 5, |_| Node);
        assert!(sim.trace().is_empty());
    }
}
