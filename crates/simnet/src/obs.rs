//! Cross-layer observability plane: a structured event trace plus a
//! per-node and global metrics registry.
//!
//! The plane is deliberately *passive*: a [`Recorder`] handle is cloned into
//! every layer that wants to emit events (the simulation engine, Pastry
//! routing, Scribe tree maintenance, the RBAY query lifecycle). A disabled
//! recorder holds no allocation at all — every hook is a single `Option`
//! branch, and event payload construction is deferred behind a closure so a
//! disabled run never formats, hashes, or clones anything. This is what
//! keeps the hot path (fig. 8a criterion runs) within noise of an
//! uninstrumented build.
//!
//! Topic and route keys are carried as raw `u128` values rather than the
//! `pastry`/`scribe` newtypes so that `simnet` (the bottom of the crate
//! stack) can own the event type without a dependency inversion.

use crate::time::SimTime;
use crate::topology::NodeAddr;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Number of buckets in the hop-count histogram. Hop counts at or above
/// `HOP_BUCKETS - 1` land in the last (overflow) bucket.
pub const HOP_BUCKETS: usize = 16;

/// Hard ceiling on the event-buffer capacity, mirroring the engine trace cap.
const MAX_EVENT_CAP: usize = 1 << 20;

/// One structured observability event, stamped with the simulation time at
/// which the emitting dispatch ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEvent {
    /// A Pastry node forwarded a routed message one hop closer to `key`.
    RouteForward {
        /// Simulation time of the forwarding dispatch.
        at: SimTime,
        /// The node that forwarded.
        node: NodeAddr,
        /// Raw 128-bit route key.
        key: u128,
        /// Hop count so far (before this forward).
        hops: u16,
    },
    /// A routed message reached the numerically-closest node and was
    /// delivered to the application layer.
    RouteDeliver {
        /// Simulation time of delivery.
        at: SimTime,
        /// The delivering (root-for-key) node.
        node: NodeAddr,
        /// Raw 128-bit route key.
        key: u128,
        /// Total overlay hops taken.
        hops: u16,
    },
    /// A node adopted `child` into its children set for `topic`.
    TreeGraft {
        /// Simulation time of the graft.
        at: SimTime,
        /// The adopting parent.
        parent: NodeAddr,
        /// The new child.
        child: NodeAddr,
        /// Raw topic key.
        topic: u128,
    },
    /// A node's parent pointer for `topic` changed (initial attach or
    /// re-parent).
    TreeParent {
        /// Simulation time of the change.
        at: SimTime,
        /// The node whose parent changed.
        node: NodeAddr,
        /// Raw topic key.
        topic: u128,
        /// Previous parent, if any.
        old: Option<NodeAddr>,
        /// New parent.
        new: NodeAddr,
    },
    /// A parent removed `child` from its children set for `topic`.
    TreeLeave {
        /// Simulation time of the removal.
        at: SimTime,
        /// The parent that dropped the child.
        parent: NodeAddr,
        /// The departing child.
        child: NodeAddr,
        /// Raw topic key.
        topic: u128,
    },
    /// A node pushed an aggregate update for `topic` to its parent.
    AggSend {
        /// Simulation time of the send.
        at: SimTime,
        /// The child pushing the update.
        from: NodeAddr,
        /// The parent it was addressed to.
        to: NodeAddr,
        /// Raw topic key.
        topic: u128,
    },
    /// A node rejected an aggregate update from a sender it does not list
    /// as a child (the `NotChild` NACK was sent back).
    NotChild {
        /// Simulation time of the rejection.
        at: SimTime,
        /// The rejecting (would-be parent) node.
        node: NodeAddr,
        /// The orphaned sender that was NACKed.
        orphan: NodeAddr,
        /// Raw topic key.
        topic: u128,
    },
    /// A failure detector sent a heartbeat ping.
    HeartbeatSend {
        /// Simulation time of the send.
        at: SimTime,
        /// The pinging node.
        from: NodeAddr,
        /// The pinged peer.
        to: NodeAddr,
    },
    /// A heartbeat ping went unanswered past the timeout and the peer was
    /// declared failed.
    HeartbeatExpire {
        /// Simulation time of the declaration.
        at: SimTime,
        /// The node that declared the failure.
        detector: NodeAddr,
        /// The peer declared failed.
        peer: NodeAddr,
    },
    /// A previously-suspected peer proved itself alive again and was
    /// un-suspected.
    Unsuspect {
        /// Simulation time of the clearing.
        at: SimTime,
        /// The node clearing the suspicion.
        node: NodeAddr,
        /// The peer restored to good standing.
        peer: NodeAddr,
    },
    /// A query attempt (initial issue or retry) fanned out probes.
    QueryAttempt {
        /// Simulation time of the attempt.
        at: SimTime,
        /// The issuing node.
        node: NodeAddr,
        /// Low 32 bits of the query id.
        seq: u32,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A query completed (satisfied or exhausted).
    QueryDone {
        /// Simulation time of completion.
        at: SimTime,
        /// The issuing node.
        node: NodeAddr,
        /// Low 32 bits of the query id.
        seq: u32,
        /// Whether the result met the requested `k`.
        satisfied: bool,
    },
    /// A durable-store WAL append (a state mutation hit disk before its
    /// ack).
    StoreAppend {
        /// Simulation time of the append.
        at: SimTime,
        /// The appending node.
        node: NodeAddr,
        /// Record kind (`attr_put`, `sub_add`, `commit`, …).
        kind: &'static str,
        /// Live-WAL size after the append, in records.
        wal_records: u64,
    },
    /// A durable-store snapshot compaction: the WAL was folded into a new
    /// snapshot generation.
    StoreSnapshot {
        /// Simulation time of the compaction.
        at: SimTime,
        /// The compacting node.
        node: NodeAddr,
        /// Snapshot generations taken so far.
        snapshots: u64,
    },
    /// A restarted node replayed its snapshot + WAL on boot.
    StoreReplay {
        /// Simulation time of the restore.
        at: SimTime,
        /// The restored node.
        node: NodeAddr,
        /// WAL records replayed.
        records: u64,
        /// Wall-clock microseconds the replay took.
        micros: u64,
    },
    /// A recovered handler source failed re-lint under the current policy
    /// on restore and was quarantined instead of re-installed.
    RestoreRelintReject {
        /// Simulation time of the rejection.
        at: SimTime,
        /// The restoring node.
        node: NodeAddr,
    },
}

impl ObsEvent {
    /// Simulation time the event was recorded at.
    pub fn at(&self) -> SimTime {
        match self {
            ObsEvent::RouteForward { at, .. }
            | ObsEvent::RouteDeliver { at, .. }
            | ObsEvent::TreeGraft { at, .. }
            | ObsEvent::TreeParent { at, .. }
            | ObsEvent::TreeLeave { at, .. }
            | ObsEvent::AggSend { at, .. }
            | ObsEvent::NotChild { at, .. }
            | ObsEvent::HeartbeatSend { at, .. }
            | ObsEvent::HeartbeatExpire { at, .. }
            | ObsEvent::Unsuspect { at, .. }
            | ObsEvent::QueryAttempt { at, .. }
            | ObsEvent::QueryDone { at, .. }
            | ObsEvent::StoreAppend { at, .. }
            | ObsEvent::StoreSnapshot { at, .. }
            | ObsEvent::StoreReplay { at, .. }
            | ObsEvent::RestoreRelintReject { at, .. } => *at,
        }
    }
}

#[derive(Debug, Default)]
struct ObsCore {
    now: SimTime,
    cap: usize,
    dropped: u64,
    events: Vec<ObsEvent>,
    counts: BTreeMap<&'static str, u64>,
    node_counts: BTreeMap<(NodeAddr, &'static str), u64>,
    hop_hist: [u64; HOP_BUCKETS],
}

/// A cheap, cloneable handle onto a shared observability buffer.
///
/// All clones of an enabled recorder share one buffer; a federation
/// installs clones of the same recorder into its simulation engine and
/// every per-node layer. The default (disabled) recorder carries `None`
/// and every recording method returns after a single branch.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    core: Option<Rc<RefCell<ObsCore>>>,
}

impl Recorder {
    /// A disabled recorder: all hooks are no-ops. Same as `default()`.
    pub fn disabled() -> Self {
        Recorder { core: None }
    }

    /// An enabled recorder whose event buffer holds at most `capacity`
    /// events (counters are unaffected by the cap; overflowing events are
    /// counted as dropped).
    pub fn enabled(capacity: usize) -> Self {
        let cap = capacity.min(MAX_EVENT_CAP);
        Recorder {
            core: Some(Rc::new(RefCell::new(ObsCore {
                cap,
                events: Vec::with_capacity(cap.min(1 << 12)),
                ..ObsCore::default()
            }))),
        }
    }

    /// Whether this recorder actually records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Advance the recorder's notion of simulation time. Called by the
    /// engine at every dispatch so events emitted from within actor
    /// callbacks are stamped correctly.
    #[inline]
    pub fn set_now(&self, now: SimTime) {
        if let Some(core) = &self.core {
            core.borrow_mut().now = now;
        }
    }

    /// Record an event. The closure receives the current simulation time
    /// and is only invoked when the recorder is enabled, so disabled runs
    /// never construct the event payload.
    #[inline]
    pub fn record_with<F: FnOnce(SimTime) -> ObsEvent>(&self, f: F) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            let now = core.now;
            if core.events.len() < core.cap {
                let ev = f(now);
                core.events.push(ev);
            } else {
                core.dropped += 1;
            }
        }
    }

    /// Bump the global and per-node counters for `kind`. `kind` must be a
    /// static string so disabled runs pay nothing and enabled runs avoid
    /// allocation.
    #[inline]
    pub fn count(&self, node: NodeAddr, kind: &'static str) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            *core.counts.entry(kind).or_insert(0) += 1;
            *core.node_counts.entry((node, kind)).or_insert(0) += 1;
        }
    }

    /// Bump the global and per-node counters for `kind` by `n` in one
    /// call (bulk contributions like a WAL replay's record count).
    #[inline]
    pub fn count_n(&self, node: NodeAddr, kind: &'static str, n: u64) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            *core.counts.entry(kind).or_insert(0) += n;
            *core.node_counts.entry((node, kind)).or_insert(0) += n;
        }
    }

    /// Add one observation to the hop-count histogram.
    #[inline]
    pub fn observe_hops(&self, hops: u16) {
        if let Some(core) = &self.core {
            let bucket = (hops as usize).min(HOP_BUCKETS - 1);
            core.borrow_mut().hop_hist[bucket] += 1;
        }
    }

    /// Clone out the recorded event buffer (empty when disabled).
    pub fn events(&self) -> Vec<ObsEvent> {
        match &self.core {
            Some(core) => core.borrow().events.clone(),
            None => Vec::new(),
        }
    }

    /// Global count for `kind` (zero when disabled or never bumped).
    pub fn global_count(&self, kind: &str) -> u64 {
        match &self.core {
            Some(core) => core.borrow().counts.get(kind).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Per-node count for `kind` (zero when disabled or never bumped).
    pub fn node_count(&self, node: NodeAddr, kind: &'static str) -> u64 {
        match &self.core {
            Some(core) => core
                .borrow()
                .node_counts
                .get(&(node, kind))
                .copied()
                .unwrap_or(0),
            None => 0,
        }
    }

    /// Snapshot the aggregate metrics (counters, hop histogram, buffer
    /// occupancy). Returns the default (all-zero) snapshot when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.core {
            Some(core) => {
                let core = core.borrow();
                MetricsSnapshot {
                    events_recorded: core.events.len() as u64,
                    events_dropped: core.dropped,
                    counts: core
                        .counts
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), *v))
                        .collect(),
                    hop_hist: core.hop_hist,
                }
            }
            None => MetricsSnapshot::default(),
        }
    }
}

/// A point-in-time copy of the recorder's aggregate metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Events currently held in the buffer.
    pub events_recorded: u64,
    /// Events discarded because the buffer was at capacity.
    pub events_dropped: u64,
    /// Global counters keyed by event kind.
    pub counts: BTreeMap<String, u64>,
    /// Histogram of delivered-route hop counts; the last bucket is
    /// overflow.
    pub hop_hist: [u64; HOP_BUCKETS],
}

impl MetricsSnapshot {
    /// Global counter value for `kind` (zero when absent).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Mean hops over all histogram observations; `NaN` when empty.
    pub fn mean_hops(&self) -> f64 {
        let total: u64 = self.hop_hist.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let weighted: u64 = self
            .hop_hist
            .iter()
            .enumerate()
            .map(|(i, n)| i as u64 * n)
            .sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.set_now(SimTime::ZERO + SimDuration::from_millis(5));
        r.record_with(|at| ObsEvent::HeartbeatSend {
            at,
            from: NodeAddr(0),
            to: NodeAddr(1),
        });
        r.count(NodeAddr(0), "x");
        r.observe_hops(3);
        assert!(!r.is_enabled());
        assert!(r.events().is_empty());
        assert_eq!(r.global_count("x"), 0);
        assert_eq!(r.snapshot().events_recorded, 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let r = Recorder::enabled(64);
        let r2 = r.clone();
        r.set_now(SimTime::ZERO + SimDuration::from_millis(7));
        r2.record_with(|at| ObsEvent::HeartbeatSend {
            at,
            from: NodeAddr(1),
            to: NodeAddr(2),
        });
        let evs = r.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at(), SimTime::ZERO + SimDuration::from_millis(7));
    }

    #[test]
    fn event_buffer_cap_is_respected() {
        let r = Recorder::enabled(2);
        for _ in 0..5 {
            r.record_with(|at| ObsEvent::HeartbeatSend {
                at,
                from: NodeAddr(0),
                to: NodeAddr(1),
            });
        }
        let snap = r.snapshot();
        assert_eq!(snap.events_recorded, 2);
        assert_eq!(snap.events_dropped, 3);
    }

    #[test]
    fn counters_and_hops_aggregate() {
        let r = Recorder::enabled(8);
        r.count(NodeAddr(3), "route_forward");
        r.count(NodeAddr(3), "route_forward");
        r.count(NodeAddr(4), "route_forward");
        r.observe_hops(1);
        r.observe_hops(3);
        r.observe_hops(200); // overflow bucket
        let snap = r.snapshot();
        assert_eq!(snap.count("route_forward"), 3);
        assert_eq!(r.node_count(NodeAddr(3), "route_forward"), 2);
        assert_eq!(snap.hop_hist[HOP_BUCKETS - 1], 1);
        assert!((snap.mean_hops() - (1.0 + 3.0 + 15.0) / 3.0).abs() < 1e-9);
    }
}
