//! Virtual time for the discrete-event simulator.
//!
//! All simulation timestamps are [`SimTime`] values (microseconds since the
//! start of the run) and all intervals are [`SimDuration`] values. Both are
//! thin `u64` newtypes so they are `Copy`, totally ordered, and cheap to put
//! inside event-queue keys.

use core::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in microseconds.
///
/// ```
/// use simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use simnet::SimDuration;
/// assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length interval.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional milliseconds (rounds to the nearest
    /// microsecond; negative inputs clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the duration by an integer factor.
    pub const fn saturating_mul(self, rhs: u64) -> Self {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1_000.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn fractional_millis() {
        assert_eq!(SimDuration::from_millis_f64(0.5).as_micros(), 500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.250ms");
    }
}
