//! Exploration schedulers: systematic and randomized drivers for the
//! engine's exploration mode ([`crate::Simulation::enable_exploration`]).
//!
//! The engine exposes the co-enabled ready set each step; the schedulers
//! here decide what happens:
//!
//! * [`ExploreScheduler`] — iterative-deepening DFS over every choice at
//!   the first `depth` steps of a run, with a partial-order-reduction
//!   *sleep set* (Godefroid): after a branch rooted at choice `a` is
//!   exhausted, `a` is put to sleep for the sibling branches and stays
//!   asleep until some dependent (node-footprint-intersecting) choice
//!   fires, so of two orders of commuting events only one is explored.
//! * [`RandomScheduler`] — seeded random walk over the same choice space,
//!   the fallback for configurations too large to exhaust.
//! * [`ReplayScheduler`] — deterministically re-executes a recorded
//!   decision trace (a counterexample schedule), taking the default
//!   earliest-event order everywhere the trace is silent.
//!
//! Fault injection is part of the choice space: subject to a
//! [`FaultOpts`] budget, a scheduler may *drop* any in-flight delivery or
//! *crash* a node, so loss/churn interleavings are explored alongside
//! reorderings rather than bolted on.

use crate::engine::{Choice, EventDesc, Scheduler};
use crate::time::SimTime;
use crate::topology::NodeAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The node footprint of a choice: the (at most two) nodes it touches.
/// Two choices with disjoint footprints commute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint(pub NodeAddr, pub NodeAddr);

impl Footprint {
    /// Footprint of a pending event.
    pub fn of(desc: &EventDesc) -> Footprint {
        let (a, b) = desc.kind.footprint();
        Footprint(a, b)
    }

    /// Whether the two footprints share a node (the choices are
    /// *dependent* — their order can matter).
    pub fn intersects(&self, other: &Footprint) -> bool {
        self.0 == other.0 || self.0 == other.1 || self.1 == other.0 || self.1 == other.1
    }
}

/// Budget for fault choices folded into the explored space.
#[derive(Debug, Clone)]
pub struct FaultOpts {
    /// Maximum deliveries dropped per run.
    pub max_drops: usize,
    /// Maximum nodes crashed per run.
    pub max_crashes: usize,
    /// Nodes eligible to crash (keep query origins and invariant
    /// witnesses out of this list).
    pub crashable: Vec<NodeAddr>,
    /// Faults are only offered while the earliest ready event is at or
    /// before this time. Bounding the fault window leaves the tail of the
    /// run for repair, so quiescence invariants (stale-child expiry,
    /// gossip convergence) are meaningful.
    pub horizon: SimTime,
}

impl Default for FaultOpts {
    fn default() -> Self {
        FaultOpts {
            max_drops: 0,
            max_crashes: 0,
            crashable: Vec::new(),
            horizon: SimTime::ZERO,
        }
    }
}

/// Enumerates the full choice list for one step, in canonical order:
/// fires by `(at, seq)` first (so index 0 is the default), then drops,
/// then crashes. `drops_used`/`crashed` are the per-run fault tallies.
fn enumerate_choices(
    ready: &[EventDesc],
    faults: &FaultOpts,
    drops_used: usize,
    crashed: &[NodeAddr],
) -> Vec<(Choice, Footprint)> {
    let mut out: Vec<(Choice, Footprint)> = ready
        .iter()
        .map(|e| (Choice::Fire(e.seq), Footprint::of(e)))
        .collect();
    let faults_open = ready.first().is_some_and(|e| e.at <= faults.horizon);
    if faults_open && drops_used < faults.max_drops {
        for e in ready.iter().filter(|e| e.kind.is_deliver()) {
            out.push((Choice::Drop(e.seq), Footprint::of(e)));
        }
    }
    if faults_open && crashed.len() < faults.max_crashes {
        for n in &faults.crashable {
            if !crashed.contains(n) {
                out.push((Choice::Crash(*n), Footprint(*n, *n)));
            }
        }
    }
    out
}

/// One DFS choice point: the (sleep-pruned) candidate list, the branch
/// currently being explored, and the sleep set inherited on entry.
struct ChoicePoint {
    candidates: Vec<(Choice, Footprint)>,
    cursor: usize,
    sleep: Vec<(Choice, Footprint)>,
}

/// Iterative-deepening DFS over bounded interleavings with sleep-set
/// partial-order reduction.
///
/// Drive it run by run: call [`ExploreScheduler::begin_run`], execute the
/// run with this as the [`Scheduler`], then [`ExploreScheduler::end_run`]
/// to backtrack to the next unexplored branch (`false` once the bounded
/// space is exhausted). Choices are branched only at the first `depth`
/// steps of a run; beyond the bound the default earliest-event order
/// applies. When a depth level is exhausted the bound doubles, up to
/// `max_depth` (classic iterative deepening — shallow interleavings are
/// re-visited, so deduplicate runs by their decision signature).
pub struct ExploreScheduler {
    faults: FaultOpts,
    stack: Vec<ChoicePoint>,
    depth: usize,
    max_depth: usize,
    exhausted: bool,
    runs: u64,
    // Per-run fault tallies, reset by `begin_run`.
    drops_used: usize,
    crashed: Vec<NodeAddr>,
}

impl ExploreScheduler {
    /// A new explorer branching at the first `initial_depth` steps,
    /// deepening up to `max_depth`.
    pub fn new(initial_depth: usize, max_depth: usize, faults: FaultOpts) -> Self {
        let initial = initial_depth.max(1);
        ExploreScheduler {
            faults,
            stack: Vec::new(),
            depth: initial.min(max_depth.max(1)),
            max_depth: max_depth.max(1),
            exhausted: false,
            runs: 0,
            drops_used: 0,
            crashed: Vec::new(),
        }
    }

    /// Resets per-run fault tallies. Call before every run.
    pub fn begin_run(&mut self) {
        self.drops_used = 0;
        self.crashed.clear();
    }

    /// Backtracks to the next unexplored branch. Returns false when the
    /// whole bounded space (at `max_depth`) has been explored.
    pub fn end_run(&mut self) -> bool {
        self.runs += 1;
        loop {
            match self.stack.last_mut() {
                None => {
                    if self.depth >= self.max_depth {
                        self.exhausted = true;
                        return false;
                    }
                    self.depth = self.depth.saturating_mul(2).min(self.max_depth);
                    return true;
                }
                Some(top) => {
                    top.cursor += 1;
                    if top.cursor < top.candidates.len() {
                        return true;
                    }
                    self.stack.pop();
                }
            }
        }
    }

    /// Completed runs so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Whether the bounded space has been fully explored.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The current branch-depth bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn bookkeep(&mut self, c: Choice) {
        match c {
            Choice::Drop(_) => self.drops_used += 1,
            Choice::Crash(n) => self.crashed.push(n),
            Choice::Fire(_) => {}
        }
    }
}

impl Scheduler for ExploreScheduler {
    fn choose(&mut self, step: usize, ready: &[EventDesc]) -> Option<Choice> {
        if ready.is_empty() {
            return None;
        }
        // Replaying the decision prefix of the current branch.
        if step < self.stack.len() {
            let cp = &self.stack[step];
            let (c, _) = cp.candidates[cp.cursor];
            self.bookkeep(c);
            return Some(c);
        }
        // A new choice point, while within the branch-depth bound.
        if step == self.stack.len() && self.stack.len() < self.depth {
            // Sleep set on entry: the parent's sleep set plus its already
            // explored siblings, minus everything dependent on the
            // parent's chosen action (dependent choices wake up).
            let sleep: Vec<(Choice, Footprint)> = match self.stack.last() {
                None => Vec::new(),
                Some(p) => {
                    let (_, chosen_fp) = p.candidates[p.cursor];
                    p.sleep
                        .iter()
                        .chain(p.candidates[..p.cursor].iter())
                        .filter(|(_, f)| !f.intersects(&chosen_fp))
                        .cloned()
                        .collect()
                }
            };
            let all = enumerate_choices(ready, &self.faults, self.drops_used, &self.crashed);
            let candidates: Vec<(Choice, Footprint)> = all
                .into_iter()
                .filter(|(c, _)| !sleep.iter().any(|(s, _)| s == c))
                .collect();
            let Some(&(first, _)) = candidates.first() else {
                // Everything enabled is asleep: this state is covered by a
                // sibling branch. Prune the run.
                return None;
            };
            self.stack.push(ChoicePoint {
                candidates,
                cursor: 0,
                sleep,
            });
            self.bookkeep(first);
            return Some(first);
        }
        // Beyond the bound: default order.
        Some(Choice::Fire(ready[0].seq))
    }
}

/// Seeded random walk over the same choice space — the fallback for
/// configurations too large to exhaust. Each step fires a uniformly
/// random ready event, or (with probability `p_fault`, budget allowing)
/// applies a random fault.
pub struct RandomScheduler {
    rng: SmallRng,
    faults: FaultOpts,
    /// Per-step probability of choosing a fault over a fire, when the
    /// budget allows one.
    pub p_fault: f64,
    drops_used: usize,
    crashed: Vec<NodeAddr>,
}

impl RandomScheduler {
    /// A new random walk (one per run; derive the seed from the run
    /// index for reproducibility).
    pub fn new(seed: u64, faults: FaultOpts, p_fault: f64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
            faults,
            p_fault,
            drops_used: 0,
            crashed: Vec::new(),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, _step: usize, ready: &[EventDesc]) -> Option<Choice> {
        if ready.is_empty() {
            return None;
        }
        let all = enumerate_choices(ready, &self.faults, self.drops_used, &self.crashed);
        let n_fires = ready.len();
        let c = if all.len() > n_fires && self.rng.gen_bool(self.p_fault) {
            all[self.rng.gen_range(n_fires..all.len())].0
        } else {
            all[self.rng.gen_range(0..n_fires)].0
        };
        match c {
            Choice::Drop(_) => self.drops_used += 1,
            Choice::Crash(n) => self.crashed.push(n),
            Choice::Fire(_) => {}
        }
        Some(c)
    }
}

/// Replays a recorded decision trace: at each listed step the recorded
/// choice applies (if still applicable — shrunk schedules may reference
/// events that no longer exist, which silently fall back to the
/// default); every other step takes the default earliest-event order.
pub struct ReplayScheduler {
    directives: BTreeMap<usize, Choice>,
}

impl ReplayScheduler {
    /// A replayer for the given `(step, choice)` directives.
    pub fn new(directives: impl IntoIterator<Item = (usize, Choice)>) -> Self {
        ReplayScheduler {
            directives: directives.into_iter().collect(),
        }
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, step: usize, ready: &[EventDesc]) -> Option<Choice> {
        if ready.is_empty() {
            return None;
        }
        if let Some(&c) = self.directives.get(&step) {
            let applicable = match c {
                Choice::Fire(s) => ready.iter().any(|e| e.seq == s),
                Choice::Drop(s) => ready.iter().any(|e| e.seq == s && e.kind.is_deliver()),
                Choice::Crash(_) => true,
            };
            if applicable {
                return Some(c);
            }
        }
        Some(Choice::Fire(ready[0].seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Actor, Context, EarliestFirst, MessageSize, Simulation};
    use crate::time::{SimDuration, SimTime};
    use crate::topology::Topology;
    use std::collections::BTreeSet;

    #[derive(Debug)]
    struct Token(u32);
    impl MessageSize for Token {}

    /// Records the order in which its messages arrive.
    #[derive(Default)]
    struct Sink {
        seen: Vec<u32>,
    }
    impl Actor for Sink {
        type Msg = Token;
        fn on_message(&mut self, _ctx: &mut Context<'_, Token>, _from: NodeAddr, msg: Token) {
            self.seen.push(msg.0);
        }
    }

    /// Two concurrent sends to the SAME receiver plus one to a disjoint
    /// node: dependent events branch, the independent one is slept.
    fn three_message_sim(seed: u64) -> Simulation<Sink> {
        let mut sim = Simulation::new(Topology::single_site(4, 0.0), seed, |_| Sink::default());
        sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
            ctx.send(NodeAddr(2), Token(10));
            ctx.send(NodeAddr(3), Token(30));
        });
        sim.schedule_call(SimTime::ZERO, NodeAddr(1), |_, ctx| {
            ctx.send(NodeAddr(2), Token(11));
        });
        sim
    }

    fn run_signature(sim: &Simulation<Sink>) -> Vec<Vec<u32>> {
        (0..4u32)
            .map(|i| sim.actor(NodeAddr(i)).seen.clone())
            .collect()
    }

    #[test]
    fn explored_default_order_matches_normal_run() {
        let mut normal = three_message_sim(7);
        normal.enable_trace(64);
        normal.run_until_idle();

        let mut explored = three_message_sim(7);
        explored.enable_trace(64);
        explored.enable_exploration();
        let mut sched = EarliestFirst;
        explored.run_explored(&mut sched, SimDuration::from_millis(1), 1_000);

        assert_eq!(normal.trace(), explored.trace());
        assert_eq!(run_signature(&normal), run_signature(&explored));
    }

    #[test]
    fn exhaustive_exploration_finds_both_orders_of_dependent_events() {
        // Tokens 10 and 11 race to node 2; token 30 goes to node 3 and
        // commutes with both. Exhaustive exploration must surface both
        // arrival orders at node 2; sleep sets should spare us from also
        // permuting the independent token 30 against each.
        let mut sched = ExploreScheduler::new(8, 8, FaultOpts::default());
        let mut orders: BTreeSet<Vec<u32>> = BTreeSet::new();
        let mut runs = 0u64;
        loop {
            sched.begin_run();
            let mut sim = three_message_sim(7);
            sim.enable_exploration();
            sim.run_explored(&mut sched, SimDuration::from_millis(1), 1_000);
            if sim.explore_pending() == 0 {
                orders.insert(sim.actor(NodeAddr(2)).seen.clone());
                // Every complete run delivers all three tokens.
                assert_eq!(sim.actor(NodeAddr(3)).seen, vec![30]);
            }
            runs += 1;
            assert!(runs < 1_000, "exploration did not terminate");
            if !sched.end_run() {
                break;
            }
        }
        assert!(sched.exhausted());
        assert_eq!(
            orders,
            BTreeSet::from([vec![10, 11], vec![11, 10]]),
            "both orders of the racing pair, after {runs} runs"
        );
        // Without reduction the 3 concurrent deliveries (plus the two
        // initial calls) would give 3! = 6 complete interleavings at the
        // delivery layer alone; sleep sets must prune some of the space.
        assert!(
            runs < 30,
            "sleep sets should bound the run count, got {runs}"
        );
    }

    #[test]
    fn drop_faults_are_explored_within_budget() {
        let faults = FaultOpts {
            max_drops: 1,
            horizon: SimTime::from_secs(1),
            ..FaultOpts::default()
        };
        let mut sched = ExploreScheduler::new(8, 8, faults);
        let mut saw_loss = false;
        let mut runs = 0u64;
        loop {
            sched.begin_run();
            let mut sim = three_message_sim(7);
            sim.enable_exploration();
            sim.run_explored(&mut sched, SimDuration::from_millis(1), 1_000);
            if sim.explore_pending() == 0 && sim.actor(NodeAddr(2)).seen.len() < 2 {
                saw_loss = true;
            }
            runs += 1;
            assert!(runs < 5_000, "exploration did not terminate");
            if !sched.end_run() {
                break;
            }
        }
        assert!(saw_loss, "some run must drop a delivery to node 2");
    }

    #[test]
    fn crash_choice_discards_pending_traffic() {
        let faults = FaultOpts {
            max_crashes: 1,
            crashable: vec![NodeAddr(2)],
            horizon: SimTime::from_secs(1),
            ..FaultOpts::default()
        };
        let mut sim = three_message_sim(3);
        sim.enable_exploration();
        // Force the crash immediately: node 2 never sees its tokens.
        let ready = sim.explore_ready(SimDuration::from_millis(1));
        assert!(!ready.is_empty());
        let all = enumerate_choices(&ready, &faults, 0, &[]);
        let crash = all
            .iter()
            .find(|(c, _)| matches!(c, Choice::Crash(_)))
            .expect("crash offered");
        sim.explore_apply(crash.0);
        sim.run_until_idle();
        assert!(sim.actor(NodeAddr(2)).seen.is_empty());
        assert_eq!(sim.actor(NodeAddr(3)).seen, vec![30]);
    }

    #[test]
    fn replay_reproduces_a_recorded_divergence() {
        // Find a run where node 2 sees [11, 10] (non-default order), then
        // replay its divergent directives and get the same outcome.
        let mut sched = ExploreScheduler::new(8, 8, FaultOpts::default());
        let recorded = loop {
            sched.begin_run();
            let mut sim = three_message_sim(7);
            sim.enable_exploration();
            let mut decisions = Vec::new();
            let mut step = 0usize;
            loop {
                let ready = sim.explore_ready(SimDuration::from_millis(1));
                if ready.is_empty() {
                    break;
                }
                let Some(c) = sched.choose(step, &ready) else {
                    break;
                };
                if c != Choice::Fire(ready[0].seq) {
                    decisions.push((step, c));
                }
                sim.explore_apply(c);
                step += 1;
            }
            if sim.explore_pending() == 0 && sim.actor(NodeAddr(2)).seen == vec![11, 10] {
                break decisions;
            }
            assert!(sched.end_run(), "target interleaving exists");
        };
        assert!(
            !recorded.is_empty(),
            "non-default order requires divergence"
        );

        let mut replayer = ReplayScheduler::new(recorded);
        let mut sim = three_message_sim(7);
        sim.enable_exploration();
        sim.run_explored(&mut replayer, SimDuration::from_millis(1), 1_000);
        assert_eq!(sim.actor(NodeAddr(2)).seen, vec![11, 10]);
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sched = RandomScheduler::new(
                seed,
                FaultOpts {
                    max_drops: 1,
                    horizon: SimTime::from_secs(1),
                    ..FaultOpts::default()
                },
                0.2,
            );
            let mut sim = three_message_sim(9);
            sim.enable_exploration();
            sim.run_explored(&mut sched, SimDuration::from_millis(1), 1_000);
            run_signature(&sim)
        };
        assert_eq!(run(5), run(5));
    }
}
