//! Network topology: sites, nodes, and pairwise latency.
//!
//! A [`Topology`] assigns every node to a *site* (a datacenter) and derives
//! one-way message latencies from a site-to-site round-trip-time matrix plus
//! per-site jitter. The preset [`Topology::aws_ec2_8_sites`] reproduces the
//! eight-region Amazon EC2 deployment from Table II of the RBAY paper.

use crate::time::SimDuration;
use rand::Rng;

/// Identifies a site (datacenter) in the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u16);

/// Identifies a simulated node (a transport endpoint).
///
/// Addresses are dense indices assigned by [`Topology`] construction, which
/// makes them usable as `Vec` indices throughout the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// The dense index behind this address.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Static description of one site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Human-readable name, e.g. `"Virginia"`.
    pub name: String,
    /// Number of nodes hosted at this site.
    pub nodes: usize,
    /// Multiplier on latency jitter; `1.0` is a stable network. The RBAY
    /// evaluation observed fluctuating delivery latencies for the Asia and
    /// South-America sites (Fig. 11), which we model with factors > 1.
    pub instability: f64,
}

/// Sites, node placement, and the latency model.
#[derive(Debug, Clone)]
pub struct Topology {
    sites: Vec<SiteSpec>,
    /// Symmetric site-to-site RTT in milliseconds; `rtt_ms[i][i]` is the
    /// intra-site RTT.
    rtt_ms: Vec<Vec<f64>>,
    /// `node_site[node] == site` for every node address.
    node_site: Vec<SiteId>,
    /// Fraction of the mean one-way latency used as the jitter scale.
    jitter_frac: f64,
    /// Probability that any message is silently dropped in flight.
    loss_prob: f64,
}

impl Topology {
    /// Builds a topology from per-site specs and a symmetric RTT matrix
    /// (milliseconds). Node addresses are assigned densely, site by site.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with one row per site, or if any
    /// RTT is negative.
    pub fn new(sites: Vec<SiteSpec>, rtt_ms: Vec<Vec<f64>>) -> Self {
        assert_eq!(rtt_ms.len(), sites.len(), "one RTT row per site");
        for row in &rtt_ms {
            assert_eq!(row.len(), sites.len(), "RTT matrix must be square");
            assert!(row.iter().all(|&v| v >= 0.0), "RTTs must be non-negative");
        }
        let mut node_site = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            node_site.extend(std::iter::repeat_n(SiteId(i as u16), site.nodes));
        }
        Topology {
            sites,
            rtt_ms,
            node_site,
            jitter_frac: 0.05,
            loss_prob: 0.0,
        }
    }

    /// A single site of `nodes` nodes with the given intra-site RTT.
    pub fn single_site(nodes: usize, intra_rtt_ms: f64) -> Self {
        Topology::new(
            vec![SiteSpec {
                name: "local".to_owned(),
                nodes,
                instability: 1.0,
            }],
            vec![vec![intra_rtt_ms]],
        )
    }

    /// The eight-region Amazon EC2 deployment of the RBAY evaluation, with
    /// the measured round-trip latencies of Table II and `nodes_per_site`
    /// nodes in each region.
    ///
    /// Site order: Virginia, Oregon, California, Ireland, Singapore, Tokyo,
    /// Sydney, São Paulo.
    pub fn aws_ec2_8_sites(nodes_per_site: usize) -> Self {
        let names = [
            "Virginia",
            "Oregon",
            "California",
            "Ireland",
            "Singapore",
            "Tokyo",
            "Sydney",
            "SaoPaulo",
        ];
        // Paper Table II: the Asia-Pacific and South-America regions showed
        // unstable delivery latencies in Fig. 11; give them higher jitter.
        let instability = [1.0, 1.0, 1.0, 1.0, 3.0, 2.5, 2.5, 3.5];
        let sites = names
            .iter()
            .zip(instability)
            .map(|(name, inst)| SiteSpec {
                name: (*name).to_owned(),
                nodes: nodes_per_site,
                instability: inst,
            })
            .collect();
        Topology::new(sites, table2_rtt_matrix())
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total number of node addresses.
    pub fn node_count(&self) -> usize {
        self.node_site.len()
    }

    /// The spec for `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn site(&self, site: SiteId) -> &SiteSpec {
        &self.sites[site.0 as usize]
    }

    /// The site hosting `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn site_of(&self, node: NodeAddr) -> SiteId {
        self.node_site[node.index()]
    }

    /// All node addresses belonging to `site`.
    pub fn nodes_of_site(&self, site: SiteId) -> Vec<NodeAddr> {
        (0..self.node_count() as u32)
            .map(NodeAddr)
            .filter(|&n| self.site_of(n) == site)
            .collect()
    }

    /// The symmetric RTT between two sites, in milliseconds.
    pub fn rtt_ms(&self, a: SiteId, b: SiteId) -> f64 {
        let (i, j) = (a.0 as usize, b.0 as usize);
        if i <= j {
            self.rtt_ms[i][j]
        } else {
            self.rtt_ms[j][i]
        }
    }

    /// Sets the jitter scale as a fraction of the mean one-way latency.
    pub fn set_jitter_frac(&mut self, frac: f64) {
        assert!(frac >= 0.0, "jitter fraction must be non-negative");
        self.jitter_frac = frac;
    }

    /// Sets the probability that any message is lost in flight (fault
    /// injection; protocols must recover through timeouts and retries).
    pub fn set_loss_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss_prob = p;
    }

    /// The configured message-loss probability.
    pub fn loss_prob(&self) -> f64 {
        self.loss_prob
    }

    /// Samples the one-way latency for a message from `from` to `to`.
    ///
    /// Mean-preserving model: the expected one-way latency is exactly half
    /// the site-pair RTT (so measured RTTs reproduce Table II), with an
    /// exponential (heavy-ish-tailed) jitter component whose magnitude is
    /// scaled by the less stable endpoint's instability factor.
    pub fn sample_latency<R: Rng + ?Sized>(
        &self,
        from: NodeAddr,
        to: NodeAddr,
        rng: &mut R,
    ) -> SimDuration {
        let (sa, sb) = (self.site_of(from), self.site_of(to));
        let mean_ms = self.rtt_ms(sa, sb) / 2.0;
        let inst = self.site(sa).instability.max(self.site(sb).instability);
        // Jitter ~ Exp(mean j) shifted by -j so E[latency] == mean_ms;
        // the jitter scale is capped below the mean to keep latency > 0.
        let j = (self.jitter_frac * inst).min(0.8) * mean_ms;
        let u: f64 = rng.gen_range(1e-9..1.0);
        let jitter_ms = -(u.ln()) * j - j;
        SimDuration::from_millis_f64((mean_ms + jitter_ms).max(mean_ms * 0.2))
    }
}

/// The raw Table II RTT matrix (milliseconds), upper-triangular measurements
/// mirrored to a full symmetric matrix. Order: Virginia, Oregon, California,
/// Ireland, Singapore, Tokyo, Sydney, São Paulo.
pub fn table2_rtt_matrix() -> Vec<Vec<f64>> {
    let upper: [[f64; 8]; 8] = [
        [
            0.559, 60.018, 83.407, 87.407, 275.549, 191.601, 239.897, 123.966,
        ],
        [
            0.0, 0.576, 20.441, 166.223, 200.296, 133.825, 190.985, 205.493,
        ],
        [0.0, 0.0, 0.489, 163.944, 174.701, 132.695, 186.027, 195.109],
        [0.0, 0.0, 0.0, 0.513, 194.371, 274.962, 322.284, 325.274],
        [0.0, 0.0, 0.0, 0.0, 0.540, 92.850, 184.894, 396.856],
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.435, 127.156, 374.363],
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.565, 323.613],
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.436],
    ];
    let mut m = vec![vec![0.0; 8]; 8];
    for i in 0..8 {
        for j in 0..8 {
            m[i][j] = if i <= j { upper[i][j] } else { upper[j][i] };
        }
    }
    m
}

/// Names of the eight Table II sites, in matrix order.
pub const AWS8_SITE_NAMES: [&str; 8] = [
    "Virginia",
    "Oregon",
    "California",
    "Ireland",
    "Singapore",
    "Tokyo",
    "Sydney",
    "SaoPaulo",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dense_address_assignment() {
        let topo = Topology::aws_ec2_8_sites(20);
        assert_eq!(topo.node_count(), 160);
        assert_eq!(topo.site_count(), 8);
        assert_eq!(topo.site_of(NodeAddr(0)), SiteId(0));
        assert_eq!(topo.site_of(NodeAddr(19)), SiteId(0));
        assert_eq!(topo.site_of(NodeAddr(20)), SiteId(1));
        assert_eq!(topo.site_of(NodeAddr(159)), SiteId(7));
    }

    #[test]
    fn rtt_matrix_is_symmetric() {
        let topo = Topology::aws_ec2_8_sites(1);
        for i in 0..8u16 {
            for j in 0..8u16 {
                assert_eq!(
                    topo.rtt_ms(SiteId(i), SiteId(j)),
                    topo.rtt_ms(SiteId(j), SiteId(i))
                );
            }
        }
        // Spot-check values from Table II.
        assert_eq!(topo.rtt_ms(SiteId(0), SiteId(4)), 275.549); // Virginia-Singapore
        assert_eq!(topo.rtt_ms(SiteId(5), SiteId(7)), 374.363); // Tokyo-SaoPaulo
        assert_eq!(topo.rtt_ms(SiteId(3), SiteId(3)), 0.513); // Ireland local
    }

    #[test]
    fn latency_is_at_least_half_rtt() {
        let topo = Topology::aws_ec2_8_sites(10);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 2_000;
        for _ in 0..n {
            // Virginia (site 0) -> Ireland (site 3, nodes 30-39).
            let lat = topo.sample_latency(NodeAddr(0), NodeAddr(35), &mut rng);
            // Virginia-Ireland RTT is 87.407ms; one-way stays near half.
            assert!(lat.as_millis_f64() >= 87.407 / 2.0 * 0.2 - 1e-6, "{lat}");
            assert!(lat.as_millis_f64() < 87.407 * 5.0, "{lat}");
            sum += lat.as_millis_f64();
        }
        // Mean-preserving: the average one-way latency is ~RTT/2.
        let mean = sum / n as f64;
        assert!((mean - 87.407 / 2.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn intra_site_latency_is_sub_millisecond() {
        let topo = Topology::aws_ec2_8_sites(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let lat = topo.sample_latency(NodeAddr(0), NodeAddr(1), &mut rng);
        assert!(lat.as_millis_f64() < 2.0, "{lat}");
    }

    #[test]
    fn nodes_of_site_partition() {
        let topo = Topology::aws_ec2_8_sites(3);
        let mut seen = 0;
        for s in 0..8u16 {
            let nodes = topo.nodes_of_site(SiteId(s));
            assert_eq!(nodes.len(), 3);
            seen += nodes.len();
        }
        assert_eq!(seen, topo.node_count());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn bad_matrix_rejected() {
        Topology::new(
            vec![SiteSpec {
                name: "a".into(),
                nodes: 1,
                instability: 1.0,
            }],
            vec![vec![1.0, 2.0]],
        );
    }

    #[test]
    fn unstable_sites_have_larger_jitter_spread() {
        let topo = Topology::aws_ec2_8_sites(20);
        let mut rng = SmallRng::seed_from_u64(11);
        let spread = |a: NodeAddr, b: NodeAddr, rng: &mut SmallRng| {
            let xs: Vec<f64> = (0..500)
                .map(|_| topo.sample_latency(a, b, rng).as_millis_f64())
                .collect();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(0.0f64, f64::max);
            max - min
        };
        // Virginia->Oregon (stable) vs Singapore->SaoPaulo (unstable); scale
        // by mean so the comparison is relative.
        let stable = spread(NodeAddr(0), NodeAddr(20), &mut rng) / 30.0;
        let unstable = spread(NodeAddr(80), NodeAddr(140), &mut rng) / 198.0;
        assert!(unstable > stable, "unstable={unstable} stable={stable}");
    }
}
