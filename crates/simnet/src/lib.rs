//! # simnet — deterministic discrete-event network simulation
//!
//! This crate is the testbed substrate of the RBAY reproduction. The paper
//! evaluated RBAY on 160 Amazon EC2 VMs spread over eight regions; here the
//! same protocols run over a deterministic event-queue simulator whose
//! inter-site latencies come from the paper's own Table II measurements
//! ([`Topology::aws_ec2_8_sites`]).
//!
//! ## Model
//!
//! * Every participant is an [`Actor`] living at a [`NodeAddr`].
//! * Actors exchange typed messages; delivery latency is sampled from the
//!   [`Topology`] (half the site-pair RTT plus exponential jitter).
//! * Virtual time ([`SimTime`]) only advances when events execute, so a
//!   16,000-node federation simulates in seconds of wall-clock time.
//! * Everything is seeded: the same seed reproduces the same trace, which is
//!   what makes the paper's figures regenerable as tests.
//!
//! ## Example
//!
//! ```
//! use simnet::{Actor, Context, MessageSize, NodeAddr, SimTime, Simulation, Topology};
//!
//! #[derive(Debug)]
//! struct Hello;
//! impl MessageSize for Hello {}
//!
//! struct Greeter { greeted: u32 }
//! impl Actor for Greeter {
//!     type Msg = Hello;
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Hello>, _from: NodeAddr, _msg: Hello) {
//!         self.greeted += 1;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Topology::aws_ec2_8_sites(2), 7, |_| Greeter { greeted: 0 });
//! sim.schedule_call(SimTime::ZERO, NodeAddr(0), |_, ctx| {
//!     ctx.send(NodeAddr(15), Hello); // Virginia -> São Paulo
//! });
//! sim.run_until_idle();
//! assert_eq!(sim.actor(NodeAddr(15)).greeted, 1);
//! // One-way Virginia -> São Paulo is around half of the 123.966ms RTT.
//! assert!(sim.now().as_millis_f64() >= 123.966 / 2.0 * 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod obs;
pub mod queue;
pub mod sched;
mod stats;
mod time;
pub mod topology;

pub use engine::{
    Actor, Choice, Context, EarliestFirst, EventDesc, EventKind, MessageSize, Scheduler,
    Simulation, TimerToken, TraceEvent,
};
pub use obs::{MetricsSnapshot, ObsEvent, Recorder};
pub use queue::CalendarQueue;
pub use sched::{ExploreScheduler, FaultOpts, Footprint, RandomScheduler, ReplayScheduler};
pub use stats::NetStats;
pub use time::{SimDuration, SimTime};
pub use topology::{NodeAddr, SiteId, SiteSpec, Topology};
