//! Network traffic accounting.

/// Counters for simulated network activity.
///
/// Updated automatically by the engine; protocols read them through
/// [`crate::Simulation::stats`] to report bandwidth and message overheads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    sent: u64,
    delivered: u64,
    dropped: u64,
    bytes: u64,
    cross_site_sent: u64,
    cross_site_bytes: u64,
    events: u64,
    cancelled_timers: u64,
}

impl NetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        NetStats::default()
    }

    pub(crate) fn record_send(&mut self, bytes: usize, cross_site: bool) {
        self.sent += 1;
        self.bytes += bytes as u64;
        if cross_site {
            self.cross_site_sent += 1;
            self.cross_site_bytes += bytes as u64;
        }
    }

    pub(crate) fn record_delivery(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn record_drop(&mut self) {
        self.dropped += 1;
    }

    pub(crate) fn record_event(&mut self) {
        self.events += 1;
    }

    pub(crate) fn record_cancelled_timer(&mut self) {
        self.cancelled_timers += 1;
    }

    /// Total messages sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Total messages delivered to a live destination.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped because an endpoint was failed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total bytes sent (per [`crate::MessageSize`]).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Messages whose endpoints were in different sites.
    pub fn cross_site_sent(&self) -> u64 {
        self.cross_site_sent
    }

    /// Bytes whose endpoints were in different sites.
    pub fn cross_site_bytes(&self) -> u64 {
        self.cross_site_bytes
    }

    /// Simulation events executed (deliveries, timer fires, scheduled calls).
    ///
    /// Deterministic: participates in snapshot equality, so two same-seed
    /// runs must agree on it. Divide by a wall-clock measurement (see
    /// [`crate::Simulation::events_per_sec`]) to get engine throughput.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Timer events that were lazily discarded because the timer was
    /// cancelled (or superseded) before it fired.
    pub fn cancelled_timers(&self) -> u64 {
        self.cancelled_timers
    }

    /// Difference of two snapshots (`self` must be the later one).
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            sent: self.sent - earlier.sent,
            delivered: self.delivered - earlier.delivered,
            dropped: self.dropped - earlier.dropped,
            bytes: self.bytes - earlier.bytes,
            cross_site_sent: self.cross_site_sent - earlier.cross_site_sent,
            cross_site_bytes: self.cross_site_bytes - earlier.cross_site_bytes,
            events: self.events - earlier.events,
            cancelled_timers: self.cancelled_timers - earlier.cancelled_timers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::new();
        s.record_send(100, false);
        s.record_send(50, true);
        s.record_delivery();
        s.record_drop();
        assert_eq!(s.sent(), 2);
        assert_eq!(s.bytes(), 150);
        assert_eq!(s.cross_site_sent(), 1);
        assert_eq!(s.cross_site_bytes(), 50);
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn since_subtracts() {
        let mut s = NetStats::new();
        s.record_send(10, true);
        s.record_event();
        let snap = s.clone();
        s.record_send(20, false);
        s.record_event();
        s.record_event();
        let d = s.since(&snap);
        assert_eq!(d.sent(), 1);
        assert_eq!(d.bytes(), 20);
        assert_eq!(d.cross_site_sent(), 0);
        assert_eq!(d.events(), 2);
    }

    #[test]
    fn event_and_cancellation_counters() {
        let mut s = NetStats::new();
        s.record_event();
        s.record_event();
        s.record_cancelled_timer();
        assert_eq!(s.events(), 2);
        assert_eq!(s.cancelled_timers(), 1);
    }
}
