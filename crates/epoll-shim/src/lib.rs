//! A thin vendored readiness-polling shim for the rbay event-loop
//! transport, in the same spirit as the workspace's vendored `rand` /
//! `proptest` / `criterion` stand-ins: the build environment has no
//! crates.io access, so instead of `mio`/`libc` this crate declares the
//! handful of C symbols it needs (they are provided by the libc that
//! `std` already links) and wraps them in a safe, minimal API.
//!
//! * [`Poller`] — level-triggered readiness notification over a set of
//!   file descriptors: `epoll_create1`/`epoll_ctl`/`epoll_wait` on Linux,
//!   a `poll(2)` fallback on other Unixes.
//! * [`connect_nonblocking`] — starts a TCP connect without blocking the
//!   caller; completion (or failure) is observed as writability on the
//!   returned socket.
//!
//! This is the **only** crate in the workspace allowed to contain
//! `unsafe`: everything above it (`rbay-wire` and up) stays under
//! `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(not(unix))]
compile_error!("epoll-shim supports Unix targets only");

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::raw::c_int;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness conditions a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a peer hangup to observe).
    pub readable: bool,
    /// Wake when the fd can accept writes (or a connect completed).
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (includes EOF/hangup — a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// An error or hangup condition is pending on the fd; consult
    /// `TcpStream::take_error` / a zero-length read for the cause.
    pub error: bool,
}

pub use imp::Poller;

/// Starts a nonblocking TCP connect to `addr`. The returned stream is in
/// nonblocking mode with the connect possibly still in flight: register
/// it for write-readiness and, once writable, check
/// `TcpStream::take_error()` for the outcome.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
    imp::connect_nonblocking(addr)
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Matches the kernel's `struct epoll_event`; on x86-64 glibc declares
    /// it packed, so the data word is unaligned there.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // SAFETY: declarations match the Linux syscall wrappers exported by
    // every libc (glibc/musl) `std` links: epoll_create1(2), epoll_ctl(2)
    // taking a pointer the kernel copies from, epoll_wait(2) writing at
    // most `maxevents` entries, close(2). `EpollEvent` mirrors the
    // kernel's `struct epoll_event` layout (packed on x86-64).
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Level-triggered readiness notification over `epoll`.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates a fresh epoll instance.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall with no pointer arguments.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Replaces the interest of an already-registered fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Removes `fd` from the set.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default())
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks until at least one registered fd is ready or `timeout`
        /// elapses (`None` blocks indefinitely), replacing the contents of
        /// `events`. A signal interruption returns an empty set.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
            };
            // SAFETY: `raw` is a valid writable buffer of the stated length.
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as c_int, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                // Copy packed fields out by value before use.
                let bits = ev.events;
                let token = ev.data;
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: we own the fd and nothing uses it after drop.
            unsafe { close(self.epfd) };
        }
    }

    // --- nonblocking connect -------------------------------------------

    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_STREAM: c_int = 1;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const EINPROGRESS: i32 = 115;

    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    #[repr(C)]
    struct SockAddrIn6 {
        family: u16,
        port: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    // SAFETY: socket(2) and connect(2) as exported by libc; `connect`'s
    // `addr` is only read for `len` bytes during the call, and the
    // `SockAddrIn`/`SockAddrIn6` structs above mirror the kernel's
    // `sockaddr_in`/`sockaddr_in6` layouts (fields in network order).
    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn connect(fd: c_int, addr: *const std::ffi::c_void, len: u32) -> c_int;
    }

    pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
        use std::os::unix::io::FromRawFd;
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: plain syscall; flags request a nonblocking cloexec fd.
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd is a fresh socket we own; errors below close it via
        // the TcpStream's Drop.
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        let rc = match addr {
            SocketAddr::V4(v4) => {
                let sa = SockAddrIn {
                    family: AF_INET as u16,
                    port: v4.port().to_be(),
                    addr: u32::from(*v4.ip()).to_be(),
                    zero: [0; 8],
                };
                // SAFETY: `sa` is a valid sockaddr_in for the call's duration.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockAddrIn).cast(),
                        std::mem::size_of::<SockAddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(v6) => {
                let sa = SockAddrIn6 {
                    family: AF_INET6 as u16,
                    port: v6.port().to_be(),
                    flowinfo: v6.flowinfo(),
                    addr: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                };
                // SAFETY: `sa` is a valid sockaddr_in6 for the call's duration.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockAddrIn6).cast(),
                        std::mem::size_of::<SockAddrIn6>() as u32,
                    )
                }
            }
        };
        if rc == 0 {
            return Ok(stream);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINPROGRESS) {
            return Ok(stream);
        }
        Err(err)
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    // SAFETY: poll(2) as exported by libc; `PollFd` mirrors the kernel's
    // `struct pollfd` and the call writes only the `revents` fields of
    // the first `nfds` entries.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    /// `poll(2)` fallback: keeps the registration set in user space and
    /// rebuilds the pollfd array per wait. O(fds) per call — fine for the
    /// non-Linux development targets this path serves.
    #[derive(Debug)]
    pub struct Poller {
        fds: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        /// Creates an empty registration set.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Mutex::new(HashMap::new()),
            })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        /// Replaces the interest of an already-registered fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        /// Removes `fd` from the set.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.fds.lock().unwrap().remove(&fd);
            Ok(())
        }

        /// Blocks until at least one registered fd is ready or `timeout`
        /// elapses, replacing the contents of `events`.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let snapshot: Vec<(RawFd, u64, Interest)> = self
                .fds
                .lock()
                .unwrap()
                .iter()
                .map(|(fd, (token, interest))| (*fd, *token, *interest))
                .collect();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
            };
            // SAFETY: `fds` is a valid writable array of the stated length.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token: *token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
        // Portability fallback: a short blocking connect, then switch the
        // stream to nonblocking. Linux (the deployment target) gets the
        // true nonblocking path.
        let stream = TcpStream::connect_timeout(addr, Duration::from_secs(5))?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn pipe_readability_is_reported() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "nothing written yet");

        a.write_all(&[1]).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&b).read(&mut buf).unwrap();
        assert_eq!(n, 1);
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn nonblocking_connect_becomes_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(&addr).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(stream.as_raw_fd(), 1, Interest::WRITE)
            .unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 1 && e.writable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "connect never completed"
            );
        }
        assert!(stream.take_error().unwrap().is_none(), "connect failed");
        let _ = listener.accept().unwrap();
    }

    #[test]
    fn reregister_switches_interest() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        a.write_all(&[9]).unwrap();

        // Write-only interest: the pending byte must not wake us as readable.
        poller.register(b.as_raw_fd(), 3, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| !e.readable));

        poller.reregister(b.as_raw_fd(), 3, Interest::BOTH).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }
}
