//! Protocol invariants evaluated while the checker explores.
//!
//! Two tiers, reflecting what is actually stable when:
//!
//! * **Step invariants** ([`StepTracker::check`]) run after every fired
//!   event. Messages are in flight, so most structure is legitimately
//!   inconsistent mid-step; only always-true sanity conditions and
//!   *persistence* conditions (a transient state that refuses to resolve
//!   within a grace window) are checked here.
//! * **Quiescence invariants** ([`check_quiescent`]) run once the event
//!   store drains: nothing is in flight, every scheduled maintenance
//!   round has run, so the tree must be fully consistent — single live
//!   root, attachment symmetry, exact aggregate, symmetric peer sets, and
//!   every committed query completed.
//!
//! False-positive discipline: the scenarios bound fault injection to an
//! early horizon (see [`crate::scenario`]) and schedule enough
//! maintenance rounds afterwards that correct code provably converges
//! before the quiescence check — a violation therefore indicts the
//! protocol, not the harness.

use rbay_core::Federation;
use scribe::TopicId;
use simnet::NodeAddr;
use std::collections::BTreeMap;
use std::fmt;

/// What the oracles need to know about the scenario under check.
pub struct InvariantCtx {
    /// The topic tree under scrutiny.
    pub topic: TopicId,
    /// Nodes posted as resource holders (the expected subscribed set;
    /// the live subset is computed per check).
    pub holders: Vec<NodeAddr>,
    /// Check root-aggregate exactness at quiescence. Requires the
    /// scenario to leave enough post-fault rounds for stale-entry expiry
    /// (all shipped scenarios do).
    pub check_aggregate: bool,
    /// Check leaf-set symmetry between live nodes at quiescence.
    pub check_peer_symmetry: bool,
    /// Treat an unsatisfied query as a violation when every holder is
    /// still alive. OFF by default: this is the hunting mode for the
    /// known ROADMAP-1 recall collapse, not a regression gate.
    pub strict_recall: bool,
    /// Steps a dual attachment (one child in two live parents' children
    /// sets) may persist before it counts as a leak. In correct code the
    /// detach `Leave` is in flight and fires within the exploration
    /// window; only a mutant (or a dropped Leave, which the fault horizon
    /// rules out) lets the state outlive the grace window.
    pub dual_grace: usize,
}

impl InvariantCtx {
    /// A context with the default gates (aggregate + peer symmetry on,
    /// strict recall off).
    pub fn new(topic: TopicId, holders: Vec<NodeAddr>) -> Self {
        InvariantCtx {
            topic,
            holders,
            check_aggregate: true,
            check_peer_symmetry: true,
            strict_recall: false,
            dual_grace: 48,
        }
    }
}

/// A protocol-invariant violation found by the checker.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A node lists itself as its own parent or child.
    SelfLink {
        /// The offending node.
        node: NodeAddr,
    },
    /// More than one live node believes it is the tree root.
    MultipleRoots {
        /// Every live self-declared root.
        roots: Vec<NodeAddr>,
    },
    /// Live members exist but no live node is root.
    NoLiveRoot,
    /// A live child sat in two live parents' children sets for longer
    /// than the grace window (double-counted aggregate, duplicate
    /// multicast).
    DualAttachment {
        /// The doubly-attached child.
        child: NodeAddr,
        /// The parents that both claim it.
        parents: Vec<NodeAddr>,
    },
    /// At quiescence a node points at a live parent that does not list
    /// it as a child (permanently orphaned subscriber: its aggregates
    /// are NACKed forever).
    DetachedAttachment {
        /// The orphan.
        child: NodeAddr,
        /// The parent that disowned it.
        parent: NodeAddr,
    },
    /// A live subscriber has no live parent chain ending at a live root.
    OrphanedSubscriber {
        /// The orphan.
        node: NodeAddr,
    },
    /// A live node still lists a live peer as failed at quiescence
    /// (permanently evicted peer: heartbeats to it never resume).
    EvictedLivePeer {
        /// The node holding the stale suspicion.
        suspecter: NodeAddr,
        /// The live peer it buried.
        peer: NodeAddr,
    },
    /// Leaf-set membership is asymmetric between two live nodes after
    /// gossip convergence.
    AsymmetricPeers {
        /// The node missing the entry.
        a: NodeAddr,
        /// The peer that still lists `a`.
        b: NodeAddr,
    },
    /// The root's aggregate count disagrees with the live subscribed
    /// membership at quiescence.
    AggregateMismatch {
        /// What the root reports.
        reported: Option<u64>,
        /// The live subscribed member count.
        expected: u64,
    },
    /// An issued query whose origin is alive never completed (the
    /// ROADMAP-1 reflex: queries silently lost mid-repair).
    LostQuery {
        /// The issuing node.
        origin: NodeAddr,
        /// Position in the origin's issue order.
        seq: u32,
    },
    /// Strict-recall mode: every holder is alive yet the query finished
    /// unsatisfied.
    UnsatisfiedQuery {
        /// The issuing node.
        origin: NodeAddr,
        /// Position in the origin's issue order.
        seq: u32,
    },
    /// The run failed to drain its event store within the step budget.
    NonQuiescent {
        /// Steps executed before giving up.
        steps: usize,
    },
    /// bench:fig8 — routed probes were lost or duplicated.
    ProbeLoss {
        /// Probes delivered.
        delivered: usize,
        /// Probes routed.
        expected: usize,
    },
    /// A mirrored rendezvous replica broke its consistency discipline:
    /// either a node mirrors itself, or a replica outlived its TTL
    /// without being refreshed or expired.
    ReplicaDivergence {
        /// The node holding the replica.
        holder: NodeAddr,
        /// The root the replica claims to mirror.
        root: NodeAddr,
    },
}

impl Violation {
    /// Stable machine-readable kind, used in `.schedule` files and by
    /// the shrinker to decide whether a reduced schedule still fails
    /// "the same way".
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::SelfLink { .. } => "self-link",
            Violation::MultipleRoots { .. } => "multiple-roots",
            Violation::NoLiveRoot => "no-live-root",
            Violation::DualAttachment { .. } => "dual-attachment",
            Violation::DetachedAttachment { .. } => "detached-attachment",
            Violation::OrphanedSubscriber { .. } => "orphaned-subscriber",
            Violation::EvictedLivePeer { .. } => "evicted-live-peer",
            Violation::AsymmetricPeers { .. } => "asymmetric-peers",
            Violation::AggregateMismatch { .. } => "aggregate-mismatch",
            Violation::LostQuery { .. } => "lost-query",
            Violation::UnsatisfiedQuery { .. } => "unsatisfied-query",
            Violation::NonQuiescent { .. } => "non-quiescent",
            Violation::ProbeLoss { .. } => "probe-loss",
            Violation::ReplicaDivergence { .. } => "replica-divergence",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SelfLink { node } => write!(f, "{node:?} is its own tree neighbour"),
            Violation::MultipleRoots { roots } => {
                write!(f, "multiple live roots: {roots:?}")
            }
            Violation::NoLiveRoot => write!(f, "live members but no live root"),
            Violation::DualAttachment { child, parents } => {
                write!(f, "{child:?} attached under {parents:?} simultaneously")
            }
            Violation::DetachedAttachment { child, parent } => {
                write!(f, "{child:?} points at {parent:?}, which disowned it")
            }
            Violation::OrphanedSubscriber { node } => {
                write!(f, "{node:?} subscribed but unreachable from the root")
            }
            Violation::EvictedLivePeer { suspecter, peer } => {
                write!(f, "{suspecter:?} still declares live {peer:?} failed")
            }
            Violation::AsymmetricPeers { a, b } => {
                write!(f, "{b:?} lists {a:?} but not vice versa")
            }
            Violation::AggregateMismatch { reported, expected } => {
                write!(f, "root aggregate {reported:?}, live membership {expected}")
            }
            Violation::LostQuery { origin, seq } => {
                write!(f, "query #{seq} from live {origin:?} never completed")
            }
            Violation::UnsatisfiedQuery { origin, seq } => {
                write!(
                    f,
                    "query #{seq} from {origin:?} unsatisfied with all holders live"
                )
            }
            Violation::NonQuiescent { steps } => {
                write!(f, "not quiescent after {steps} steps")
            }
            Violation::ProbeLoss {
                delivered,
                expected,
            } => {
                write!(f, "{delivered} of {expected} routed probes delivered")
            }
            Violation::ReplicaDivergence { holder, root } => {
                write!(
                    f,
                    "replica at {holder:?} mirroring {root:?} broke the refresh/expiry discipline"
                )
            }
        }
    }
}

fn live(fed: &Federation, addr: NodeAddr) -> bool {
    !fed.sim().is_failed(addr)
}

fn live_nodes(fed: &Federation) -> impl Iterator<Item = NodeAddr> + '_ {
    (0..fed.sim().topology().node_count() as u32)
        .map(NodeAddr)
        .filter(|a| live(fed, *a))
}

/// `child -> live parents listing it` for the topic.
fn attachment_map(fed: &Federation, topic: TopicId) -> BTreeMap<NodeAddr, Vec<NodeAddr>> {
    let mut map: BTreeMap<NodeAddr, Vec<NodeAddr>> = BTreeMap::new();
    for p in live_nodes(fed) {
        if let Some(st) = fed.node(p).scribe.topic(topic) {
            for &c in &st.children {
                if live(fed, c) {
                    map.entry(c).or_default().push(p);
                }
            }
        }
    }
    map
}

/// Per-run step-invariant state: sanity conditions plus the
/// dual-attachment persistence counter.
pub struct StepTracker {
    grace: usize,
    /// Consecutive steps each live child has spent attached under more
    /// than one live parent.
    dual_streak: BTreeMap<NodeAddr, usize>,
}

impl StepTracker {
    /// A fresh tracker using the context's grace window.
    pub fn new(ctx: &InvariantCtx) -> Self {
        StepTracker {
            grace: ctx.dual_grace,
            dual_streak: BTreeMap::new(),
        }
    }

    /// Cheap after-every-step check: self-links and over-grace dual
    /// attachments.
    pub fn check(&mut self, fed: &Federation, ctx: &InvariantCtx) -> Option<Violation> {
        for n in live_nodes(fed) {
            if let Some(st) = fed.node(n).scribe.topic(ctx.topic) {
                if st.parent == Some(n) || st.children.contains(&n) {
                    return Some(Violation::SelfLink { node: n });
                }
            }
        }
        let attached = attachment_map(fed, ctx.topic);
        self.dual_streak
            .retain(|c, _| attached.get(c).map(|ps| ps.len()).unwrap_or(0) > 1);
        for (c, parents) in &attached {
            if parents.len() > 1 {
                let streak = self.dual_streak.entry(*c).or_insert(0);
                *streak += 1;
                if *streak > self.grace {
                    return Some(Violation::DualAttachment {
                        child: *c,
                        parents: parents.clone(),
                    });
                }
            }
        }
        None
    }
}

/// The full oracle suite, valid only once the event store has drained.
/// Returns the first violation found.
pub fn check_quiescent(fed: &Federation, ctx: &InvariantCtx) -> Option<Violation> {
    let topic = ctx.topic;
    let members: Vec<NodeAddr> = live_nodes(fed)
        .filter(|n| {
            fed.node(*n)
                .scribe
                .topic(topic)
                .is_some_and(|st| st.is_member())
        })
        .collect();

    // Single live root per topic tree.
    let roots: Vec<NodeAddr> = live_nodes(fed)
        .filter(|n| {
            fed.node(*n)
                .scribe
                .topic(topic)
                .is_some_and(|st| st.is_root)
        })
        .collect();
    if roots.len() > 1 {
        return Some(Violation::MultipleRoots { roots });
    }
    if roots.is_empty() && !members.is_empty() {
        return Some(Violation::NoLiveRoot);
    }

    // Attachment consistency: no dual attachment survives quiescence,
    // and a child's parent pointer is honoured by the parent.
    let attached = attachment_map(fed, topic);
    for (c, parents) in &attached {
        if parents.len() > 1 {
            return Some(Violation::DualAttachment {
                child: *c,
                parents: parents.clone(),
            });
        }
    }
    for n in &members {
        let st = fed.node(*n).scribe.topic(topic).expect("member state");
        if let Some(p) = st.parent {
            if live(fed, p) {
                let listed = fed
                    .node(p)
                    .scribe
                    .topic(topic)
                    .is_some_and(|ps| ps.children.contains(n));
                if !listed {
                    return Some(Violation::DetachedAttachment {
                        child: *n,
                        parent: p,
                    });
                }
            }
        }
    }

    // No orphaned subscriber: every live subscriber reaches a live root
    // by parent pointers over live nodes (cycle ⇒ orphaned).
    let n_nodes = fed.sim().topology().node_count();
    for n in &members {
        let st = fed.node(*n).scribe.topic(topic).expect("member state");
        if !st.subscribed {
            continue;
        }
        let mut cur = *n;
        let mut hops = 0usize;
        let reached = loop {
            let Some(cst) = fed.node(cur).scribe.topic(topic) else {
                break false;
            };
            if cst.is_root {
                break true;
            }
            match cst.parent {
                Some(p) if live(fed, p) && hops <= n_nodes => {
                    cur = p;
                    hops += 1;
                }
                _ => break false,
            }
        };
        if !reached {
            return Some(Violation::OrphanedSubscriber { node: *n });
        }
    }

    // Replica consistency: a mirrored rendezvous snapshot must follow the
    // refresh/expiry discipline — never a self-mirror (a promoted root
    // consumes its replica), and never older than its TTL (the aging
    // sweep in `aggregate_tick` must have refreshed or dropped it).
    for n in live_nodes(fed) {
        for (t, rep) in fed.node(n).scribe.replicas() {
            if *t != topic {
                continue;
            }
            if rep.root == n || rep.age > scribe::REPLICA_TTL_ROUNDS {
                return Some(Violation::ReplicaDivergence {
                    holder: n,
                    root: rep.root,
                });
            }
        }
    }

    // No permanently evicted live peer.
    for n in live_nodes(fed) {
        for &p in &fed.node(n).host.suspected {
            if live(fed, p) {
                return Some(Violation::EvictedLivePeer {
                    suspecter: n,
                    peer: p,
                });
            }
        }
    }

    // Peer-set symmetry after gossip convergence.
    if ctx.check_peer_symmetry {
        let all: Vec<NodeAddr> = live_nodes(fed).collect();
        for &a in &all {
            for &b in &all {
                if a == b {
                    continue;
                }
                let a_has_b = fed.node(a).pastry.leaf_set().members().any(|i| i.addr == b);
                let b_has_a = fed.node(b).pastry.leaf_set().members().any(|i| i.addr == a);
                if b_has_a && !a_has_b {
                    return Some(Violation::AsymmetricPeers { a, b });
                }
            }
        }
    }

    // No double-counted aggregate: root count equals the live
    // subscribed membership.
    if ctx.check_aggregate {
        let expected = live_nodes(fed)
            .filter(|n| {
                fed.node(*n)
                    .scribe
                    .topic(topic)
                    .is_some_and(|st| st.subscribed)
            })
            .count() as u64;
        if expected > 0 {
            let reported = fed.tree_root_count(topic);
            if reported != Some(expected) {
                return Some(Violation::AggregateMismatch { reported, expected });
            }
        }
    }

    // No committed query lost: a query whose origin is still alive must
    // have completed (retries are bounded, so quiescence ⇒ completion).
    for (origin, id) in fed.issued_queries() {
        if !live(fed, origin) {
            continue;
        }
        let seq = (id.0 & 0xFFFF_FFFF) as u32;
        match fed.query_record(origin, id) {
            None => return Some(Violation::LostQuery { origin, seq }),
            Some(rec) => {
                if rec.completed_at.is_none() {
                    return Some(Violation::LostQuery { origin, seq });
                }
                if ctx.strict_recall && !rec.satisfied && ctx.holders.iter().all(|h| live(fed, *h))
                {
                    return Some(Violation::UnsatisfiedQuery { origin, seq });
                }
            }
        }
    }

    None
}
