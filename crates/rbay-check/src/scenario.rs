//! Checkable scenarios: small, fully deterministic federations whose
//! event interleavings the explorer enumerates.
//!
//! The canonical scenario is **subscribe-fail-repair**: a single-site
//! federation builds the `GPU=true` tree on the fast path, then
//! exploration takes over a window of maintenance rounds with one query
//! in flight and a bounded fault budget (message drops and node crashes
//! early in the window, repair rounds after). The fault *horizon* is the
//! false-positive discipline: all faults land before the first possible
//! failure declaration completes, so the scheduled rounds that follow are
//! guaranteed (for correct code) to repair, expire stale state, and
//! converge — making the quiescence oracles exact.
//!
//! The `bench:churn` scenario is the deterministic core of the churn
//! bench (`rbay-bench/src/bin/churn.rs` drives the same [`ChurnState`]),
//! so a seed that trips an invariant in the bench replays through
//! `rbay-check replay` byte-identically.

use crate::invariants::InvariantCtx;
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rbay_core::{Federation, QueryId, RbayConfig};
use rbay_query::AttrValue;
use rbay_workloads::WORKLOAD_PASSWORD;
use scribe::TopicId;
use simnet::{FaultOpts, NodeAddr, SimDuration, SiteId, Topology};

/// Which scenario a spec (or `.schedule` file) refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The canonical explorable 3–5-node subscribe/fail/repair window.
    SubscribeFailRepair,
    /// The churn bench's deterministic core (replay only — too large to
    /// explore exhaustively).
    BenchChurn,
    /// The fig8 probe-routing core (replay only): every routed probe must
    /// be delivered exactly once.
    BenchFig8,
}

impl ScenarioKind {
    /// Stable name used in `.schedule` files and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::SubscribeFailRepair => "subscribe-fail-repair",
            ScenarioKind::BenchChurn => "bench:churn",
            ScenarioKind::BenchFig8 => "bench:fig8",
        }
    }

    /// Parses a scenario name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "subscribe-fail-repair" => Some(ScenarioKind::SubscribeFailRepair),
            "bench:churn" => Some(ScenarioKind::BenchChurn),
            "bench:fig8" => Some(ScenarioKind::BenchFig8),
            _ => None,
        }
    }
}

/// Everything needed to rebuild a run from scratch — the identity of a
/// schedule file minus its decision trace.
#[derive(Debug, Clone)]
pub struct CheckSpec {
    /// Scenario family.
    pub kind: ScenarioKind,
    /// Federation size.
    pub nodes: usize,
    /// Base seed (fixes topology jitter and the setup phase).
    pub seed: u64,
    /// Maintenance rounds scheduled into the explored window
    /// (subscribe-fail-repair) or per crash epoch (bench:churn).
    pub rounds: u32,
    /// Fault budget: deliveries droppable per run.
    pub max_drops: usize,
    /// Fault budget: nodes crashable per run.
    pub max_crashes: usize,
    /// Fault horizon as an offset from exploration start.
    pub horizon: SimDuration,
    /// Arm the strict-recall oracle (ROADMAP-1 hunting mode).
    pub strict_recall: bool,
    /// bench:churn only — fraction of live nodes crashed per epoch.
    pub churn_frac: f64,
    /// bench:churn only — crash epochs.
    pub epochs: u32,
    /// bench:fig8 only — probes routed over the overlay.
    pub queries: usize,
}

impl CheckSpec {
    /// The canonical subscribe-fail-repair spec: `nodes` nodes, two
    /// droppable deliveries, one crashable node, faults confined to the
    /// first heartbeat round of a 10-round window. The 450 ms horizon is
    /// load-bearing: the earliest failure declaration lands at the
    /// second round (t0 + 500 ms), so every repair-era message (Leave to
    /// the old parent, rejoin traffic) is past the horizon and
    /// undroppable — a dual attachment that persists can only come from
    /// broken repair code, never from an explored fault.
    pub fn subscribe_fail_repair(nodes: usize, seed: u64) -> Self {
        CheckSpec {
            kind: ScenarioKind::SubscribeFailRepair,
            nodes,
            seed,
            rounds: 10,
            max_drops: 2,
            max_crashes: 1,
            horizon: SimDuration::from_millis(450),
            strict_recall: false,
            churn_frac: 0.0,
            epochs: 0,
            queries: 0,
        }
    }

    /// A bench:churn spec mirroring `churn.rs`'s per-level parameters.
    pub fn bench_churn(nodes: usize, churn_frac: f64, epochs: u32, seed: u64) -> Self {
        CheckSpec {
            kind: ScenarioKind::BenchChurn,
            nodes,
            seed,
            rounds: 8,
            max_drops: 0,
            max_crashes: 0,
            horizon: SimDuration::ZERO,
            strict_recall: false,
            churn_frac,
            epochs,
            queries: 0,
        }
    }

    /// A bench:fig8 spec: `queries` probes routed over an `nodes`-node
    /// overlay, all of which must be delivered.
    pub fn bench_fig8(nodes: usize, queries: usize, seed: u64) -> Self {
        CheckSpec {
            kind: ScenarioKind::BenchFig8,
            nodes,
            seed,
            rounds: 0,
            max_drops: 0,
            max_crashes: 0,
            horizon: SimDuration::ZERO,
            strict_recall: false,
            churn_frac: 0.0,
            epochs: 0,
            queries,
        }
    }

    /// Builds the scenario to the explored window's start: federation
    /// settled, exploration enabled, maintenance + query scheduled, fault
    /// budget resolved. Only meaningful for explorable kinds.
    pub fn prepare(&self) -> Prepared {
        assert_eq!(
            self.kind,
            ScenarioKind::SubscribeFailRepair,
            "only subscribe-fail-repair is explorable; bench scenarios replay via run_churn_default"
        );
        let cfg = RbayConfig {
            failure_detection: true,
            heartbeat_timeout: SimDuration::from_millis(400),
            commit_results: false,
            ..RbayConfig::default()
        };
        let mut fed =
            Federation::with_config(Topology::single_site(self.nodes, 0.5), self.seed, cfg);
        let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
        // Node 0 is the querier (never crashed); everyone else holds the
        // resource and subscribes to the tree.
        let holders: Vec<NodeAddr> = (1..self.nodes as u32).map(NodeAddr).collect();
        for &h in &holders {
            fed.post_resource(h, "GPU", AttrValue::Bool(true));
        }
        fed.settle();
        fed.run_maintenance(2, SimDuration::from_millis(250));
        fed.settle();

        // Exploration takes over: rounds and the query land in the event
        // store instead of executing.
        fed.sim_mut().enable_exploration();
        fed.schedule_maintenance(self.rounds, SimDuration::from_millis(500));
        let origin = NodeAddr(0);
        let query = fed
            .issue_query(origin, "SELECT 1 FROM * WHERE GPU = true", None)
            .expect("static query parses");

        let horizon = fed.sim().now() + self.horizon;
        let faults = FaultOpts {
            max_drops: self.max_drops,
            max_crashes: self.max_crashes,
            crashable: holders.clone(),
            horizon,
        };
        let mut ctx = InvariantCtx::new(topic, holders);
        ctx.strict_recall = self.strict_recall;
        Prepared {
            fed,
            ctx,
            faults,
            origin,
            query,
        }
    }
}

/// A scenario built to the start of its explored window.
pub struct Prepared {
    /// The federation, with exploration mode enabled.
    pub fed: Federation,
    /// Invariant-oracle context for this run.
    pub ctx: InvariantCtx,
    /// Resolved fault budget (absolute horizon).
    pub faults: FaultOpts,
    /// The querying node (excluded from crashes).
    pub origin: NodeAddr,
    /// The in-flight query's id.
    pub query: QueryId,
}

/// Parameters of the churn bench's deterministic core.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Federation size.
    pub nodes: usize,
    /// Fraction of live nodes crashed per epoch.
    pub frac: f64,
    /// Crash epochs.
    pub epochs: u32,
    /// Seed (federation uses it directly; churn decisions use
    /// `seed ^ 0xC0FFEE`, matching the bench).
    pub seed: u64,
}

/// The churn bench's deterministic state: federation, topic, holders,
/// and the churn RNG. `churn.rs` drives this directly so bench runs and
/// `rbay-check replay` runs make identical decisions.
pub struct ChurnState {
    /// The federation.
    pub fed: Federation,
    /// The `GPU=true` tree.
    pub topic: TopicId,
    /// Live resource holders (crashed ones are retained out).
    pub holders: Vec<NodeAddr>,
    /// Liveness bitmap.
    pub alive: Vec<bool>,
    rng: SmallRng,
}

impl ChurnState {
    /// Builds and settles the churn federation exactly as
    /// `churn.rs::run_level` does.
    pub fn new(p: &ChurnParams) -> Self {
        Self::with_setup(p, |_| {})
    }

    /// Like [`ChurnState::new`], but runs `setup` on the freshly built
    /// federation before anything else happens — the hook the bench uses
    /// to enable observability without perturbing the shared schedule.
    pub fn with_setup(p: &ChurnParams, setup: impl FnOnce(&mut Federation)) -> Self {
        let cfg = RbayConfig {
            failure_detection: true,
            heartbeat_timeout: SimDuration::from_millis(400),
            commit_results: false,
            ..RbayConfig::default()
        };
        let mut fed = Federation::with_config(Topology::single_site(p.nodes, 0.5), p.seed, cfg);
        setup(&mut fed);
        let topic = fed.node(NodeAddr(0)).host.tree_topic("GPU=true", SiteId(0));
        let rng = SmallRng::seed_from_u64(p.seed ^ 0xC0FFEE);
        let holders: Vec<NodeAddr> = (0..(p.nodes / 3) as u32).map(NodeAddr).collect();
        for &h in &holders {
            fed.post_resource(h, "GPU", AttrValue::Bool(true));
        }
        fed.settle();
        fed.run_maintenance(3, SimDuration::from_millis(250));
        fed.settle();
        ChurnState {
            alive: vec![true; p.nodes],
            fed,
            topic,
            holders,
            rng,
        }
    }

    /// Crashes `frac` of the currently-alive nodes (sparing the querier
    /// corner, addresses 0–3) and returns the victims. Consumes the
    /// churn RNG identically to the bench.
    pub fn crash_epoch(&mut self, frac: f64) -> Vec<NodeAddr> {
        let n_nodes = self.alive.len();
        let victims: Vec<u32> = (4..n_nodes as u32)
            .filter(|i| self.alive[*i as usize])
            .collect::<Vec<_>>()
            .choose_multiple(&mut self.rng, ((n_nodes as f64) * frac) as usize)
            .copied()
            .collect();
        for v in &victims {
            self.alive[*v as usize] = false;
            self.fed.sim_mut().fail_node(NodeAddr(*v));
        }
        self.holders.retain(|h| self.alive[h.index()]);
        victims.into_iter().map(NodeAddr).collect()
    }

    /// The live queriers (addresses 0–3).
    pub fn live_queriers(&self) -> Vec<u32> {
        (0..4u32).filter(|i| self.alive[*i as usize]).collect()
    }

    /// Picks the recall-query origin, consuming the churn RNG
    /// identically to the bench. `None` when no querier survives.
    pub fn recall_origin(&mut self) -> Option<NodeAddr> {
        let live = self.live_queriers();
        if live.is_empty() {
            return None;
        }
        Some(NodeAddr(live[self.rng.gen_range(0..live.len())]))
    }

    /// The invariant context for the churn tree.
    pub fn invariant_ctx(&self) -> InvariantCtx {
        let mut ctx = InvariantCtx::new(self.topic, self.holders.clone());
        // Convergence after a 10–20% crash epoch can legitimately take
        // more rounds than the bench schedules; only the structural and
        // liveness oracles are regression gates here.
        ctx.check_aggregate = false;
        ctx.check_peer_symmetry = false;
        ctx
    }
}

/// Replays the churn bench's non-metrics measurement loop end to end
/// (the default schedule: no divergent decisions). Returns the final
/// state for invariant evaluation.
pub fn run_churn_default(p: &ChurnParams) -> ChurnState {
    let mut st = ChurnState::new(p);
    for _ in 0..p.epochs {
        st.crash_epoch(p.frac);
        st.fed.run_maintenance(8, SimDuration::from_millis(250));
        st.fed.settle();

        let live_queriers = st.live_queriers();
        if live_queriers.is_empty() || st.holders.is_empty() {
            break;
        }
        for q in 0..3 {
            let origin = NodeAddr(live_queriers[q % live_queriers.len()]);
            st.fed
                .issue_query(
                    origin,
                    "SELECT 1 FROM * WHERE GPU = true",
                    Some(WORKLOAD_PASSWORD),
                )
                .expect("static query parses");
            st.fed.settle();
            let horizon = st.fed.sim().now() + SimDuration::from_millis(2_500);
            st.fed.run_until(horizon);
        }
        let origin = st.recall_origin().expect("checked non-empty");
        st.fed
            .issue_query(
                origin,
                &format!("SELECT {} FROM * WHERE GPU = true", st.holders.len().max(1)),
                Some(WORKLOAD_PASSWORD),
            )
            .expect("static query parses");
        st.fed.settle();
        let horizon = st.fed.sim().now() + SimDuration::from_secs(4);
        st.fed.run_until(horizon);
    }
    st.fed.settle();
    st
}

/// Outcome of the fig8 probe-routing core: how many of the routed probes
/// arrived.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Outcome {
    /// Probes delivered to their key's responsible node.
    pub delivered: usize,
    /// Probes routed.
    pub expected: usize,
}

/// Replays the fig8 benches' probe-routing core: a seeded `nodes`-node
/// overlay over which `queries` probes are routed, each to a unique
/// attribute key (the fig8a schedule; fig8b differs only in key choice,
/// which routing-delivery loss does not depend on). The invariant is
/// exactly-once delivery.
pub fn run_fig8_default(nodes: usize, queries: usize, seed: u64) -> Fig8Outcome {
    use pastry::{seed_overlay, NodeId, NodeInfo, PastryApp, PastryMsg, PastryNode, SimNet};
    use simnet::{Actor, Context, MessageSize, SimTime, Simulation};

    #[derive(Debug, Clone, Copy)]
    struct Probe;
    impl MessageSize for Probe {}

    #[derive(Default)]
    struct Counter {
        delivered: usize,
    }
    impl PastryApp<Probe> for Counter {
        fn deliver<N: pastry::Net<Probe>>(
            &mut self,
            _node: &mut PastryNode,
            _net: &mut N,
            _key: NodeId,
            _payload: Probe,
            _hops: u16,
        ) {
            self.delivered += 1;
        }
        fn receive_direct<N: pastry::Net<Probe>>(
            &mut self,
            _node: &mut PastryNode,
            _net: &mut N,
            _from: NodeAddr,
            _payload: Probe,
        ) {
        }
    }

    struct Agent {
        node: PastryNode,
        app: Counter,
    }
    impl Actor for Agent {
        type Msg = PastryMsg<Probe>;
        fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
            let Agent { node, app } = self;
            let mut net = SimNet::new(ctx);
            node.on_message(&mut net, app, from, msg);
        }
    }

    let mut nodes_v: Vec<PastryNode> = (0..nodes as u32)
        .map(|i| {
            PastryNode::new(NodeInfo {
                id: NodeId::hash_of(format!("agent:{i}").as_bytes()),
                addr: NodeAddr(i),
                site: SiteId(0),
            })
        })
        .collect();
    seed_overlay(&mut nodes_v, |_, _| 0.0);
    let mut seeded = nodes_v.into_iter();
    let mut sim = Simulation::new(Topology::single_site(nodes, 0.5), seed, |_| Agent {
        node: seeded.next().expect("one node per address"),
        app: Counter::default(),
    });
    for q in 0..queries {
        let key = NodeId::hash_of(format!("attr:{seed}:{q}").as_bytes());
        let src = NodeAddr(((q * 7919 + seed as usize) % nodes) as u32);
        sim.schedule_call(SimTime::ZERO, src, move |a, ctx| {
            let Agent { node, app } = a;
            let mut net = SimNet::new(ctx);
            node.route(&mut net, app, key, Probe, None);
        });
    }
    sim.run_until_idle();
    let delivered = sim.actors().map(|(_, a)| a.app.delivered).sum();
    Fig8Outcome {
        delivered,
        expected: queries,
    }
}
