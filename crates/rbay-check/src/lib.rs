//! # rbay-check — systematic interleaving exploration for the RBAY planes
//!
//! A Loom/Shuttle-style stateless model checker for the Scribe/Pastry
//! protocol stack. Instead of running `simnet` in one seed-determined
//! event order and hoping bugs surface, `rbay-check` drives small
//! configurations through *all* bounded interleavings of co-enabled
//! events — with message drops and node crashes folded into the explored
//! choice space — and evaluates protocol invariants after every step:
//!
//! * single live root per topic tree;
//! * no double-counted aggregate (no persistent dual attachment);
//! * no permanently orphaned subscriber after quiescence;
//! * no permanently evicted live peer, and peer-set symmetry after
//!   gossip convergence;
//! * **no committed query lost** — every query issued from a live origin
//!   completes (the ROADMAP-1 reflex).
//!
//! The engine side lives in `simnet`: a [`simnet::Scheduler`] decides
//! which ready event fires next, `simnet::ExploreScheduler` runs
//! iterative-deepening DFS with sleep-set partial-order reduction
//! (events on disjoint nodes commute), and `simnet::ReplayScheduler`
//! re-executes a recorded decision trace. This crate adds the scenarios,
//! the invariant oracles, the `.schedule` counterexample format with
//! delta-debugging shrink, and the run drivers. The CLI binary is
//! `rbay-bench/src/bin/rbay_check.rs`.
//!
//! ```
//! use rbay_check::{runner, scenario::CheckSpec};
//! use std::time::Duration;
//!
//! let spec = CheckSpec::subscribe_fail_repair(3, 7);
//! let report = runner::explore(
//!     &spec,
//!     &runner::ExploreOpts {
//!         budget: Duration::from_secs(2),
//!         max_runs: 50,
//!         ..Default::default()
//!     },
//! );
//! assert!(report.violations.is_empty(), "{:?}", report.violations);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;
pub mod runner;
pub mod scenario;
pub mod schedule;

pub use invariants::{InvariantCtx, Violation};
pub use runner::{explore, explore_random, replay, shrink, Counterexample, ExploreOpts};
pub use scenario::{
    run_churn_default, run_fig8_default, CheckSpec, ChurnParams, ChurnState, Fig8Outcome,
    ScenarioKind,
};
pub use schedule::ScheduleFile;
