//! The `.schedule` counterexample format: a plain-text, line-oriented
//! serialization of everything needed to reproduce a violating run —
//! the scenario spec plus the decision trace's divergences from the
//! default earliest-event order.
//!
//! ```text
//! # rbay-check schedule v1
//! scenario subscribe-fail-repair
//! nodes 3
//! seed 7
//! rounds 10
//! max-drops 2
//! max-crashes 1
//! horizon-ms 700
//! violation lost-query
//! step 12 drop seq=345
//! step 23 crash node=2
//! step 30 fire seq=401
//! ```
//!
//! Only divergences are recorded: at every unlisted step the replayer
//! fires the earliest ready event, which is exactly what the original
//! run did. Determinism of the engine (same decision prefix ⇒ same
//! event sequence numbers) makes the `seq=` references stable.

use crate::scenario::{CheckSpec, ScenarioKind};
use simnet::{Choice, NodeAddr, SimDuration};

/// A parsed (or to-be-written) schedule file.
#[derive(Debug, Clone)]
pub struct ScheduleFile {
    /// The scenario to rebuild.
    pub spec: CheckSpec,
    /// The violation kind the run exhibited (matched during shrinking).
    pub violation: Option<String>,
    /// Divergent decisions, by step.
    pub directives: Vec<(usize, Choice)>,
}

impl ScheduleFile {
    /// Renders the schedule to its text form.
    pub fn render(&self) -> String {
        let mut out = String::from("# rbay-check schedule v1\n");
        let s = &self.spec;
        out.push_str(&format!("scenario {}\n", s.kind.name()));
        out.push_str(&format!("nodes {}\n", s.nodes));
        out.push_str(&format!("seed {}\n", s.seed));
        out.push_str(&format!("rounds {}\n", s.rounds));
        out.push_str(&format!("max-drops {}\n", s.max_drops));
        out.push_str(&format!("max-crashes {}\n", s.max_crashes));
        out.push_str(&format!("horizon-ms {}\n", s.horizon.as_micros() / 1_000));
        if s.strict_recall {
            out.push_str("strict-recall true\n");
        }
        if s.kind == ScenarioKind::BenchChurn {
            out.push_str(&format!(
                "churn-frac-pct {}\n",
                (s.churn_frac * 100.0) as u64
            ));
            out.push_str(&format!("epochs {}\n", s.epochs));
        }
        if s.kind == ScenarioKind::BenchFig8 {
            out.push_str(&format!("queries {}\n", s.queries));
        }
        if let Some(v) = &self.violation {
            out.push_str(&format!("violation {v}\n"));
        }
        for (step, c) in &self.directives {
            match c {
                Choice::Fire(seq) => out.push_str(&format!("step {step} fire seq={seq}\n")),
                Choice::Drop(seq) => out.push_str(&format!("step {step} drop seq={seq}\n")),
                Choice::Crash(n) => out.push_str(&format!("step {step} crash node={}\n", n.0)),
            }
        }
        out
    }

    /// Parses the text form. Unknown keys are rejected so stale files
    /// fail loudly instead of replaying something else.
    pub fn parse(text: &str) -> Result<ScheduleFile, String> {
        let mut kind = None;
        let mut nodes = 3usize;
        let mut seed = 0u64;
        let mut rounds = 10u32;
        let mut max_drops = 0usize;
        let mut max_crashes = 0usize;
        let mut horizon_ms = 0u64;
        let mut strict_recall = false;
        let mut churn_frac = 0.0f64;
        let mut epochs = 0u32;
        let mut queries = 0usize;
        let mut violation = None;
        let mut directives = Vec::new();

        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().unwrap_or_default();
            let err = |what: &str| format!("line {}: {what}: {line:?}", ln + 1);
            let mut val = || it.next().ok_or_else(|| err("missing value"));
            match key {
                "scenario" => {
                    let name = val()?;
                    kind = Some(ScenarioKind::parse(name).ok_or_else(|| err("unknown scenario"))?);
                }
                "nodes" => nodes = val()?.parse().map_err(|_| err("bad nodes"))?,
                "seed" => seed = val()?.parse().map_err(|_| err("bad seed"))?,
                "rounds" => rounds = val()?.parse().map_err(|_| err("bad rounds"))?,
                "max-drops" => max_drops = val()?.parse().map_err(|_| err("bad max-drops"))?,
                "max-crashes" => {
                    max_crashes = val()?.parse().map_err(|_| err("bad max-crashes"))?
                }
                "horizon-ms" => horizon_ms = val()?.parse().map_err(|_| err("bad horizon-ms"))?,
                "strict-recall" => strict_recall = val()? == "true",
                "churn-frac-pct" => {
                    let pct: u64 = val()?.parse().map_err(|_| err("bad churn-frac-pct"))?;
                    churn_frac = pct as f64 / 100.0;
                }
                "epochs" => epochs = val()?.parse().map_err(|_| err("bad epochs"))?,
                "queries" => queries = val()?.parse().map_err(|_| err("bad queries"))?,
                "violation" => violation = Some(val()?.to_string()),
                "step" => {
                    let step: usize = val()?.parse().map_err(|_| err("bad step"))?;
                    let action = it.next().ok_or_else(|| err("missing action"))?;
                    let operand = it.next().ok_or_else(|| err("missing operand"))?;
                    let choice = match action {
                        "fire" | "drop" => {
                            let seq: u64 = operand
                                .strip_prefix("seq=")
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err("bad seq operand"))?;
                            if action == "fire" {
                                Choice::Fire(seq)
                            } else {
                                Choice::Drop(seq)
                            }
                        }
                        "crash" => {
                            let n: u32 = operand
                                .strip_prefix("node=")
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err("bad node operand"))?;
                            Choice::Crash(NodeAddr(n))
                        }
                        _ => return Err(err("unknown action")),
                    };
                    directives.push((step, choice));
                }
                _ => return Err(err("unknown key")),
            }
        }

        let kind = kind.ok_or_else(|| "missing `scenario` line".to_string())?;
        Ok(ScheduleFile {
            spec: CheckSpec {
                kind,
                nodes,
                seed,
                rounds,
                max_drops,
                max_crashes,
                horizon: SimDuration::from_millis(horizon_ms),
                strict_recall,
                churn_frac,
                epochs,
                queries,
            },
            violation,
            directives,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut spec = CheckSpec::subscribe_fail_repair(3, 7);
        spec.strict_recall = true;
        let sf = ScheduleFile {
            spec,
            violation: Some("lost-query".into()),
            directives: vec![
                (12, Choice::Drop(345)),
                (23, Choice::Crash(NodeAddr(2))),
                (30, Choice::Fire(401)),
            ],
        };
        let text = sf.render();
        let back = ScheduleFile::parse(&text).unwrap();
        assert_eq!(back.spec.nodes, 3);
        assert_eq!(back.spec.seed, 7);
        assert_eq!(back.spec.max_drops, 2);
        assert!(back.spec.strict_recall);
        assert_eq!(back.violation.as_deref(), Some("lost-query"));
        assert_eq!(back.directives, sf.directives);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(ScheduleFile::parse("scenario subscribe-fail-repair\nbogus 1\n").is_err());
        assert!(
            ScheduleFile::parse("step 3 fire seq=nope\nscenario subscribe-fail-repair\n").is_err()
        );
        assert!(ScheduleFile::parse("nodes 3\n").is_err());
    }

    #[test]
    fn churn_round_trips() {
        let sf = ScheduleFile {
            spec: CheckSpec::bench_churn(30, 0.10, 4, 42),
            violation: Some("orphaned-subscriber".into()),
            directives: Vec::new(),
        };
        let back = ScheduleFile::parse(&sf.render()).unwrap();
        assert_eq!(back.spec.kind, ScenarioKind::BenchChurn);
        assert_eq!(back.spec.nodes, 30);
        assert!((back.spec.churn_frac - 0.10).abs() < 1e-9);
        assert_eq!(back.spec.epochs, 4);
    }
}
