//! The check drivers: systematic exploration, deterministic replay, and
//! delta-debugging shrink.
//!
//! Every run rebuilds the scenario from scratch ([`CheckSpec::prepare`])
//! and executes the explored window step by step: ask the scheduler for
//! a choice over the co-enabled ready set, apply it, evaluate the step
//! invariants, and — once the event store drains — the quiescence
//! oracles. Because the engine is deterministic, a run is fully
//! identified by its divergences from the default earliest-event order,
//! which is all a `.schedule` file records.

use crate::invariants::{self, StepTracker, Violation};
use crate::scenario::{
    run_churn_default, run_fig8_default, CheckSpec, ChurnParams, Prepared, ScenarioKind,
};
use crate::schedule::ScheduleFile;
use simnet::{Choice, ExploreScheduler, RandomScheduler, ReplayScheduler, Scheduler, SimDuration};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Co-enabled window: events within this span of the earliest pending
/// event are considered concurrent and may be reordered. Half a
/// heartbeat round keeps reorderings time-faithful (rounds don't swap).
pub const WINDOW: SimDuration = SimDuration::from_millis(5);

/// Per-run step budget; a run that exceeds it is a liveness violation.
pub const MAX_STEPS: usize = 6_000;

/// One executed run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Steps executed.
    pub steps: usize,
    /// Divergences from the default order, in step order.
    pub decisions: Vec<(usize, Choice)>,
    /// The violation, if the run tripped an oracle.
    pub violation: Option<Violation>,
    /// Whether the event store drained (a complete run).
    pub quiescent: bool,
    /// Whether the scheduler pruned the run (sleep-set subsumption) —
    /// pruned runs are incomplete and carry no verdict.
    pub pruned: bool,
}

impl RunOutcome {
    fn signature(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.decisions.hash(&mut h);
        h.finish()
    }
}

/// Executes one run of `spec` under `sched`.
pub fn run_one(spec: &CheckSpec, sched: &mut dyn Scheduler) -> RunOutcome {
    run_prepared(spec.prepare(), sched)
}

/// Executes one already-prepared run under `sched`. The CLI uses this
/// directly so it can force obs tracing on before a replay.
pub fn run_prepared(mut p: Prepared, sched: &mut dyn Scheduler) -> RunOutcome {
    let mut tracker = StepTracker::new(&p.ctx);
    let mut decisions = Vec::new();
    let mut violation = None;
    let mut pruned = false;
    let mut quiescent = false;
    let mut steps = 0usize;

    while steps < MAX_STEPS {
        let ready = p.fed.sim_mut().explore_ready(WINDOW);
        if ready.is_empty() {
            quiescent = true;
            break;
        }
        let Some(choice) = sched.choose(steps, &ready) else {
            pruned = true;
            break;
        };
        if choice != Choice::Fire(ready[0].seq) {
            decisions.push((steps, choice));
        }
        p.fed.sim_mut().explore_apply(choice);
        steps += 1;
        if let Some(v) = tracker.check(&p.fed, &p.ctx) {
            violation = Some(v);
            break;
        }
    }

    if violation.is_none() && !pruned {
        violation = if quiescent {
            invariants::check_quiescent(&p.fed, &p.ctx)
        } else {
            Some(Violation::NonQuiescent { steps })
        };
    }
    RunOutcome {
        steps,
        decisions,
        violation,
        quiescent,
        pruned,
    }
}

/// A violating run plus everything needed to reproduce it.
#[derive(Debug)]
pub struct Counterexample {
    /// The tripped invariant.
    pub violation: Violation,
    /// Divergent decisions reproducing it.
    pub decisions: Vec<(usize, Choice)>,
}

impl Counterexample {
    /// Serializes the counterexample to `.schedule` text.
    pub fn to_schedule(&self, spec: &CheckSpec) -> ScheduleFile {
        ScheduleFile {
            spec: spec.clone(),
            violation: Some(self.violation.kind().to_string()),
            directives: self.decisions.clone(),
        }
    }
}

/// Knobs for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Initial DFS branching depth (iterative deepening doubles it).
    pub initial_depth: usize,
    /// Depth ceiling.
    pub max_depth: usize,
    /// Wall-clock budget.
    pub budget: Duration,
    /// Run-count ceiling.
    pub max_runs: u64,
    /// Stop at the first violation instead of cataloguing all of them.
    pub stop_at_first: bool,
    /// Stop once this many distinct complete interleavings have been
    /// observed (0 = unlimited).
    pub target_distinct: u64,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            initial_depth: 6,
            max_depth: 48,
            budget: Duration::from_secs(55),
            max_runs: u64::MAX,
            stop_at_first: true,
            target_distinct: 0,
        }
    }
}

/// Exploration summary.
#[derive(Debug)]
pub struct ExploreReport {
    /// Total runs (including pruned ones).
    pub runs: u64,
    /// Distinct complete interleavings (deduplicated by decision trace —
    /// iterative deepening revisits shallow prefixes).
    pub distinct: u64,
    /// Runs pruned by the sleep set.
    pub pruned: u64,
    /// Counterexamples found.
    pub violations: Vec<Counterexample>,
    /// Whether the bounded space was fully explored.
    pub exhausted: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Systematically explores `spec`'s interleavings with iterative
/// deepening + sleep-set reduction under the given budgets.
pub fn explore(spec: &CheckSpec, opts: &ExploreOpts) -> ExploreReport {
    let faults = spec.prepare().faults;
    let mut sched = ExploreScheduler::new(opts.initial_depth, opts.max_depth, faults);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut report = ExploreReport {
        runs: 0,
        distinct: 0,
        pruned: 0,
        violations: Vec::new(),
        exhausted: false,
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    loop {
        sched.begin_run();
        let outcome = run_one(spec, &mut sched);
        report.runs += 1;
        if outcome.pruned {
            report.pruned += 1;
        } else if seen.insert(outcome.signature()) {
            report.distinct += 1;
        }
        if let Some(v) = outcome.violation {
            report.violations.push(Counterexample {
                violation: v,
                decisions: outcome.decisions,
            });
            if opts.stop_at_first {
                break;
            }
        }
        if !sched.end_run() {
            report.exhausted = true;
            break;
        }
        if report.runs >= opts.max_runs
            || (opts.target_distinct > 0 && report.distinct >= opts.target_distinct)
            || start.elapsed() >= opts.budget
        {
            break;
        }
    }
    report.elapsed = start.elapsed();
    report
}

/// Random-walk fallback for configurations too large to exhaust: `runs`
/// seeded walks with per-step fault probability `p_fault`.
pub fn explore_random(spec: &CheckSpec, runs: u64, p_fault: f64) -> ExploreReport {
    let faults = spec.prepare().faults;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut report = ExploreReport {
        runs: 0,
        distinct: 0,
        pruned: 0,
        violations: Vec::new(),
        exhausted: false,
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    for walk in 0..runs {
        let mut sched = RandomScheduler::new(spec.seed.wrapping_add(walk), faults.clone(), p_fault);
        let outcome = run_one(spec, &mut sched);
        report.runs += 1;
        if !outcome.pruned && seen.insert(outcome.signature()) {
            report.distinct += 1;
        }
        if let Some(v) = outcome.violation {
            report.violations.push(Counterexample {
                violation: v,
                decisions: outcome.decisions,
            });
            break;
        }
    }
    report.elapsed = start.elapsed();
    report
}

/// Replays a schedule deterministically. For explorable scenarios the
/// recorded divergences are re-applied step by step; for `bench:churn`
/// the deterministic bench core is re-run end to end. Returns the
/// violation the replayed run exhibits (if any).
pub fn replay(file: &ScheduleFile) -> Option<Violation> {
    match file.spec.kind {
        ScenarioKind::SubscribeFailRepair => {
            let mut sched = ReplayScheduler::new(file.directives.iter().copied());
            run_one(&file.spec, &mut sched).violation
        }
        ScenarioKind::BenchChurn => {
            let p = ChurnParams {
                nodes: file.spec.nodes,
                frac: file.spec.churn_frac,
                epochs: file.spec.epochs,
                seed: file.spec.seed,
            };
            let st = run_churn_default(&p);
            let ctx = st.invariant_ctx();
            invariants::check_quiescent(&st.fed, &ctx)
        }
        ScenarioKind::BenchFig8 => {
            let out = run_fig8_default(file.spec.nodes, file.spec.queries, file.spec.seed);
            (out.delivered != out.expected).then_some(Violation::ProbeLoss {
                delivered: out.delivered,
                expected: out.expected,
            })
        }
    }
}

/// Delta-debugging shrink: greedily removes directives while the replay
/// still exhibits the same violation kind. Returns the reduced schedule
/// (at a local minimum: no single directive can be removed).
pub fn shrink(file: &ScheduleFile) -> ScheduleFile {
    let Some(target) = file.violation.clone() else {
        return file.clone();
    };
    let mut best = file.clone();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < best.directives.len() {
            let mut candidate = best.clone();
            candidate.directives.remove(i);
            let still_fails = replay(&candidate)
                .map(|v| v.kind() == target)
                .unwrap_or(false);
            if still_fails {
                best = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return best;
        }
    }
}
