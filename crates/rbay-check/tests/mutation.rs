//! Mutation smoke: re-introduce each of the four PR-4 tree-repair bugs
//! (feature `seeded-bugs`) and assert the checker finds every one within
//! a bounded budget, that each counterexample survives a `.schedule`
//! round trip and replays to the same violation, and that shrinking
//! keeps the violation alive.
//!
//! The seeded-bug switch is process-global, so all four mutants run
//! sequentially inside ONE `#[test]`.

#![cfg(feature = "seeded-bugs")]

use rbay_check::{explore, replay, runner::ExploreOpts, shrink, CheckSpec, ScheduleFile};
use std::time::Duration;

const BUGS: [(u8, &str); 4] = [
    // Reparent omits the Leave to the old parent: the member stays in
    // two live children sets -> double-counted aggregate.
    (1, "dual-attachment"),
    // NotChild NACK ignored: the child keeps a parent that disowned it.
    (2, "detached-attachment"),
    // Peers never unsuspected on traffic: one missed heartbeat evicts a
    // live peer forever.
    (3, "evicted-live-peer"),
    // Fragment-root demotion disabled: two live roots per topic.
    (4, "multiple-roots"),
];

#[test]
fn checker_detects_all_four_seeded_pr4_bugs() {
    let spec = CheckSpec::subscribe_fail_repair(3, 7);
    let opts = ExploreOpts {
        budget: Duration::from_secs(30),
        ..Default::default()
    };

    for (bug, expected_kind) in BUGS {
        scribe::set_seeded_bug(bug);
        let report = explore(&spec, &opts);
        scribe::set_seeded_bug(0);

        let cx = report
            .violations
            .first()
            .unwrap_or_else(|| panic!("seeded bug {bug} not detected in {} runs", report.runs));
        assert_eq!(
            cx.violation.kind(),
            expected_kind,
            "seeded bug {bug} tripped the wrong oracle: {}",
            cx.violation
        );

        // The counterexample must survive a text round trip and replay
        // deterministically to the same violation.
        let schedule = cx.to_schedule(&spec);
        let text = schedule.render();
        let parsed = ScheduleFile::parse(&text).expect("rendered schedule parses");

        scribe::set_seeded_bug(bug);
        let replayed = replay(&parsed);
        scribe::set_seeded_bug(0);
        assert_eq!(
            replayed.as_ref().map(|v| v.kind()),
            Some(expected_kind),
            "seeded bug {bug}: replay of {text:?} did not reproduce"
        );

        // Shrinking must keep the violation alive and never grow the
        // schedule.
        scribe::set_seeded_bug(bug);
        let reduced = shrink(&parsed);
        let re_replayed = replay(&reduced);
        scribe::set_seeded_bug(0);
        assert!(reduced.directives.len() <= parsed.directives.len());
        assert_eq!(
            re_replayed.as_ref().map(|v| v.kind()),
            Some(expected_kind),
            "seeded bug {bug}: shrunk schedule no longer reproduces"
        );
    }
}
