//! Replays the PR-8 `no-live-root` counterexample: the 20% churn
//! schedule that used to leave the GPU tree rootless mid-repair. With
//! k-replicated rendezvous state and warm promotion the schedule must
//! now pass every quiescence oracle, including the new
//! replica-consistency invariant.

use rbay_check::invariants;
use rbay_check::scenario::{run_churn_default, ChurnParams};

/// At bench scale (120 nodes) the routing tables, not the leaf set, carry
/// most routes — so a dead routing-table entry that failure detection
/// never probes silently blackholes every rejoin routed through it,
/// leaving orphaned tree fragments. Guards the known-peers heartbeat
/// coverage.
#[test]
fn full_scale_churn_leaves_no_orphaned_fragments() {
    let st = run_churn_default(&ChurnParams {
        nodes: 120,
        frac: 0.05,
        epochs: 4,
        seed: 42,
    });
    let ctx = st.invariant_ctx();
    let violation = invariants::check_quiescent(&st.fed, &ctx);
    if violation.is_some() {
        dump_tree(&st, 120);
    }
    assert!(violation.is_none(), "quiescence violation: {violation:?}");
}

#[test]
fn pr8_no_live_root_schedule_replays_clean() {
    let st = run_churn_default(&ChurnParams {
        nodes: 30,
        frac: 0.20,
        epochs: 4,
        seed: 43,
    });
    let ctx = st.invariant_ctx();
    let violation = invariants::check_quiescent(&st.fed, &ctx);
    if violation.is_some() {
        dump_tree(&st, 30);
    }
    assert!(violation.is_none(), "quiescence violation: {violation:?}");
}

/// Prints every live node's tree and replica state so a regression is
/// diagnosable straight from CI logs.
fn dump_tree(st: &rbay_check::scenario::ChurnState, nodes: u32) {
    let alive: Vec<u32> = (0..nodes)
        .filter(|n| !st.fed.sim().is_failed(simnet::NodeAddr(*n)))
        .collect();
    eprintln!("alive: {alive:?}");
    for &n in &alive {
        let addr = simnet::NodeAddr(n);
        if let Some(ts) = st.fed.node(addr).scribe.topic(st.topic) {
            eprintln!(
                "node {n}: root={} parent={:?} children={:?} subscribed={}",
                ts.is_root, ts.parent, ts.children, ts.subscribed
            );
        }
        for (t, rep) in st.fed.node(addr).scribe.replicas() {
            if *t == st.topic {
                eprintln!("node {n}: replica of {:?} age {}", rep.root, rep.age);
            }
        }
        eprintln!("node {n}: suspected={:?}", st.fed.node(addr).host.suspected);
    }
}
