//! Checker soundness on correct code: bounded exploration finds no
//! violations, replays are deterministic, and the acceptance-scale
//! exploration (>= 10k distinct interleavings, < 60 s) holds.

use rbay_check::runner::{self, ExploreOpts};
use rbay_check::{explore, explore_random, replay, CheckSpec, ScheduleFile};
use simnet::{EarliestFirst, ReplayScheduler};
use std::time::Duration;

#[test]
fn correct_code_has_no_violations_in_bounded_exploration() {
    let spec = CheckSpec::subscribe_fail_repair(3, 7);
    let report = explore(
        &spec,
        &ExploreOpts {
            budget: Duration::from_secs(10),
            target_distinct: 1_500,
            ..Default::default()
        },
    );
    assert!(
        report.violations.is_empty(),
        "false positive on correct code: {:?}",
        report.violations[0].violation
    );
    assert!(report.distinct > 100, "explorer barely moved: {report:?}");
}

#[test]
fn correct_code_survives_random_walks() {
    let spec = CheckSpec::subscribe_fail_repair(4, 11);
    let report = explore_random(&spec, 40, 0.02);
    assert!(
        report.violations.is_empty(),
        "false positive on correct code: {:?}",
        report.violations[0].violation
    );
}

#[test]
fn default_schedule_replays_deterministically() {
    let spec = CheckSpec::subscribe_fail_repair(3, 7);
    let run = |spec: &CheckSpec| {
        let mut sched = EarliestFirst;
        runner::run_one(spec, &mut sched)
    };
    let a = run(&spec);
    let b = run(&spec);
    assert!(a.violation.is_none(), "{:?}", a.violation);
    assert!(a.quiescent);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.decisions, b.decisions);
}

#[test]
fn divergent_schedule_replays_deterministically() {
    // Record a real divergent run (skew the first explored step), then
    // replay its schedule twice and demand identical outcomes.
    let spec = CheckSpec::subscribe_fail_repair(3, 7);
    let ready = {
        let mut p = spec.prepare();
        p.fed.sim_mut().explore_ready(runner::WINDOW)
    };
    assert!(ready.len() > 1, "scenario must open with co-enabled events");
    let directives = vec![(0usize, simnet::Choice::Fire(ready[1].seq))];

    let run = |d: &[(usize, simnet::Choice)]| {
        let mut sched = ReplayScheduler::new(d.iter().copied());
        runner::run_one(&spec, &mut sched)
    };
    let a = run(&directives);
    let b = run(&directives);
    assert_eq!(a.decisions, directives);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.violation.is_none(), b.violation.is_none());
}

#[test]
fn schedule_file_replay_matches_direct_run() {
    let spec = CheckSpec::subscribe_fail_repair(3, 7);
    let file = ScheduleFile {
        spec: spec.clone(),
        violation: None,
        directives: Vec::new(),
    };
    let parsed = ScheduleFile::parse(&file.render()).expect("round trip");
    assert!(replay(&parsed).is_none());
}

/// The ISSUE acceptance run: >= 10_000 distinct interleavings of the
/// 3-node subscribe-fail-repair scenario in under 60 s. Wall-clock
/// sensitive, so it is `#[ignore]`d from the default suite and executed
/// explicitly by the CI `check` job.
#[test]
#[ignore = "wall-clock acceptance run; executed by the CI check job"]
fn ten_thousand_distinct_interleavings_within_60s() {
    let spec = CheckSpec::subscribe_fail_repair(3, 7);
    let report = explore(
        &spec,
        &ExploreOpts {
            budget: Duration::from_secs(58),
            target_distinct: 10_000,
            ..Default::default()
        },
    );
    assert!(
        report.violations.is_empty(),
        "false positive on correct code: {:?}",
        report.violations[0].violation
    );
    assert!(
        report.distinct >= 10_000,
        "only {} distinct interleavings in {:?}",
        report.distinct,
        report.elapsed
    );
    assert!(report.elapsed < Duration::from_secs(60));
}
