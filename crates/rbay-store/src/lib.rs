//! Durable node state for the RBAY federation (DESIGN.md §18).
//!
//! Every `rbay-node` was amnesiac before this crate existed: a restart
//! lost the attribute map, the installed AA handlers, and every tree
//! subscription, so the only recovery path was full re-installation. This
//! crate gives `RbayHost` a self-contained durability engine:
//!
//! * **WAL** — every state mutation (attribute upsert/delete, handler
//!   install/uninstall with its source text, subscription add/remove,
//!   reservation commit/release) is appended to an append-only log before
//!   the mutation is acknowledged. Records are encoded with the
//!   hostile-input-hardened `rbay-wire` varint codec and framed with a
//!   `[len u32][crc32 u32][body]` header, so a torn tail, a truncated
//!   file, or a flipped bit is detected and cleanly discarded — replay
//!   always recovers the longest valid prefix and never panics (pinned by
//!   the crash-recovery proptests in `tests/recovery.rs`).
//! * **Snapshots** — when the WAL crosses a record-count or byte
//!   threshold, the full [`DurableState`] image is written to a new
//!   snapshot file (write + fsync + atomic rename), the WAL starts a new
//!   generation, and a `MANIFEST` — itself replaced atomically — points
//!   at the live `(snapshot, wal)` pair. Old generations are deleted
//!   after the manifest commits, so a crash at any instant leaves either
//!   the old pair or the new pair fully intact.
//! * **Fsync policy** — [`FsyncPolicy::Always`] syncs every append (the
//!   paranoid default for single-record durability), [`FsyncPolicy::Batch`]
//!   syncs on explicit [`Store::flush`] calls (the daemon flushes once
//!   per tick and on shutdown), [`FsyncPolicy::Never`] is for tests.
//!
//! The crate is deliberately ignorant of `rbay-core`: it persists raw
//! query ids (`u64`) and AA source text (`String`), and the host replays
//! them through its own install paths — so recovered handler sources are
//! re-linted under the *current* `LintPolicy` on restore, not the policy
//! that admitted them originally.

mod record;
mod store;
mod wal;

pub use record::{DurableState, StoreStats, WalRecord};
pub use store::{FsyncPolicy, ReplayReport, Store};
pub use wal::{crc32, frame_record, replay, TornReason, WalScan, RECORD_HEADER_LEN};
