//! WAL record framing and prefix-recovering replay.
//!
//! On disk a WAL is a flat sequence of frames:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [body: len bytes]
//! ```
//!
//! where `body` is `rbay_wire::encode_frame(&record)` (version byte +
//! varint-encoded [`WalRecord`](crate::WalRecord)) and `crc32` is the
//! IEEE CRC-32 of `body`. The header is fixed-width so a reader never has
//! to guess where a record starts; the CRC makes any torn or corrupted
//! suffix detectable, and replay simply stops at the first frame that
//! fails validation — everything before it is intact by construction.

use crate::record::WalRecord;
use rbay_wire::{decode_frame, encode_frame, MAX_FRAME_LEN};

/// Fixed bytes before each record body: length + CRC.
pub const RECORD_HEADER_LEN: usize = 8;

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/Ethernet polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Appends one framed record to `out` and returns the frame's total size.
pub fn frame_record(out: &mut Vec<u8>, rec: &WalRecord) -> usize {
    let body = encode_frame(rec);
    debug_assert!(body.len() <= MAX_FRAME_LEN, "oversized WAL record");
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    RECORD_HEADER_LEN + body.len()
}

/// Why a replay stopped before the end of the input. Every variant is a
/// *recovered* condition, not an error: the prefix before the stop point
/// is fully valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`RECORD_HEADER_LEN`] bytes remained (torn header).
    TornHeader,
    /// The announced length exceeded the remaining bytes (torn body) or
    /// the [`MAX_FRAME_LEN`] cap (corrupt length).
    TornBody,
    /// The body's CRC did not match the header.
    BadCrc,
    /// The CRC matched but the body did not decode as a record — only
    /// reachable via a corrupted write, since appends encode before
    /// checksumming.
    BadDecode,
}

/// The outcome of scanning one WAL image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalScan {
    /// Records recovered.
    pub records: u64,
    /// Bytes of valid prefix (the safe truncation point for re-opening
    /// the file in append mode).
    pub valid_bytes: usize,
    /// Why the scan stopped early, if it did not consume every byte.
    pub torn: Option<TornReason>,
}

/// Replays every valid prefix record of `bytes` through `f`, stopping
/// cleanly at the first torn or corrupt frame. Never panics on any input.
pub fn replay(bytes: &[u8], mut f: impl FnMut(WalRecord)) -> WalScan {
    let mut pos = 0usize;
    let mut records = 0u64;
    let torn = loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break None;
        }
        if remaining < RECORD_HEADER_LEN {
            break Some(TornReason::TornHeader);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN || len > remaining - RECORD_HEADER_LEN {
            break Some(TornReason::TornBody);
        }
        let body = &bytes[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
        if crc32(body) != crc {
            break Some(TornReason::BadCrc);
        }
        match decode_frame::<WalRecord>(body) {
            Ok(rec) => f(rec),
            Err(_) => break Some(TornReason::BadDecode),
        }
        pos += RECORD_HEADER_LEN + len;
        records += 1;
    };
    WalScan {
        records,
        valid_bytes: pos,
        torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbay_query::AttrValue;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    fn sample(n: usize) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord::AttrPut {
                attr: format!("attr-{i}"),
                value: AttrValue::Num(i as f64),
            })
            .collect()
    }

    #[test]
    fn replay_round_trips() {
        let recs = sample(5);
        let mut buf = Vec::new();
        for r in &recs {
            frame_record(&mut buf, r);
        }
        let mut out = Vec::new();
        let scan = replay(&buf, |r| out.push(r));
        assert_eq!(out, recs);
        assert_eq!(scan.records, 5);
        assert_eq!(scan.valid_bytes, buf.len());
        assert_eq!(scan.torn, None);
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let recs = sample(3);
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for r in &recs {
            frame_record(&mut buf, r);
            ends.push(buf.len());
        }
        // Cut mid-way through the last record's body.
        let cut = ends[1] + 3;
        let mut out = Vec::new();
        let scan = replay(&buf[..cut], |r| out.push(r));
        assert_eq!(out, recs[..2]);
        assert_eq!(scan.valid_bytes, ends[1]);
        assert!(scan.torn.is_some());
    }

    #[test]
    fn replay_stops_at_bit_flip() {
        let recs = sample(3);
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for r in &recs {
            frame_record(&mut buf, r);
            ends.push(buf.len());
        }
        // Flip one bit inside the second record's body.
        let target = ends[0] + RECORD_HEADER_LEN + 1;
        buf[target] ^= 0x10;
        let mut out = Vec::new();
        let scan = replay(&buf, |r| out.push(r));
        assert_eq!(out, recs[..1]);
        assert_eq!(scan.valid_bytes, ends[0]);
        assert_eq!(scan.torn, Some(TornReason::BadCrc));
    }
}
