//! The durable store: a live `(snapshot, wal)` generation pair under one
//! data directory, compacted by threshold and switched atomically.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/MANIFEST            text, replaced by atomic rename
//! <dir>/snapshot-<gen>.snap one framed DurableState image (absent at gen 0)
//! <dir>/wal-<gen>.log       framed WalRecords appended since the snapshot
//! ```
//!
//! The manifest commits a generation: a crash before the rename leaves the
//! old pair live and the half-written new files orphaned (deleted on the
//! next successful compaction); a crash after leaves the new pair live.
//! Orphans are harmless — open only reads what the manifest names.

use crate::record::{DurableState, StoreStats, WalRecord};
use crate::wal::{self, frame_record};
use rbay_wire::{decode_frame, Wire};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// When appended records reach disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: no acknowledged record is ever
    /// lost, at the cost of one sync per mutation.
    Always,
    /// Sync only on explicit [`Store::flush`] calls; the daemon flushes
    /// once per tick and on shutdown, bounding loss to one tick.
    Batch,
    /// Never sync (tests and throwaway runs).
    Never,
}

impl FsyncPolicy {
    /// Parses a `--fsync` flag value.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// What [`Store::open`] found and recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Whether a snapshot file was loaded.
    pub snapshot_loaded: bool,
    /// Whether a named snapshot failed validation and was discarded (the
    /// store then recovers from the WAL alone — best effort, never fatal).
    pub snapshot_corrupt: bool,
    /// WAL records replayed.
    pub wal_records: u64,
    /// Bytes of torn/corrupt WAL tail discarded (file truncated to the
    /// valid prefix).
    pub torn_bytes: u64,
    /// Wall-clock microseconds spent loading snapshot + WAL.
    pub replay_micros: u64,
}

/// Compact once the live WAL holds this many records…
const SNAPSHOT_RECORDS: u64 = 4096;
/// …or this many bytes, whichever comes first.
const SNAPSHOT_BYTES: u64 = 4 * 1024 * 1024;

/// The durability engine one host owns. All methods return `io::Error`
/// only for environmental failures (disk full, permissions); corrupt or
/// torn *contents* are always recovered, never errors.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    fsync: FsyncPolicy,
    gen: u64,
    wal: File,
    state: DurableState,
    stats: StoreStats,
    snapshot_records: u64,
    snapshot_bytes: u64,
    dirty: bool,
    buf: Vec<u8>,
}

fn wal_name(gen: u64) -> String {
    format!("wal-{gen}.log")
}

fn snap_name(gen: u64) -> String {
    format!("snapshot-{gen}.snap")
}

fn sync_dir(dir: &Path) {
    // Directory fsync makes the rename itself durable; failure here is
    // not actionable (some filesystems refuse it), so best effort.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Store {
    /// Opens (or initializes) the store under `dir`: reads the manifest,
    /// loads the snapshot it names, replays the WAL, truncates any torn
    /// tail, and leaves the WAL open for append.
    pub fn open(dir: &Path, fsync: FsyncPolicy) -> std::io::Result<(Store, ReplayReport)> {
        fs::create_dir_all(dir)?;
        let started = Instant::now();
        let mut report = ReplayReport::default();
        let (gen, snap_file) = read_manifest(dir);
        let mut state = DurableState::default();
        if let Some(name) = &snap_file {
            match load_snapshot(&dir.join(name)) {
                Some(s) => {
                    state = s;
                    report.snapshot_loaded = true;
                }
                None => report.snapshot_corrupt = true,
            }
        }
        let wal_path = dir.join(wal_name(gen));
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;
        let mut records = 0u64;
        let scan = wal::replay(&bytes, |rec| {
            state.apply(&rec);
            records += 1;
        });
        if scan.valid_bytes < bytes.len() {
            report.torn_bytes = (bytes.len() - scan.valid_bytes) as u64;
            wal.set_len(scan.valid_bytes as u64)?;
        }
        wal.seek(SeekFrom::Start(scan.valid_bytes as u64))?;
        report.wal_records = records;
        report.replay_micros = started.elapsed().as_micros() as u64;
        let store = Store {
            dir: dir.to_path_buf(),
            fsync,
            gen,
            wal,
            state,
            stats: StoreStats {
                replay_records: records,
                replay_micros: report.replay_micros,
                wal_bytes: scan.valid_bytes as u64,
                wal_records: records,
                ..StoreStats::default()
            },
            snapshot_records: SNAPSHOT_RECORDS,
            snapshot_bytes: SNAPSHOT_BYTES,
            dirty: false,
            buf: Vec::with_capacity(256),
        };
        // A fresh directory gets its manifest immediately so a crash
        // between first append and first compaction still names the WAL.
        if !dir.join("MANIFEST").exists() {
            store.write_manifest()?;
        }
        Ok((store, report))
    }

    /// The recovered (and continuously maintained) state image.
    pub fn state(&self) -> &DurableState {
        &self.state
    }

    /// Store health counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Bumps the restore-time re-lint rejection counter (owned by the
    /// host, surfaced with the rest of the store stats).
    pub fn note_relint_reject(&mut self) {
        self.stats.relint_rejects += 1;
    }

    /// Overrides the compaction thresholds (tests use tiny ones).
    pub fn set_snapshot_thresholds(&mut self, records: u64, bytes: u64) {
        self.snapshot_records = records.max(1);
        self.snapshot_bytes = bytes.max(1);
    }

    /// Appends one record — unless it would not change state, in which
    /// case it is skipped (returns `Ok(false)`). The record is on disk
    /// (modulo fsync policy) before this returns, i.e. before the caller
    /// acknowledges the mutation. May trigger a snapshot compaction.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<bool> {
        if self.state.is_noop(rec) {
            self.stats.dedup_skips += 1;
            return Ok(false);
        }
        self.buf.clear();
        frame_record(&mut self.buf, rec);
        self.wal.write_all(&self.buf)?;
        self.stats.wal_bytes += self.buf.len() as u64;
        self.stats.wal_records += 1;
        self.stats.appends += 1;
        match self.fsync {
            FsyncPolicy::Always => self.wal.sync_data()?,
            FsyncPolicy::Batch => self.dirty = true,
            FsyncPolicy::Never => {}
        }
        self.state.apply(rec);
        if self.stats.wal_records >= self.snapshot_records
            || self.stats.wal_bytes >= self.snapshot_bytes
        {
            self.snapshot()?;
        }
        Ok(true)
    }

    /// Syncs any unsynced appends (a no-op under `Always`/`Never` or when
    /// nothing is pending).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.dirty && self.fsync == FsyncPolicy::Batch {
            self.wal.sync_data()?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Takes a snapshot now: writes the full state image to a new
    /// generation, commits it via the manifest, starts an empty WAL, and
    /// deletes the previous generation's files.
    pub fn snapshot(&mut self) -> std::io::Result<()> {
        let old_gen = self.gen;
        let new_gen = self.gen + 1;
        // 1. Snapshot image: tmp + fsync + rename.
        let snap_path = self.dir.join(snap_name(new_gen));
        let tmp_path = self.dir.join(format!("{}.tmp", snap_name(new_gen)));
        {
            let framed = rbay_wire::encode_frame(&SnapshotImage(&self.state));
            let mut image = Vec::with_capacity(framed.len() + wal::RECORD_HEADER_LEN);
            image.extend_from_slice(&(framed.len() as u32).to_le_bytes());
            image.extend_from_slice(&wal::crc32(&framed).to_le_bytes());
            image.extend_from_slice(&framed);
            let mut f = File::create(&tmp_path)?;
            f.write_all(&image)?;
            if self.fsync != FsyncPolicy::Never {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp_path, &snap_path)?;
        // 2. Fresh WAL for the new generation.
        let new_wal_path = self.dir.join(wal_name(new_gen));
        let new_wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&new_wal_path)?;
        // 3. Commit: the manifest rename flips both files at once.
        self.gen = new_gen;
        self.wal = new_wal;
        self.dirty = false;
        self.stats.wal_bytes = 0;
        self.stats.wal_records = 0;
        self.stats.snapshots += 1;
        self.write_manifest()?;
        // 4. Old generation is dead; reclaim (best effort).
        let _ = fs::remove_file(self.dir.join(wal_name(old_gen)));
        if old_gen > 0 {
            let _ = fs::remove_file(self.dir.join(snap_name(old_gen)));
        }
        Ok(())
    }

    fn write_manifest(&self) -> std::io::Result<()> {
        let tmp = self.dir.join("MANIFEST.tmp");
        let snap = if self.gen == 0 {
            "-".to_owned()
        } else {
            snap_name(self.gen)
        };
        let text = format!(
            "rbay-store v1\ngen={}\nsnapshot={}\nwal={}\n",
            self.gen,
            snap,
            wal_name(self.gen)
        );
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            if self.fsync != FsyncPolicy::Never {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, self.dir.join("MANIFEST"))?;
        if self.fsync != FsyncPolicy::Never {
            sync_dir(&self.dir);
        }
        Ok(())
    }
}

/// Wrapper so a snapshot body reuses `encode_frame` without cloning the
/// state map.
struct SnapshotImage<'a>(&'a DurableState);

impl Wire for SnapshotImage<'_> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn decode(_r: &mut rbay_wire::Reader<'_>) -> Result<Self, rbay_wire::WireError> {
        unreachable!("snapshots decode as DurableState")
    }
}

/// Reads `(gen, snapshot file)` from the manifest; a missing or corrupt
/// manifest means generation 0 with no snapshot (a fresh store — atomic
/// manifest replacement guarantees we never see a half-written one).
fn read_manifest(dir: &Path) -> (u64, Option<String>) {
    let Ok(text) = fs::read_to_string(dir.join("MANIFEST")) else {
        return (0, None);
    };
    let mut gen = 0u64;
    let mut snap = None;
    let mut ok = false;
    for (i, line) in text.lines().enumerate() {
        if i == 0 {
            ok = line == "rbay-store v1";
            if !ok {
                break;
            }
            continue;
        }
        if let Some(v) = line.strip_prefix("gen=") {
            gen = v.parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("snapshot=") {
            if v != "-" {
                snap = Some(v.to_owned());
            }
        }
    }
    if ok {
        (gen, snap)
    } else {
        (0, None)
    }
}

/// Loads and validates one snapshot image; `None` on any corruption.
fn load_snapshot(path: &Path) -> Option<DurableState> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < wal::RECORD_HEADER_LEN {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len != bytes.len() - wal::RECORD_HEADER_LEN {
        return None;
    }
    let body = &bytes[wal::RECORD_HEADER_LEN..];
    if wal::crc32(body) != crc {
        return None;
    }
    decode_frame::<DurableState>(body).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbay_query::AttrValue;
    use scribe::TopicId;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rbay-store-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn put(i: u64) -> WalRecord {
        WalRecord::AttrPut {
            attr: format!("a{i}"),
            value: AttrValue::Num(i as f64),
        }
    }

    #[test]
    fn reopen_recovers_state() {
        let dir = tmp_dir("reopen");
        {
            let (mut s, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
            s.append(&put(1)).unwrap();
            s.append(&WalRecord::NodeAaInstall {
                source: "AA = {}".into(),
            })
            .unwrap();
            s.append(&WalRecord::SubAdd {
                topic: TopicId::new("cpu=idle", "creator"),
                scope: None,
            })
            .unwrap();
            s.append(&WalRecord::Commit { query: 42 }).unwrap();
        }
        let (s, report) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(report.wal_records, 4);
        assert_eq!(s.state().attrs.get("a1"), Some(&AttrValue::Num(1.0)));
        assert_eq!(s.state().node_aa.as_deref(), Some("AA = {}"));
        assert_eq!(s.state().subs.len(), 1);
        assert!(s.state().committed.contains(&42));
        assert_eq!(s.state().reserved, Some(42));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dedup_skips_noop_appends() {
        let dir = tmp_dir("dedup");
        let (mut s, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(s.append(&put(1)).unwrap());
        assert!(!s.append(&put(1)).unwrap());
        assert_eq!(s.stats().appends, 1);
        assert_eq!(s.stats().dedup_skips, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_switches_generation_and_survives_reopen() {
        let dir = tmp_dir("compact");
        {
            let (mut s, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
            s.set_snapshot_thresholds(10, u64::MAX);
            for i in 0..25 {
                s.append(&put(i)).unwrap();
            }
            assert!(s.stats().snapshots >= 2);
            // Only the live generation's files remain (plus the manifest).
            let files: Vec<String> = fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            assert_eq!(files.len(), 3, "stale generations not reclaimed: {files:?}");
        }
        let (s, report) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(s.state().attrs.len(), 25);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let wal_path;
        {
            let (mut s, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
            for i in 0..3 {
                s.append(&put(i)).unwrap();
            }
            wal_path = dir.join(wal_name(0));
        }
        // Tear the last record mid-body.
        let len = fs::metadata(&wal_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        {
            let (mut s, report) = Store::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(report.wal_records, 2);
            assert!(report.torn_bytes > 0);
            assert_eq!(s.state().attrs.len(), 2);
            // New appends after the truncation point replay cleanly.
            s.append(&put(9)).unwrap();
        }
        let (s, report) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(report.wal_records, 3);
        assert_eq!(s.state().attrs.get("a9"), Some(&AttrValue::Num(9.0)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_discarded_not_fatal() {
        let dir = tmp_dir("corrupt-snap");
        {
            let (mut s, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
            s.set_snapshot_thresholds(2, u64::MAX);
            for i in 0..4 {
                s.append(&put(i)).unwrap();
            }
            assert!(s.stats().snapshots >= 1);
        }
        // Flip a byte in the live snapshot.
        let snap: PathBuf = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "snap"))
            .unwrap();
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&snap, &bytes).unwrap();
        let (_, report) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(report.snapshot_corrupt);
        assert!(!report.snapshot_loaded);
        fs::remove_dir_all(&dir).unwrap();
    }
}
