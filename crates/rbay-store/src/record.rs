//! The WAL record vocabulary and the in-memory state image it rebuilds.

use rbay_query::AttrValue;
use rbay_wire::codec::emit;
use rbay_wire::{Reader, Wire, WireError};
use scribe::TopicId;
use simnet::SiteId;
use std::collections::{BTreeMap, BTreeSet};

/// One durable mutation of `RbayHost` state. Every variant is appended to
/// the WAL *before* the corresponding in-memory mutation is acknowledged,
/// so a crash immediately after the ack can always be replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An attribute upsert (`post_resource`, `update_attr`, or an admin
    /// multicast delivery after `onDeliver` transformation).
    AttrPut {
        /// Attribute name.
        attr: String,
        /// New value.
        value: AttrValue,
    },
    /// An attribute delete.
    AttrDel {
        /// Attribute name.
        attr: String,
    },
    /// Node-level policy AA installed; the source text is persisted so
    /// restore can re-lint it under the current policy.
    NodeAaInstall {
        /// Full AAScript source.
        source: String,
    },
    /// Node-level policy AA removed.
    NodeAaUninstall,
    /// Per-attribute AA installed.
    AttrAaInstall {
        /// Anchor attribute.
        attr: String,
        /// Full AAScript source.
        source: String,
    },
    /// Per-attribute AA removed.
    AttrAaUninstall {
        /// Anchor attribute.
        attr: String,
    },
    /// A tree subscription this node must hold across restarts.
    SubAdd {
        /// Scoped topic of the tree.
        topic: TopicId,
        /// Routing scope (the site under administrative isolation).
        scope: Option<SiteId>,
    },
    /// A tree subscription dropped (dynamic-tree `onUnsubscribe`).
    SubRemove {
        /// Scoped topic of the tree.
        topic: TopicId,
    },
    /// A reservation on this node was committed by the given query
    /// (raw `QueryId` bits; this crate does not see `rbay-core` types).
    Commit {
        /// `QueryId.0`.
        query: u64,
    },
    /// The committed reservation was explicitly released.
    Release {
        /// `QueryId.0`.
        query: u64,
    },
}

mod tag {
    pub const ATTR_PUT: u8 = 0;
    pub const ATTR_DEL: u8 = 1;
    pub const NODE_AA_INSTALL: u8 = 2;
    pub const NODE_AA_UNINSTALL: u8 = 3;
    pub const ATTR_AA_INSTALL: u8 = 4;
    pub const ATTR_AA_UNINSTALL: u8 = 5;
    pub const SUB_ADD: u8 = 6;
    pub const SUB_REMOVE: u8 = 7;
    pub const COMMIT: u8 = 8;
    pub const RELEASE: u8 = 9;
}

impl WalRecord {
    /// Short name for obs counters and trace lines.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::AttrPut { .. } => "attr_put",
            WalRecord::AttrDel { .. } => "attr_del",
            WalRecord::NodeAaInstall { .. } => "node_aa_install",
            WalRecord::NodeAaUninstall => "node_aa_uninstall",
            WalRecord::AttrAaInstall { .. } => "attr_aa_install",
            WalRecord::AttrAaUninstall { .. } => "attr_aa_uninstall",
            WalRecord::SubAdd { .. } => "sub_add",
            WalRecord::SubRemove { .. } => "sub_remove",
            WalRecord::Commit { .. } => "commit",
            WalRecord::Release { .. } => "release",
        }
    }
}

fn encode_scope(scope: &Option<SiteId>, out: &mut Vec<u8>) {
    match scope {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            s.encode_into(out);
        }
    }
}

fn decode_scope(r: &mut Reader<'_>) -> Result<Option<SiteId>, WireError> {
    match r.byte()? {
        0 => Ok(None),
        1 => Ok(Some(SiteId::decode(r)?)),
        tag => Err(WireError::BadTag { what: "scope", tag }),
    }
}

impl Wire for WalRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::AttrPut { attr, value } => {
                out.push(tag::ATTR_PUT);
                attr.encode_into(out);
                value.encode_into(out);
            }
            WalRecord::AttrDel { attr } => {
                out.push(tag::ATTR_DEL);
                attr.encode_into(out);
            }
            WalRecord::NodeAaInstall { source } => {
                out.push(tag::NODE_AA_INSTALL);
                source.encode_into(out);
            }
            WalRecord::NodeAaUninstall => out.push(tag::NODE_AA_UNINSTALL),
            WalRecord::AttrAaInstall { attr, source } => {
                out.push(tag::ATTR_AA_INSTALL);
                attr.encode_into(out);
                source.encode_into(out);
            }
            WalRecord::AttrAaUninstall { attr } => {
                out.push(tag::ATTR_AA_UNINSTALL);
                attr.encode_into(out);
            }
            WalRecord::SubAdd { topic, scope } => {
                out.push(tag::SUB_ADD);
                topic.encode_into(out);
                encode_scope(scope, out);
            }
            WalRecord::SubRemove { topic } => {
                out.push(tag::SUB_REMOVE);
                topic.encode_into(out);
            }
            WalRecord::Commit { query } => {
                out.push(tag::COMMIT);
                emit::varint_u64(out, *query);
            }
            WalRecord::Release { query } => {
                out.push(tag::RELEASE);
                emit::varint_u64(out, *query);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            tag::ATTR_PUT => WalRecord::AttrPut {
                attr: String::decode(r)?,
                value: AttrValue::decode(r)?,
            },
            tag::ATTR_DEL => WalRecord::AttrDel {
                attr: String::decode(r)?,
            },
            tag::NODE_AA_INSTALL => WalRecord::NodeAaInstall {
                source: String::decode(r)?,
            },
            tag::NODE_AA_UNINSTALL => WalRecord::NodeAaUninstall,
            tag::ATTR_AA_INSTALL => WalRecord::AttrAaInstall {
                attr: String::decode(r)?,
                source: String::decode(r)?,
            },
            tag::ATTR_AA_UNINSTALL => WalRecord::AttrAaUninstall {
                attr: String::decode(r)?,
            },
            tag::SUB_ADD => WalRecord::SubAdd {
                topic: TopicId::decode(r)?,
                scope: decode_scope(r)?,
            },
            tag::SUB_REMOVE => WalRecord::SubRemove {
                topic: TopicId::decode(r)?,
            },
            tag::COMMIT => WalRecord::Commit {
                query: r.varint_u64()?,
            },
            tag::RELEASE => WalRecord::Release {
                query: r.varint_u64()?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "WalRecord",
                    tag,
                })
            }
        })
    }
}

/// The full durable image of one host: what a snapshot serializes and what
/// WAL replay rebuilds. The [`Store`](crate::Store) maintains this image
/// incrementally on every append, so snapshotting never re-reads the log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurableState {
    /// The resource attribute map.
    pub attrs: BTreeMap<String, AttrValue>,
    /// Node-level AA source, if installed.
    pub node_aa: Option<String>,
    /// Per-attribute AA sources.
    pub attr_aas: BTreeMap<String, String>,
    /// Held tree subscriptions: topic → routing scope.
    pub subs: BTreeMap<TopicId, Option<SiteId>>,
    /// Queries whose reservations this node committed (raw `QueryId` bits).
    pub committed: BTreeSet<u64>,
    /// The query currently holding the committed reservation, if any.
    pub reserved: Option<u64>,
}

impl DurableState {
    /// Whether applying `rec` would leave the state unchanged. The store
    /// skips such appends — the host re-posts subscriptions every
    /// maintenance round and re-installs on restore, and none of that
    /// should bloat the log.
    pub fn is_noop(&self, rec: &WalRecord) -> bool {
        match rec {
            WalRecord::AttrPut { attr, value } => self.attrs.get(attr) == Some(value),
            WalRecord::AttrDel { attr } => !self.attrs.contains_key(attr),
            WalRecord::NodeAaInstall { source } => self.node_aa.as_ref() == Some(source),
            WalRecord::NodeAaUninstall => self.node_aa.is_none(),
            WalRecord::AttrAaInstall { attr, source } => self.attr_aas.get(attr) == Some(source),
            WalRecord::AttrAaUninstall { attr } => !self.attr_aas.contains_key(attr),
            WalRecord::SubAdd { topic, scope } => self.subs.get(topic) == Some(scope),
            WalRecord::SubRemove { topic } => !self.subs.contains_key(topic),
            WalRecord::Commit { query } => {
                self.committed.contains(query) && self.reserved == Some(*query)
            }
            WalRecord::Release { query } => self.reserved != Some(*query),
        }
    }

    /// Applies one record to the image.
    pub fn apply(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::AttrPut { attr, value } => {
                self.attrs.insert(attr.clone(), value.clone());
            }
            WalRecord::AttrDel { attr } => {
                self.attrs.remove(attr);
            }
            WalRecord::NodeAaInstall { source } => self.node_aa = Some(source.clone()),
            WalRecord::NodeAaUninstall => self.node_aa = None,
            WalRecord::AttrAaInstall { attr, source } => {
                self.attr_aas.insert(attr.clone(), source.clone());
            }
            WalRecord::AttrAaUninstall { attr } => {
                self.attr_aas.remove(attr);
            }
            WalRecord::SubAdd { topic, scope } => {
                self.subs.insert(*topic, *scope);
            }
            WalRecord::SubRemove { topic } => {
                self.subs.remove(topic);
            }
            WalRecord::Commit { query } => {
                self.committed.insert(*query);
                self.reserved = Some(*query);
            }
            WalRecord::Release { query } => {
                if self.reserved == Some(*query) {
                    self.reserved = None;
                }
            }
        }
    }
}

impl Wire for DurableState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, self.attrs.len() as u64);
        for (k, v) in &self.attrs {
            k.encode_into(out);
            v.encode_into(out);
        }
        match &self.node_aa {
            None => out.push(0),
            Some(src) => {
                out.push(1);
                src.encode_into(out);
            }
        }
        emit::varint_u64(out, self.attr_aas.len() as u64);
        for (k, v) in &self.attr_aas {
            k.encode_into(out);
            v.encode_into(out);
        }
        emit::varint_u64(out, self.subs.len() as u64);
        for (t, scope) in &self.subs {
            t.encode_into(out);
            encode_scope(scope, out);
        }
        emit::varint_u64(out, self.committed.len() as u64);
        for q in &self.committed {
            emit::varint_u64(out, *q);
        }
        match self.reserved {
            None => out.push(0),
            Some(q) => {
                out.push(1);
                emit::varint_u64(out, q);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut state = DurableState::default();
        let n = r.seq_len("DurableState.attrs", 2)?;
        for _ in 0..n {
            let k = String::decode(r)?;
            let v = AttrValue::decode(r)?;
            state.attrs.insert(k, v);
        }
        state.node_aa = match r.byte()? {
            0 => None,
            1 => Some(String::decode(r)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "DurableState.node_aa",
                    tag,
                })
            }
        };
        let n = r.seq_len("DurableState.attr_aas", 2)?;
        for _ in 0..n {
            let k = String::decode(r)?;
            let v = String::decode(r)?;
            state.attr_aas.insert(k, v);
        }
        let n = r.seq_len("DurableState.subs", 17)?;
        for _ in 0..n {
            let t = TopicId::decode(r)?;
            let scope = decode_scope(r)?;
            state.subs.insert(t, scope);
        }
        let n = r.seq_len("DurableState.committed", 1)?;
        for _ in 0..n {
            state.committed.insert(r.varint_u64()?);
        }
        state.reserved = match r.byte()? {
            0 => None,
            1 => Some(r.varint_u64()?),
            tag => {
                return Err(WireError::BadTag {
                    what: "DurableState.reserved",
                    tag,
                })
            }
        };
        Ok(state)
    }
}

/// Store health counters, surfaced in `ProcStatusReply` so the cluster
/// harness (and a rolling restart's gate) can read durability behaviour
/// off a live daemon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL records appended (dedup skips excluded).
    pub appends: u64,
    /// Appends skipped because the record would not change state.
    pub dedup_skips: u64,
    /// Snapshot compactions taken.
    pub snapshots: u64,
    /// Records replayed at the last open.
    pub replay_records: u64,
    /// Wall-clock microseconds the last open spent loading snapshot + WAL.
    pub replay_micros: u64,
    /// Handler sources rejected by re-lint on restore (set by the host).
    pub relint_rejects: u64,
    /// Bytes in the live WAL generation.
    pub wal_bytes: u64,
    /// Records in the live WAL generation.
    pub wal_records: u64,
}

impl StoreStats {
    /// Accumulates another store's counters into this one (process- or
    /// fleet-wide aggregation over packed members).
    pub fn merge(&mut self, other: &StoreStats) {
        self.appends += other.appends;
        self.dedup_skips += other.dedup_skips;
        self.snapshots += other.snapshots;
        self.replay_records += other.replay_records;
        self.replay_micros += other.replay_micros;
        self.relint_rejects += other.relint_rejects;
        self.wal_bytes += other.wal_bytes;
        self.wal_records += other.wal_records;
    }
}

impl Wire for StoreStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        emit::varint_u64(out, self.appends);
        emit::varint_u64(out, self.dedup_skips);
        emit::varint_u64(out, self.snapshots);
        emit::varint_u64(out, self.replay_records);
        emit::varint_u64(out, self.replay_micros);
        emit::varint_u64(out, self.relint_rejects);
        emit::varint_u64(out, self.wal_bytes);
        emit::varint_u64(out, self.wal_records);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StoreStats {
            appends: r.varint_u64()?,
            dedup_skips: r.varint_u64()?,
            snapshots: r.varint_u64()?,
            replay_records: r.varint_u64()?,
            replay_micros: r.varint_u64()?,
            relint_rejects: r.varint_u64()?,
            wal_bytes: r.varint_u64()?,
            wal_records: r.varint_u64()?,
        })
    }
}
