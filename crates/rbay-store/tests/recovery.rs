//! Crash-recovery property tests for the WAL (mirrors the PR-6 frame-run
//! proptests): a WAL image mutilated by truncation, a bit flip, or a
//! garbage suffix must still yield every intact prefix record, and the
//! replayer must never panic on any input.

use proptest::collection::vec;
use proptest::prelude::*;
use rbay_query::AttrValue;
use rbay_store::{frame_record, replay, FsyncPolicy, Store, WalRecord};
use scribe::TopicId;
use simnet::SiteId;

fn s_string() -> impl Strategy<Value = String> {
    vec(0usize..6, 0..10).prop_map(|ix| {
        ix.into_iter()
            .map(|i| ['a', 'Z', '0', '_', 'Ω', '界'][i])
            .collect()
    })
}

fn s_attr_value() -> BoxedStrategy<AttrValue> {
    prop_oneof![
        any::<bool>().prop_map(AttrValue::Bool),
        any::<f64>().prop_map(AttrValue::Num),
        s_string().prop_map(AttrValue::Str),
    ]
    .boxed()
}

fn s_record() -> BoxedStrategy<WalRecord> {
    fn s_topic() -> BoxedStrategy<TopicId> {
        (s_string(), s_string())
            .prop_map(|(n, c)| TopicId::new(&n, &c))
            .boxed()
    }
    let scope = prop_oneof![Just(None), any::<u16>().prop_map(|s| Some(SiteId(s % 8))),];
    prop_oneof![
        (s_string(), s_attr_value()).prop_map(|(attr, value)| WalRecord::AttrPut { attr, value }),
        s_string().prop_map(|attr| WalRecord::AttrDel { attr }),
        s_string().prop_map(|source| WalRecord::NodeAaInstall { source }),
        Just(WalRecord::NodeAaUninstall),
        (s_string(), s_string())
            .prop_map(|(attr, source)| WalRecord::AttrAaInstall { attr, source }),
        s_string().prop_map(|attr| WalRecord::AttrAaUninstall { attr }),
        (s_topic(), scope).prop_map(|(topic, scope)| WalRecord::SubAdd { topic, scope }),
        s_topic().prop_map(|topic| WalRecord::SubRemove { topic }),
        any::<u64>().prop_map(|query| WalRecord::Commit { query }),
        any::<u64>().prop_map(|query| WalRecord::Release { query }),
    ]
    .boxed()
}

/// Frames `recs` into one WAL image, returning the image and each
/// record's end offset.
fn image_of(recs: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut ends = Vec::new();
    for r in recs {
        frame_record(&mut buf, r);
        ends.push(buf.len());
    }
    (buf, ends)
}

/// How many of `ends` lie fully within the first `cut` bytes.
fn intact_prefix(ends: &[usize], cut: usize) -> usize {
    ends.iter().take_while(|&&e| e <= cut).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncation at any byte offset recovers exactly the records whose
    /// frames fit entirely before the cut.
    #[test]
    fn truncation_recovers_every_intact_prefix_record(
        recs in vec(s_record(), 1..12),
        cut_seed in any::<u64>(),
    ) {
        let (buf, ends) = image_of(&recs);
        let cut = (cut_seed as usize) % (buf.len() + 1);
        let expect = intact_prefix(&ends, cut);
        let mut out = Vec::new();
        let scan = replay(&buf[..cut], |r| out.push(r));
        prop_assert_eq!(&out[..], &recs[..expect]);
        prop_assert_eq!(scan.records as usize, expect);
        // The valid prefix ends exactly at the last intact record.
        let valid_end = if expect == 0 { 0 } else { ends[expect - 1] };
        prop_assert_eq!(scan.valid_bytes, valid_end);
        prop_assert_eq!(scan.torn.is_some(), cut != valid_end);
    }

    /// A single flipped bit anywhere in the image never panics, and every
    /// record that ends before the flipped byte is recovered intact.
    #[test]
    fn bit_flip_preserves_records_before_the_flip(
        recs in vec(s_record(), 1..12),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut buf, ends) = image_of(&recs);
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= 1 << bit;
        let before_flip = intact_prefix(&ends, pos);
        let mut out = Vec::new();
        let _ = replay(&buf, |r| out.push(r));
        prop_assert!(out.len() >= before_flip);
        prop_assert_eq!(&out[..before_flip], &recs[..before_flip]);
    }

    /// A garbage suffix after a valid image never hides or corrupts the
    /// real records; replay yields all of them, then stops.
    #[test]
    fn garbage_suffix_recovers_all_records(
        recs in vec(s_record(), 1..12),
        garbage in vec(any::<u8>(), 1..64),
    ) {
        let (mut buf, _) = image_of(&recs);
        let n = recs.len();
        buf.extend_from_slice(&garbage);
        let mut out = Vec::new();
        let _ = replay(&buf, |r| out.push(r));
        prop_assert!(out.len() >= n);
        prop_assert_eq!(&out[..n], &recs[..]);
    }

    /// Pure garbage (no valid image at all) never panics the replayer.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..128)) {
        let _ = replay(&bytes, |_| {});
    }
}

/// Replaying a 100k-record WAL must complete well under the 1 s budget
/// the acceptance criteria set for the bench box. The hard assertion only
/// runs for optimized builds — debug-build codec throughput is not what
/// the budget describes.
#[test]
fn replay_100k_records_under_one_second() {
    let dir = std::env::temp_dir().join(format!("rbay-store-replay100k-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (mut s, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        // Keep every record live (distinct attrs) and hold compaction off
        // so the reopen replays the full 100k from the WAL.
        s.set_snapshot_thresholds(u64::MAX, u64::MAX);
        for i in 0..100_000u64 {
            s.append(&WalRecord::AttrPut {
                attr: format!("attr-{i}"),
                value: AttrValue::Num(i as f64),
            })
            .unwrap();
        }
    }
    let started = std::time::Instant::now();
    let (s, report) = Store::open(&dir, FsyncPolicy::Never).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(report.wal_records, 100_000);
    assert_eq!(s.state().attrs.len(), 100_000);
    eprintln!("replay of 100k records: {elapsed:?}");
    if !cfg!(debug_assertions) {
        assert!(
            elapsed.as_millis() < 1_000,
            "100k-record replay took {elapsed:?} (budget 1s)"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
