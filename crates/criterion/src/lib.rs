//! Vendored, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock harness with the same API shape the
//! benches use: [`Criterion`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — per-sample means with a median
//! over samples — but the output (median, min, max ns/iter) is stable
//! enough to track relative regressions, which is all the workspace needs.
//! When invoked with `--test` (as `cargo test --benches` does) every
//! benchmark body runs exactly once so CI stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent calibrating the per-sample iteration count.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies `cargo bench` / `cargo test` command-line arguments:
    /// `--test` runs each body once, a bare string filters by name.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.selected(id) {
            run_one(id, self, &mut f);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named family of benchmarks (`group/id` naming).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.selected(&full) {
            run_one(&full, self.criterion, &mut |b: &mut Bencher| f(b, input));
        }
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            run_one(&full, self.criterion, &mut f);
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the displayed parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to every benchmark body; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    /// Iterations the harness asks for in this invocation.
    iters: u64,
    /// Measured duration of the `iter` batch.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, config: &Criterion, f: &mut dyn FnMut(&mut Bencher)) {
    if config.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibration: grow the batch size until one batch costs ~1/sample_size
    // of the measurement budget (bounded by the warm-up budget).
    let target_batch = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let warmup_deadline = Instant::now() + config.warm_up_time;
    let mut iters: u64 = 1;
    let mut per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed.as_secs_f64() >= target_batch
            || Instant::now() >= warmup_deadline
            || iters >= 1 << 40
        {
            break per;
        }
        iters = iters.saturating_mul(2);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }
    let batch = ((target_batch / per_iter).ceil() as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / batch as f64 * 1e9);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<44} time: [{min:>10.1} ns {median:>10.1} ns {max:>10.1} ns]  ({batch} iters/sample)"
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut n = 0u64;
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("counter", |b| b.iter(|| n += 1));
        assert!(n > 0, "body executed");
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(2));
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| x * 2);
            });
            g.finish();
            hits += 1;
        }
        assert_eq!(hits, 1);
    }
}
