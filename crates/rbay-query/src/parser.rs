//! Parser for the SQL-like query language (the Zql subset the paper uses).
//!
//! Grammar:
//!
//! ```text
//! query    := SELECT count FROM from [WHERE pred (AND pred)*]
//!             [GROUPBY name [ASC|DESC]] [";"]
//! count    := integer | "NodeId"          (NodeId means k = 1)
//! from     := "*" | site ("," site)*
//! site     := name | string
//! pred     := name op literal
//! op       := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//! literal  := number ["%"] | string | "true" | "false"
//! ```
//!
//! Keywords are case-insensitive; `ORDER BY`-style `GROUPBY` follows the
//! paper's Fig. 6 spelling.

use crate::ast::{FromClause, Predicate, Query, SortDir};
use crate::value::{AttrValue, CmpOp};
use core::fmt;

/// A query-parsing error, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    /// Byte offset where the error was noticed.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseQueryError {}

#[derive(Debug, Clone, PartialEq)]
enum QTok {
    Word(String),
    Str(String),
    Num(f64),
    Percent, // '%' following a number
    Star,
    Comma,
    Semi,
    Op(CmpOp),
}

fn lex_query(src: &str) -> Result<Vec<(QTok, usize)>, ParseQueryError> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let at = i;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_' || b[i] == '.') {
                i += 1;
            }
            out.push((QTok::Word(b[start..i].iter().collect()), at));
            continue;
        }
        if c.is_ascii_digit() || (c == '-' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())) {
            let start = i;
            if c == '-' {
                i += 1;
            }
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let n: f64 = text.parse().map_err(|_| ParseQueryError {
                offset: at,
                message: format!("malformed number `{text}`"),
            })?;
            out.push((QTok::Num(n), at));
            if i < b.len() && b[i] == '%' {
                out.push((QTok::Percent, i));
                i += 1;
            }
            continue;
        }
        if c == '"' || c == '\'' {
            let quote = c;
            i += 1;
            let start = i;
            while i < b.len() && b[i] != quote {
                i += 1;
            }
            if i >= b.len() {
                return Err(ParseQueryError {
                    offset: at,
                    message: "unterminated string".into(),
                });
            }
            out.push((QTok::Str(b[start..i].iter().collect()), at));
            i += 1;
            continue;
        }
        let two = |a: char| i + 1 < b.len() && b[i + 1] == a;
        let (tok, w) = match c {
            '*' => (QTok::Star, 1),
            ',' => (QTok::Comma, 1),
            ';' => (QTok::Semi, 1),
            '=' => (QTok::Op(CmpOp::Eq), 1),
            '!' if two('=') => (QTok::Op(CmpOp::Ne), 2),
            '<' if two('=') => (QTok::Op(CmpOp::Le), 2),
            '<' if two('>') => (QTok::Op(CmpOp::Ne), 2),
            '<' => (QTok::Op(CmpOp::Lt), 1),
            '>' if two('=') => (QTok::Op(CmpOp::Ge), 2),
            '>' => (QTok::Op(CmpOp::Gt), 1),
            other => {
                return Err(ParseQueryError {
                    offset: at,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        out.push((tok, at));
        i += w;
    }
    Ok(out)
}

/// Parses one query.
///
/// # Errors
///
/// Returns a [`ParseQueryError`] describing the first problem.
///
/// ```
/// let q = rbay_query::parse_query(
///     r#"SELECT 5 FROM * WHERE CPU_model = "Intel Core i7" AND CPU_utilization < 10% GROUPBY CPU_utilization DESC;"#,
/// ).unwrap();
/// assert_eq!(q.k, 5);
/// assert_eq!(q.predicates.len(), 2);
/// ```
pub fn parse_query(src: &str) -> Result<Query, ParseQueryError> {
    let toks = lex_query(src)?;
    let mut p = QParser { toks, i: 0 };
    let q = p.query()?;
    if p.i < p.toks.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

struct QParser {
    toks: Vec<(QTok, usize)>,
    i: usize,
}

impl QParser {
    fn peek(&self) -> Option<&QTok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.i).map(|(_, o)| *o).unwrap_or(usize::MAX)
    }

    fn err(&self, msg: impl Into<String>) -> ParseQueryError {
        ParseQueryError {
            offset: if self.offset() == usize::MAX {
                0
            } else {
                self.offset()
            },
            message: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<QTok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        self.i += 1;
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseQueryError> {
        match self.bump() {
            Some(QTok::Word(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(QTok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn query(&mut self) -> Result<Query, ParseQueryError> {
        self.keyword("SELECT")?;
        let k = match self.bump() {
            Some(QTok::Num(n)) if n.fract() == 0.0 && n >= 1.0 && n <= u32::MAX as f64 => n as u32,
            Some(QTok::Num(_)) => return Err(self.err("SELECT count must be a positive integer")),
            Some(QTok::Word(w)) if w.eq_ignore_ascii_case("NodeId") => 1,
            other => return Err(self.err(format!("expected a count or NodeId, found {other:?}"))),
        };
        self.keyword("FROM")?;
        let from = if matches!(self.peek(), Some(QTok::Star)) {
            self.bump();
            FromClause::AllSites
        } else {
            let mut sites = Vec::new();
            loop {
                match self.bump() {
                    Some(QTok::Word(w)) => sites.push(w),
                    Some(QTok::Str(s)) => sites.push(s),
                    other => return Err(self.err(format!("expected a site name, found {other:?}"))),
                }
                if matches!(self.peek(), Some(QTok::Comma)) {
                    self.bump();
                } else {
                    break;
                }
            }
            FromClause::Sites(sites)
        };

        let mut predicates = Vec::new();
        if self.at_keyword("WHERE") {
            self.bump();
            loop {
                predicates.push(self.predicate()?);
                if self.at_keyword("AND") {
                    self.bump();
                } else {
                    break;
                }
            }
        }

        let mut order_by = None;
        if self.at_keyword("GROUPBY") {
            self.bump();
            let attr = match self.bump() {
                Some(QTok::Word(w)) => w,
                other => {
                    return Err(
                        self.err(format!("expected attribute after GROUPBY, found {other:?}"))
                    )
                }
            };
            let dir = if self.at_keyword("DESC") {
                self.bump();
                SortDir::Desc
            } else if self.at_keyword("ASC") {
                self.bump();
                SortDir::Asc
            } else {
                SortDir::Asc
            };
            order_by = Some((attr, dir));
        }

        if matches!(self.peek(), Some(QTok::Semi)) {
            self.bump();
        }

        Ok(Query {
            k,
            from,
            predicates,
            order_by,
        })
    }

    fn predicate(&mut self) -> Result<Predicate, ParseQueryError> {
        let attr = match self.bump() {
            Some(QTok::Word(w)) => w,
            other => return Err(self.err(format!("expected an attribute name, found {other:?}"))),
        };
        let op = match self.bump() {
            Some(QTok::Op(op)) => op,
            other => {
                return Err(self.err(format!("expected a comparison operator, found {other:?}")))
            }
        };
        let value = match self.bump() {
            Some(QTok::Num(n)) => {
                // A `%` suffix marks a percentage — stored as the plain
                // number, matching the paper's `⟨CPU, 50%⟩` convention.
                if matches!(self.peek(), Some(QTok::Percent)) {
                    self.bump();
                }
                AttrValue::Num(n)
            }
            Some(QTok::Str(s)) => AttrValue::Str(s),
            Some(QTok::Word(w)) if w.eq_ignore_ascii_case("true") => AttrValue::Bool(true),
            Some(QTok::Word(w)) if w.eq_ignore_ascii_case("false") => AttrValue::Bool(false),
            other => return Err(self.err(format!("expected a literal, found {other:?}"))),
        };
        Ok(Predicate { attr, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig6_query() {
        let q = parse_query(
            r#"SELECT 4 FROM * WHERE CPU_model = "Intel Core i7" AND CPU_utilization < 10% GROUPBY CPU_utilization DESC;"#,
        )
        .unwrap();
        assert_eq!(q.k, 4);
        assert_eq!(q.from, FromClause::AllSites);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].attr, "CPU_model");
        assert_eq!(q.predicates[0].op, CmpOp::Eq);
        assert_eq!(q.predicates[0].value, AttrValue::str("Intel Core i7"));
        assert_eq!(q.predicates[1].op, CmpOp::Lt);
        assert_eq!(q.predicates[1].value, AttrValue::Num(10.0));
        assert_eq!(q.order_by, Some(("CPU_utilization".into(), SortDir::Desc)));
    }

    #[test]
    fn select_nodeid_means_one() {
        let q = parse_query("SELECT NodeId FROM * WHERE GPU = true").unwrap();
        assert_eq!(q.k, 1);
        assert_eq!(q.predicates[0].value, AttrValue::Bool(true));
    }

    #[test]
    fn site_lists() {
        let q = parse_query(r#"SELECT 2 FROM "Virginia", Tokyo WHERE GPU = true"#).unwrap();
        assert_eq!(
            q.from,
            FromClause::Sites(vec!["Virginia".into(), "Tokyo".into()])
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("select 1 from * where x = 1 groupby x asc").unwrap();
        assert_eq!(q.order_by, Some(("x".into(), SortDir::Asc)));
    }

    #[test]
    fn all_operators() {
        for (src, op) in [
            ("=", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<>", CmpOp::Ne),
            ("<", CmpOp::Lt),
            ("<=", CmpOp::Le),
            (">", CmpOp::Gt),
            (">=", CmpOp::Ge),
        ] {
            let q = parse_query(&format!("SELECT 1 FROM * WHERE a {src} 5")).unwrap();
            assert_eq!(q.predicates[0].op, op, "{src}");
        }
    }

    #[test]
    fn where_clause_is_optional() {
        let q = parse_query("SELECT 7 FROM *").unwrap();
        assert!(q.predicates.is_empty());
        assert_eq!(q.k, 7);
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("SELECT FROM *").is_err());
        assert!(parse_query("SELECT 0 FROM *").is_err(), "k must be >= 1");
        assert!(parse_query("SELECT 1.5 FROM *").is_err());
        assert!(parse_query("SELECT 1 FROM").is_err());
        assert!(parse_query("SELECT 1 FROM * WHERE").is_err());
        assert!(parse_query("SELECT 1 FROM * WHERE a").is_err());
        assert!(parse_query("SELECT 1 FROM * WHERE a = ").is_err());
        assert!(parse_query(r#"SELECT 1 FROM * WHERE a = "unterminated"#).is_err());
        assert!(parse_query("SELECT 1 FROM * extra junk ; here").is_err());
    }

    #[test]
    fn dotted_attribute_names() {
        let q = parse_query("SELECT 1 FROM * WHERE instance.type = \"c3.8xlarge\"").unwrap();
        assert_eq!(q.predicates[0].attr, "instance.type");
    }
}
