//! Attribute values and predicate comparison.

use core::cmp::Ordering;
use core::fmt;

/// The value of a resource attribute in a node's key-value map.
///
/// The paper's examples: `⟨GPU, true⟩`, `⟨CPU, 50%⟩`, `⟨Matlab, "9.0"⟩`
/// (§III.A) — booleans, numbers (percentages are plain numbers 0–100), and
/// strings.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Availability flags like `⟨GPU, true⟩`.
    Bool(bool),
    /// Numeric readings like utilization percentages or memory sizes.
    Num(f64),
    /// Versions, model names, OS names.
    Str(String),
}

impl AttrValue {
    /// Builds a string attribute.
    pub fn str(s: impl Into<String>) -> Self {
        AttrValue::Str(s.into())
    }

    /// An explicit total order over attribute values, for use as a sort
    /// comparator (`slice::sort_by` panics on comparators that violate
    /// totality, which `f64::partial_cmp(..).unwrap_or(Equal)` does once a
    /// NaN shows up — NaN would compare Equal to everything while the
    /// non-NaN keys around it stay ordered).
    ///
    /// The order: kinds rank `Bool < Num < Str`; booleans `false < true`;
    /// numbers by IEEE order with **every NaN sorting last** (after
    /// `+inf`), all NaNs equal to each other; strings lexicographically.
    ///
    /// ```
    /// use rbay_query::AttrValue;
    /// let mut keys = vec![
    ///     AttrValue::Num(f64::NAN),
    ///     AttrValue::Num(1.0),
    ///     AttrValue::Num(f64::INFINITY),
    /// ];
    /// keys.sort_by(|a, b| a.cmp_total(b));
    /// assert_eq!(keys[0], AttrValue::Num(1.0));
    /// assert!(matches!(keys[2], AttrValue::Num(n) if n.is_nan()));
    /// ```
    pub fn cmp_total(&self, other: &AttrValue) -> Ordering {
        fn rank(v: &AttrValue) -> u8 {
            match v {
                AttrValue::Bool(_) => 0,
                AttrValue::Num(_) => 1,
                AttrValue::Str(_) => 2,
            }
        }
        match (self, other) {
            (AttrValue::Bool(a), AttrValue::Bool(b)) => a.cmp(b),
            (AttrValue::Num(a), AttrValue::Num(b)) => match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => a.partial_cmp(b).expect("neither operand is NaN"),
            },
            (AttrValue::Str(a), AttrValue::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// The canonical textual form used in tree names (`attr=value`).
    pub fn canonical(&self) -> String {
        match self {
            AttrValue::Bool(b) => b.to_string(),
            AttrValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            AttrValue::Str(s) => s.clone(),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

/// A comparison operator in a WHERE predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs`. Mixed types (other than the trivial
    /// bool/num/string homogeneous cases) compare unequal and un-ordered:
    /// every ordering operator returns `false`, `=` is `false`, `!=` is
    /// `true`.
    pub fn eval(self, lhs: &AttrValue, rhs: &AttrValue) -> bool {
        use AttrValue::*;
        let ord = match (lhs, rhs) {
            (Bool(a), Bool(b)) => {
                return match self {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    _ => false,
                }
            }
            (Num(a), Num(b)) => a.partial_cmp(b),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => None,
        };
        match (self, ord) {
            (CmpOp::Eq, Some(o)) => o.is_eq(),
            (CmpOp::Ne, Some(o)) => o.is_ne(),
            (CmpOp::Lt, Some(o)) => o.is_lt(),
            (CmpOp::Le, Some(o)) => o.is_le(),
            (CmpOp::Gt, Some(o)) => o.is_gt(),
            (CmpOp::Ge, Some(o)) => o.is_ge(),
            (CmpOp::Ne, None) => true,
            (_, None) => false,
        }
    }

    /// The SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons() {
        let a = AttrValue::Num(5.0);
        let b = AttrValue::Num(10.0);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &b));
        assert!(!CmpOp::Gt.eval(&a, &b));
        assert!(CmpOp::Ne.eval(&a, &b));
        assert!(CmpOp::Eq.eval(&a, &a.clone()));
    }

    #[test]
    fn string_comparisons_are_lexicographic() {
        let a = AttrValue::str("Intel Core i5");
        let b = AttrValue::str("Intel Core i7");
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Eq.eval(&b, &AttrValue::str("Intel Core i7")));
    }

    #[test]
    fn bool_only_supports_equality() {
        let t = AttrValue::Bool(true);
        let f = AttrValue::Bool(false);
        assert!(CmpOp::Eq.eval(&t, &t.clone()));
        assert!(CmpOp::Ne.eval(&t, &f));
        assert!(!CmpOp::Lt.eval(&f, &t), "ordering booleans is meaningless");
    }

    #[test]
    fn mixed_types_are_unequal_and_unordered() {
        let n = AttrValue::Num(1.0);
        let s = AttrValue::str("1");
        assert!(!CmpOp::Eq.eval(&n, &s));
        assert!(CmpOp::Ne.eval(&n, &s));
        assert!(!CmpOp::Lt.eval(&n, &s));
        assert!(!CmpOp::Ge.eval(&n, &s));
    }

    #[test]
    fn cmp_total_is_a_total_order_with_nan_last() {
        let nan = AttrValue::Num(f64::NAN);
        let one = AttrValue::Num(1.0);
        let inf = AttrValue::Num(f64::INFINITY);
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
        assert_eq!(nan.cmp_total(&inf), Ordering::Greater, "NaN sorts last");
        assert_eq!(one.cmp_total(&nan), Ordering::Less);
        // Kind ranking: Bool < Num < Str, so mixed kinds stay transitive.
        assert_eq!(
            AttrValue::Bool(true).cmp_total(&AttrValue::Num(-1e9)),
            Ordering::Less
        );
        assert_eq!(
            AttrValue::str("0").cmp_total(&AttrValue::Num(1e9)),
            Ordering::Greater
        );
        assert_eq!(
            AttrValue::Bool(false).cmp_total(&AttrValue::Bool(true)),
            Ordering::Less
        );
        // Sorting a NaN-laden vec must neither panic nor depend on input
        // order: NaNs land at the tail either way.
        let mut a = [nan.clone(), one.clone(), inf.clone()];
        let mut b = [inf.clone(), nan.clone(), one.clone()];
        a.sort_by(|x, y| x.cmp_total(y));
        b.sort_by(|x, y| x.cmp_total(y));
        assert_eq!(a[0], one);
        assert_eq!(a[1], inf);
        assert!(matches!(a[2], AttrValue::Num(n) if n.is_nan()));
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
    }

    #[test]
    fn canonical_forms() {
        assert_eq!(AttrValue::Bool(true).canonical(), "true");
        assert_eq!(AttrValue::Num(10.0).canonical(), "10");
        assert_eq!(AttrValue::Num(2.5).canonical(), "2.5");
        assert_eq!(AttrValue::str("Ubuntu12.04").canonical(), "Ubuntu12.04");
    }
}
