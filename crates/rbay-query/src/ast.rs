//! Query AST: the SQL subset of the paper's Fig. 6.

use crate::value::{AttrValue, CmpOp};
use core::fmt;

/// Which sites a query searches (`FROM *` or an explicit site list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromClause {
    /// `FROM *` — all federated sites.
    AllSites,
    /// `FROM "Virginia", "Tokyo"` — the named sites only.
    Sites(Vec<String>),
}

/// One conjunct of the WHERE clause: `attr op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The attribute name, e.g. `CPU_model`.
    pub attr: String,
    /// The comparison operator.
    pub op: CmpOp,
    /// The literal to compare against.
    pub value: AttrValue,
}

impl Predicate {
    /// Whether a node's attribute value satisfies this predicate
    /// (`None` — attribute absent — never matches).
    pub fn matches(&self, actual: Option<&AttrValue>) -> bool {
        match actual {
            Some(v) => self.op.eval(v, &self.value),
            None => false,
        }
    }

    /// Whether this predicate can anchor tree selection: equality
    /// predicates correspond directly to `attr=value` aggregation trees.
    pub fn is_anchor(&self) -> bool {
        self.op == CmpOp::Eq
    }

    /// The textual tree name for an anchor predicate (`attr=value`), used
    /// as the Scribe topic name.
    pub fn tree_name(&self) -> String {
        format!("{}={}", self.attr, self.value.canonical())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            AttrValue::Str(s) => write!(f, "{} {} \"{}\"", self.attr, self.op, s),
            other => write!(f, "{} {} {}", self.attr, self.op, other.canonical()),
        }
    }
}

/// Sort direction of the GROUPBY clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A parsed query:
/// `SELECT k FROM ... WHERE p1 AND p2 ... [GROUPBY attr [ASC|DESC]];`
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// How many candidate nodes to return.
    pub k: u32,
    /// Site selection.
    pub from: FromClause,
    /// Conjunction of predicates.
    pub predicates: Vec<Predicate>,
    /// Optional ordering of the results.
    pub order_by: Option<(String, SortDir)>,
}

impl Query {
    /// Whether a node (given its attribute lookup function) satisfies every
    /// predicate.
    pub fn matches_all<'a>(&self, mut get: impl FnMut(&str) -> Option<&'a AttrValue>) -> bool {
        self.predicates.iter().all(|p| p.matches(get(&p.attr)))
    }

    /// The anchor (equality) predicates, each naming a candidate tree.
    pub fn anchors(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_anchor())
    }

    /// The residual predicates that must be checked node-locally during the
    /// anycast walk (query protocol step 4-i).
    pub fn residuals(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| !p.is_anchor())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {} FROM ", self.k)?;
        match &self.from {
            FromClause::AllSites => write!(f, "*")?,
            FromClause::Sites(sites) => {
                let quoted: Vec<String> = sites.iter().map(|s| format!("\"{s}\"")).collect();
                write!(f, "{}", quoted.join(", "))?;
            }
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            let parts: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
            write!(f, "{}", parts.join(" AND "))?;
        }
        if let Some((attr, dir)) = &self.order_by {
            let d = match dir {
                SortDir::Asc => "ASC",
                SortDir::Desc => "DESC",
            };
            write!(f, " GROUPBY {attr} {d}")?;
        }
        write!(f, ";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Query {
        Query {
            k: 3,
            from: FromClause::AllSites,
            predicates: vec![
                Predicate {
                    attr: "CPU_model".into(),
                    op: CmpOp::Eq,
                    value: AttrValue::str("Intel Core i7"),
                },
                Predicate {
                    attr: "CPU_utilization".into(),
                    op: CmpOp::Lt,
                    value: AttrValue::Num(10.0),
                },
            ],
            order_by: Some(("CPU_utilization".into(), SortDir::Desc)),
        }
    }

    #[test]
    fn anchor_and_residual_split() {
        let q = q();
        let anchors: Vec<String> = q.anchors().map(|p| p.tree_name()).collect();
        assert_eq!(anchors, vec!["CPU_model=Intel Core i7"]);
        assert_eq!(q.residuals().count(), 1);
    }

    #[test]
    fn matches_all_requires_every_predicate() {
        let q = q();
        let model = AttrValue::str("Intel Core i7");
        let low = AttrValue::Num(5.0);
        let high = AttrValue::Num(50.0);
        assert!(q.matches_all(|a| match a {
            "CPU_model" => Some(&model),
            "CPU_utilization" => Some(&low),
            _ => None,
        }));
        assert!(!q.matches_all(|a| match a {
            "CPU_model" => Some(&model),
            "CPU_utilization" => Some(&high),
            _ => None,
        }));
        assert!(!q.matches_all(|a| match a {
            "CPU_model" => Some(&model),
            _ => None, // missing attribute
        }));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(
            q().to_string(),
            "SELECT 3 FROM * WHERE CPU_model = \"Intel Core i7\" AND CPU_utilization < 10 GROUPBY CPU_utilization DESC;"
        );
    }
}
