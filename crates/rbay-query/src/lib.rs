//! # rbay-query — the SQL-like query front end
//!
//! RBAY develops a SQL-like query interface (based on Zql in the paper,
//! §III.D) that takes composite queries such as:
//!
//! ```text
//! SELECT k FROM * WHERE CPU_model = "Intel Core i7"
//!                   AND CPU_utilization < 10%
//!                   GROUPBY CPU_utilization DESC;
//! ```
//!
//! This crate provides the parser ([`parse_query`]), the query AST
//! ([`Query`], [`Predicate`]), and the attribute-value model shared with
//! the rest of the stack ([`AttrValue`]). Execution (the five-step protocol
//! of Fig. 7) lives in `rbay-core`, which consumes the
//! [`Query::anchors`]/[`Query::residuals`] split: equality predicates name
//! candidate aggregation trees; the rest are checked node-locally during
//! the anycast walk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod parser;
mod value;

pub use ast::{FromClause, Predicate, Query, SortDir};
pub use parser::{parse_query, ParseQueryError};
pub use value::{AttrValue, CmpOp};
