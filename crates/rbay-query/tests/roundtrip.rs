//! Property test: pretty-printing a generated query and re-parsing it gives
//! back the same AST (print ∘ parse = identity), plus predicate-evaluation
//! consistency properties.

use proptest::prelude::*;
use rbay_query::{parse_query, AttrValue, CmpOp, FromClause, Predicate, Query, SortDir};

fn attr_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,12}".prop_filter("not a keyword", |s| {
        ![
            "SELECT", "FROM", "WHERE", "AND", "GROUPBY", "ASC", "DESC", "true", "false", "NodeId",
        ]
        .iter()
        .any(|k| k.eq_ignore_ascii_case(s))
    })
}

fn literal() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(|n| AttrValue::Num(n as f64)),
        "[A-Za-z0-9 ._-]{0,16}".prop_map(AttrValue::Str),
        any::<bool>().prop_map(AttrValue::Bool),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    (attr_name(), cmp_op(), literal()).prop_map(|(attr, op, value)| Predicate { attr, op, value })
}

fn query() -> impl Strategy<Value = Query> {
    (
        1u32..1000,
        prop_oneof![
            Just(FromClause::AllSites),
            proptest::collection::vec("[A-Za-z][A-Za-z0-9_]{0,10}", 1..4)
                .prop_map(FromClause::Sites),
        ],
        proptest::collection::vec(predicate(), 0..5),
        proptest::option::of((
            attr_name(),
            prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)],
        )),
    )
        .prop_map(|(k, from, predicates, order_by)| Query {
            k,
            from,
            predicates,
            order_by,
        })
}

proptest! {
    #[test]
    fn print_parse_identity(q in query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e} for `{printed}`")))?;
        prop_assert_eq!(reparsed, q);
    }

    /// `Ne` is the negation of `Eq` for every pair of values.
    #[test]
    fn ne_is_negated_eq(a in literal(), b in literal()) {
        prop_assert_eq!(CmpOp::Eq.eval(&a, &b), !CmpOp::Ne.eval(&a, &b));
    }

    /// For numbers, exactly one of <, =, > holds.
    #[test]
    fn numeric_trichotomy(x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let a = AttrValue::Num(x);
        let b = AttrValue::Num(y);
        let count = [CmpOp::Lt, CmpOp::Eq, CmpOp::Gt]
            .iter()
            .filter(|op| op.eval(&a, &b))
            .count();
        prop_assert_eq!(count, 1);
    }

    /// A predicate never matches an absent attribute.
    #[test]
    fn absent_attribute_never_matches(p in predicate()) {
        prop_assert!(!p.matches(None));
    }
}
