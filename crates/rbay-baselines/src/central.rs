//! A Ganglia-style centralized management plane, the architectural
//! baseline RBAY argues against (paper §II.A, Fig. 3a).
//!
//! A single **master** polls one **cluster head** per site; each head
//! collects its leaves' full state and ships the cluster snapshot upstream.
//! All queries are answered from the master's snapshot. The ablation
//! benches measure what the paper claims: the master's message/byte load
//! grows linearly with the total node count, and snapshot staleness grows
//! with the poll period, while RBAY spreads the same load over many tree
//! roots.

use rbay_query::AttrValue;
use simnet::{Actor, Context, MessageSize, NodeAddr, SimDuration, SimTime, Simulation, Topology};
use std::collections::BTreeMap;

/// Node state shipped in snapshots: attribute → value.
pub type AttrMap = BTreeMap<String, AttrValue>;

/// Wire messages of the centralized design.
#[derive(Debug, Clone)]
pub enum CentralMsg {
    /// Master asks a cluster head for its cluster's state.
    PollCluster,
    /// Head asks a leaf for its state.
    PollLeaf,
    /// Leaf replies with its full attribute map.
    LeafState {
        /// The leaf's attributes.
        attrs: AttrMap,
    },
    /// Head ships the whole cluster snapshot to the master.
    ClusterSnapshot {
        /// Per-leaf attribute maps.
        nodes: Vec<(NodeAddr, AttrMap)>,
    },
    /// A customer query: find `k` nodes with `attr = value`.
    Query {
        /// Query sequence number at the issuing node.
        seq: u32,
        /// Attribute to match.
        attr: String,
        /// Required value.
        value: AttrValue,
        /// Number of nodes wanted.
        k: u32,
    },
    /// The master's answer.
    QueryReply {
        /// Echo of the query sequence number.
        seq: u32,
        /// Matching nodes (up to `k`).
        nodes: Vec<NodeAddr>,
    },
}

fn attr_map_size(m: &AttrMap) -> usize {
    m.iter()
        .map(|(k, v)| {
            k.len()
                + match v {
                    AttrValue::Str(s) => s.len(),
                    _ => 8,
                }
        })
        .sum()
}

impl MessageSize for CentralMsg {
    fn wire_size(&self) -> usize {
        match self {
            CentralMsg::PollCluster | CentralMsg::PollLeaf => 1,
            CentralMsg::LeafState { attrs } => attr_map_size(attrs),
            CentralMsg::ClusterSnapshot { nodes } => {
                nodes.iter().map(|(_, m)| 4 + attr_map_size(m)).sum()
            }
            CentralMsg::Query { attr, .. } => 12 + attr.len(),
            CentralMsg::QueryReply { nodes, .. } => 8 + nodes.len() * 4,
        }
    }
}

/// Role of a node in the centralized hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The single global master.
    Master,
    /// One per site, aggregating its leaves.
    ClusterHead,
    /// An ordinary monitored node.
    Leaf,
}

/// A completed query observed at its issuing node.
#[derive(Debug, Clone)]
pub struct CentralQueryRecord {
    /// Local sequence number.
    pub seq: u32,
    /// Issue time.
    pub issued_at: SimTime,
    /// Completion time.
    pub completed_at: Option<SimTime>,
    /// Nodes returned.
    pub result: Vec<NodeAddr>,
}

/// One node of the centralized design.
#[derive(Debug)]
pub struct CentralNode {
    /// This node's role.
    pub role: Role,
    /// The cluster head this leaf reports to (leaves only).
    pub head: NodeAddr,
    /// The master's address.
    pub master: NodeAddr,
    /// This node's own attributes.
    pub attrs: AttrMap,
    /// Leaves of this cluster (heads only).
    pub leaves: Vec<NodeAddr>,
    /// In-progress cluster collection (heads only): replies still owed.
    pending_leaves: usize,
    collected: Vec<(NodeAddr, AttrMap)>,
    /// Global snapshot (master only): node → (attrs, as-of time).
    pub snapshot: BTreeMap<NodeAddr, (AttrMap, SimTime)>,
    /// Messages this node has received (the bottleneck metric).
    pub messages_in: u64,
    /// Bytes this node has received.
    pub bytes_in: u64,
    /// Queries issued by this node.
    pub queries: Vec<CentralQueryRecord>,
}

impl CentralNode {
    fn new(role: Role, head: NodeAddr, master: NodeAddr, leaves: Vec<NodeAddr>) -> Self {
        CentralNode {
            role,
            head,
            master,
            attrs: AttrMap::new(),
            leaves,
            pending_leaves: 0,
            collected: Vec::new(),
            snapshot: BTreeMap::new(),
            messages_in: 0,
            bytes_in: 0,
            queries: Vec::new(),
        }
    }
}

impl Actor for CentralNode {
    type Msg = CentralMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, CentralMsg>, from: NodeAddr, msg: CentralMsg) {
        self.messages_in += 1;
        self.bytes_in += msg.wire_size() as u64;
        match msg {
            CentralMsg::PollCluster => {
                // Head: fan a poll out to every leaf.
                self.pending_leaves = self.leaves.len();
                self.collected.clear();
                self.collected.push((ctx.self_addr(), self.attrs.clone()));
                if self.pending_leaves == 0 {
                    let nodes = std::mem::take(&mut self.collected);
                    ctx.send(self.master, CentralMsg::ClusterSnapshot { nodes });
                    return;
                }
                for leaf in self.leaves.clone() {
                    ctx.send(leaf, CentralMsg::PollLeaf);
                }
            }
            CentralMsg::PollLeaf => {
                ctx.send(
                    from,
                    CentralMsg::LeafState {
                        attrs: self.attrs.clone(),
                    },
                );
            }
            CentralMsg::LeafState { attrs } => {
                self.collected.push((from, attrs));
                self.pending_leaves = self.pending_leaves.saturating_sub(1);
                if self.pending_leaves == 0 {
                    let nodes = std::mem::take(&mut self.collected);
                    ctx.send(self.master, CentralMsg::ClusterSnapshot { nodes });
                }
            }
            CentralMsg::ClusterSnapshot { nodes } => {
                let now = ctx.now();
                for (addr, attrs) in nodes {
                    self.snapshot.insert(addr, (attrs, now));
                }
            }
            CentralMsg::Query {
                seq,
                attr,
                value,
                k,
            } => {
                // Master answers from its (possibly stale) snapshot.
                let nodes: Vec<NodeAddr> = self
                    .snapshot
                    .iter()
                    .filter(|(_, (attrs, _))| attrs.get(&attr) == Some(&value))
                    .map(|(addr, _)| *addr)
                    .take(k as usize)
                    .collect();
                ctx.send(from, CentralMsg::QueryReply { seq, nodes });
            }
            CentralMsg::QueryReply { seq, nodes } => {
                if let Some(rec) = self.queries.iter_mut().find(|r| r.seq == seq) {
                    rec.completed_at = Some(ctx.now());
                    rec.result = nodes;
                }
            }
        }
    }
}

/// Harness for the centralized baseline, mirroring the `Federation` API
/// shape so benches can drive both designs identically.
pub struct CentralPlane {
    sim: Simulation<CentralNode>,
    master: NodeAddr,
    heads: Vec<NodeAddr>,
}

impl CentralPlane {
    /// Builds the hierarchy: node 0 is the master, the first node of each
    /// site is its cluster head, everyone else is a leaf.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let master = NodeAddr(0);
        let heads: Vec<NodeAddr> = (0..topology.site_count() as u16)
            .map(|s| {
                *topology
                    .nodes_of_site(simnet::SiteId(s))
                    .first()
                    .expect("site has nodes")
            })
            .collect();
        let heads2 = heads.clone();
        let topo2 = topology.clone();
        let sim = Simulation::new(topology, seed, move |addr| {
            let site = topo2.site_of(addr);
            let head = heads2[site.0 as usize];
            let role = if addr == master {
                Role::Master
            } else if addr == head {
                Role::ClusterHead
            } else {
                Role::Leaf
            };
            let leaves: Vec<NodeAddr> = if addr == head {
                topo2
                    .nodes_of_site(site)
                    .into_iter()
                    .filter(|n| *n != head && *n != master)
                    .collect()
            } else {
                Vec::new()
            };
            CentralNode::new(role, head, master, leaves)
        });
        CentralPlane { sim, master, heads }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Simulation<CentralNode> {
        &self.sim
    }

    /// Mutable simulation access.
    pub fn sim_mut(&mut self) -> &mut Simulation<CentralNode> {
        &mut self.sim
    }

    /// The master's address.
    pub fn master(&self) -> NodeAddr {
        self.master
    }

    /// Sets an attribute on a node (picked up at the next poll round).
    pub fn set_attr(&mut self, node: NodeAddr, attr: &str, value: AttrValue) {
        let attr = attr.to_owned();
        let now = self.sim.now();
        self.sim.schedule_call(now, node, move |a, _| {
            a.attrs.insert(attr, value);
        });
    }

    /// Runs one poll round: master polls every head, heads poll leaves,
    /// snapshots flow back up.
    pub fn poll_round(&mut self) {
        let heads = self.heads.clone();
        let now = self.sim.now();
        self.sim.schedule_call(now, self.master, move |_, ctx| {
            for head in heads {
                ctx.send(head, CentralMsg::PollCluster);
            }
        });
        self.sim.run_until_idle();
    }

    /// Issues an equality query from `node`; returns its local sequence
    /// number.
    pub fn query(&mut self, node: NodeAddr, attr: &str, value: AttrValue, k: u32) -> u32 {
        let attr = attr.to_owned();
        let master = self.master;
        let now = self.sim.now();
        let seq = self.sim.actor(node).queries.len() as u32;
        self.sim.schedule_call(now, node, move |a, ctx| {
            let seq = a.queries.len() as u32;
            a.queries.push(CentralQueryRecord {
                seq,
                issued_at: ctx.now(),
                completed_at: None,
                result: Vec::new(),
            });
            ctx.send(
                master,
                CentralMsg::Query {
                    seq,
                    attr,
                    value,
                    k,
                },
            );
        });
        seq
    }

    /// Lets in-flight traffic drain.
    pub fn settle(&mut self) {
        self.sim.run_until_idle();
    }

    /// Runs for a fixed span.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Messages received by the master so far — the central bottleneck.
    pub fn master_load(&self) -> (u64, u64) {
        let m = self.sim.actor(self.master);
        (m.messages_in, m.bytes_in)
    }

    /// A node's query records.
    pub fn queries(&self, node: NodeAddr) -> &[CentralQueryRecord] {
        &self.sim.actor(node).queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_round_builds_a_global_snapshot() {
        let mut cp = CentralPlane::new(Topology::aws_ec2_8_sites(5), 1);
        cp.set_attr(NodeAddr(7), "GPU", AttrValue::Bool(true));
        cp.settle();
        cp.poll_round();
        let master = cp.sim().actor(cp.master());
        assert!(master.snapshot.len() >= 39, "snapshot covers the fleet");
        let (attrs, _) = &master.snapshot[&NodeAddr(7)];
        assert_eq!(attrs.get("GPU"), Some(&AttrValue::Bool(true)));
    }

    #[test]
    fn queries_are_answered_from_the_snapshot() {
        let mut cp = CentralPlane::new(Topology::aws_ec2_8_sites(5), 2);
        cp.set_attr(NodeAddr(12), "Matlab", AttrValue::str("8.0"));
        cp.settle();
        cp.poll_round();
        let seq = cp.query(NodeAddr(30), "Matlab", AttrValue::str("8.0"), 1);
        cp.settle();
        let rec = &cp.queries(NodeAddr(30))[seq as usize];
        assert!(rec.completed_at.is_some());
        assert_eq!(rec.result, vec![NodeAddr(12)]);
    }

    #[test]
    fn stale_snapshot_misses_new_resources_until_next_poll() {
        let mut cp = CentralPlane::new(Topology::aws_ec2_8_sites(4), 3);
        cp.poll_round();
        cp.set_attr(NodeAddr(9), "FPGA", AttrValue::Bool(true));
        cp.settle();
        let seq = cp.query(NodeAddr(20), "FPGA", AttrValue::Bool(true), 1);
        cp.settle();
        assert!(
            cp.queries(NodeAddr(20))[seq as usize].result.is_empty(),
            "centralized design serves stale data between polls"
        );
        cp.poll_round();
        let seq = cp.query(NodeAddr(20), "FPGA", AttrValue::Bool(true), 1);
        cp.settle();
        assert_eq!(
            cp.queries(NodeAddr(20))[seq as usize].result,
            vec![NodeAddr(9)]
        );
    }

    #[test]
    fn master_load_scales_with_fleet_size() {
        let load = |per_site: usize| {
            let mut cp = CentralPlane::new(Topology::aws_ec2_8_sites(per_site), 4);
            cp.settle();
            cp.poll_round();
            cp.master_load().1
        };
        let small = load(5);
        let big = load(20);
        assert!(
            big > small * 2,
            "master bytes must grow with fleet size: {small} -> {big}"
        );
    }
}
