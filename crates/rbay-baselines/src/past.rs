//! A PAST-style passive key-value store, the memory baseline of Fig. 8c.
//!
//! PAST (Rowstron & Druschel, SOSP'01) stores immutable values against
//! keys with no per-entry behaviour. The paper compares RBAY's
//! active-attribute memory footprint against "Past nodes [where] only the
//! NodeId is saved, which returns the same list of NodeIds upon a get
//! request" (§IV.B.3). This module reproduces exactly that baseline.

use pastry::NodeId;
use std::collections::BTreeMap;

/// A passive attribute store: each attribute maps to the NodeIds holding
/// it. `get` returns the same list unconditionally — no handlers, no
/// policy.
///
/// ```
/// use rbay_baselines::PastStore;
/// use pastry::NodeId;
///
/// let mut store = PastStore::new();
/// store.put("GPU", NodeId(27));
/// assert_eq!(store.get("GPU"), &[NodeId(27)]);
/// assert!(store.get("TPU").is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PastStore {
    entries: BTreeMap<String, Vec<NodeId>>,
}

impl PastStore {
    /// An empty store.
    pub fn new() -> Self {
        PastStore::default()
    }

    /// Registers `node` under `attr`.
    pub fn put(&mut self, attr: &str, node: NodeId) {
        let list = self.entries.entry(attr.to_owned()).or_default();
        if !list.contains(&node) {
            list.push(node);
        }
    }

    /// The unconditional NodeId list for `attr` (the PAST `get`).
    pub fn get(&self, attr: &str) -> &[NodeId] {
        self.entries.get(attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Removes `node` from `attr`, dropping the entry when empty.
    pub fn remove(&mut self, attr: &str, node: NodeId) {
        if let Some(list) = self.entries.get_mut(attr) {
            list.retain(|n| *n != node);
            if list.is_empty() {
                self.entries.remove(attr);
            }
        }
    }

    /// Number of stored attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes — the quantity plotted against
    /// RBAY's AA footprint in Fig. 8c.
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, v)| k.len() + std::mem::size_of::<NodeId>() * v.len() + 48)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let mut s = PastStore::new();
        s.put("GPU", NodeId(1));
        s.put("GPU", NodeId(2));
        s.put("GPU", NodeId(1)); // duplicate ignored
        assert_eq!(s.get("GPU"), &[NodeId(1), NodeId(2)]);
        assert_eq!(s.get("missing"), &[] as &[NodeId]);
        s.remove("GPU", NodeId(1));
        assert_eq!(s.get("GPU"), &[NodeId(2)]);
        s.remove("GPU", NodeId(2));
        assert!(s.is_empty());
    }

    #[test]
    fn size_grows_linearly_with_attributes() {
        let mut s = PastStore::new();
        for i in 0..100 {
            s.put(&format!("attr{i}"), NodeId(i as u128));
        }
        let at_100 = s.size_bytes();
        for i in 100..200 {
            s.put(&format!("attr{i}"), NodeId(i as u128));
        }
        let at_200 = s.size_bytes();
        let per_attr_1 = at_100 as f64 / 100.0;
        let per_attr_2 = (at_200 - at_100) as f64 / 100.0;
        assert!(
            (per_attr_1 - per_attr_2).abs() / per_attr_1 < 0.2,
            "roughly linear"
        );
    }
}
