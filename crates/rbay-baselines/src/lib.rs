//! # rbay-baselines — comparison systems from the paper's evaluation
//!
//! * [`PastStore`] — the PAST-style passive key-value baseline of the
//!   Fig. 8c memory comparison: per attribute, only a NodeId list, no
//!   handlers.
//! * [`CentralPlane`] — the Ganglia-style centralized hierarchy of paper
//!   §II.A / Fig. 3a: one master polling per-site cluster heads. Used by
//!   the ablation benches to demonstrate the central bottleneck and
//!   staleness RBAY's decentralized trees avoid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod central;
mod past;

pub use central::{CentralMsg, CentralNode, CentralPlane, CentralQueryRecord, Role};
pub use past::PastStore;
