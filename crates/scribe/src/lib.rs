//! # scribe — tree-based group communication with aggregation
//!
//! The group-communication substrate of the RBAY reproduction (paper
//! §II.B.2–3). Nodes sharing a resource attribute gather into a spanning
//! tree named by `TopicId = SHA-1(name ++ creator)`, rooted at the node
//! whose NodeId is numerically closest to the TopicId, and built from the
//! union of JOIN paths through the Pastry overlay.
//!
//! Three primitives operate over each tree:
//!
//! * **multicast** — dissemination from the root to every subscriber (RBAY
//!   uses it to push admin policy changes);
//! * **anycast** — a distributed depth-first search that stops at the first
//!   member accepting the visit (RBAY uses it to discover available
//!   resources near the querier);
//! * **aggregate** — RBAY's extension: periodic roll-up of composable
//!   functions (count, sum, min, max, mean) from the leaves to the root,
//!   giving the root a cheap global view such as the tree size.
//!
//! The layer is sans-I/O like the `pastry` crate: plug a [`ScribeLayer`]
//! and your [`ScribeHost`] into a [`ScribeApp`] and feed it Pastry
//! messages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layer;
mod seeded;
mod types;

pub use layer::{
    ReplicaCache, ScribeApp, ScribeHost, ScribeLayer, TopicState, REPLICA_K, REPLICA_TTL_ROUNDS,
};
pub use seeded::seeded_bug_active;
#[cfg(feature = "seeded-bugs")]
pub use seeded::set_seeded_bug;
pub use types::{AggValue, ScribeMsg, TopicId, Visit};
