//! Topic naming, aggregate values, and Scribe wire messages.

use pastry::{NodeId, NodeInfo};
use simnet::{MessageSize, NodeAddr, SiteId};

/// Identifies a Scribe tree: the hash of the tree's textual name
/// concatenated with its creator's name (paper §II.B.2). The node whose
/// NodeId is numerically closest to the TopicId is the tree's rendezvous
/// root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicId(pub NodeId);

impl TopicId {
    /// `TopicId = SHA-1(name ++ "@" ++ creator)`.
    ///
    /// ```
    /// use scribe::TopicId;
    /// let a = TopicId::new("GPU", "rbay");
    /// assert_eq!(a, TopicId::new("GPU", "rbay"));
    /// assert_ne!(a, TopicId::new("GPU", "grace"));
    /// ```
    pub fn new(name: &str, creator: &str) -> Self {
        let mut buf = Vec::with_capacity(name.len() + creator.len() + 1);
        buf.extend_from_slice(name.as_bytes());
        buf.push(b'@');
        buf.extend_from_slice(creator.as_bytes());
        TopicId(NodeId::hash_of(&buf))
    }

    /// A site-scoped variant of the topic: the same logical tree name but
    /// hashed together with the site, so every site gets its own rendezvous
    /// point (used by RBAY's administrative isolation and hybrid naming).
    pub fn scoped(name: &str, creator: &str, site: SiteId) -> Self {
        TopicId::new(&format!("{name}#site{}", site.0), creator)
    }

    /// The underlying ring key.
    pub fn key(self) -> NodeId {
        self.0
    }
}

impl std::fmt::Display for TopicId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topic:{}", self.0)
    }
}

/// A composable aggregate carried up the tree (paper §II.B.3): any function
/// with a hierarchical-computation property — here count, sum, min, max,
/// mean, and element-wise composites of those — can be rolled up through
/// intermediate nodes.
///
/// ```
/// use scribe::AggValue;
/// // A subtree of 3 members with mean utilization 20 merges with a
/// // sibling subtree of 1 member at utilization 60:
/// let mut a = AggValue::Multi(vec![
///     AggValue::Count(3),
///     AggValue::Mean { sum: 60.0, count: 3 },
/// ]);
/// a.merge(&AggValue::Multi(vec![
///     AggValue::Count(1),
///     AggValue::Mean { sum: 60.0, count: 1 },
/// ]));
/// assert_eq!(a.as_count(), Some(4));
/// assert_eq!(a.component(1).unwrap().as_f64(), 30.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// Number of contributing members (tree size when every member
    /// contributes `Count(1)`).
    Count(u64),
    /// Sum of contributions.
    Sum(f64),
    /// Minimum contribution.
    Min(f64),
    /// Maximum contribution.
    Max(f64),
    /// Mean of contributions, kept as (sum, count) so it stays composable.
    Mean {
        /// Sum of contributions.
        sum: f64,
        /// Number of contributions.
        count: u64,
    },
    /// Several aggregates rolled up together, merged element-wise — RBAY
    /// trees track both their size and attribute statistics in one pass
    /// ("the size of the tree, the average value of all nodes'
    /// attributes", §II.B.3).
    Multi(Vec<AggValue>),
}

impl AggValue {
    /// Merges `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two values are different aggregate kinds — trees are
    /// configured with a single kind, so a mismatch is a protocol bug.
    pub fn merge(&mut self, other: &AggValue) {
        match (self, other) {
            (AggValue::Count(a), AggValue::Count(b)) => *a += b,
            (AggValue::Sum(a), AggValue::Sum(b)) => *a += b,
            (AggValue::Min(a), AggValue::Min(b)) => *a = a.min(*b),
            (AggValue::Max(a), AggValue::Max(b)) => *a = a.max(*b),
            (AggValue::Mean { sum: s1, count: c1 }, AggValue::Mean { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (AggValue::Multi(xs), AggValue::Multi(ys)) => {
                assert_eq!(xs.len(), ys.len(), "multi-aggregate arity mismatch");
                for (x, y) in xs.iter_mut().zip(ys) {
                    x.merge(y);
                }
            }
            (a, b) => panic!("cannot merge aggregate kinds {a:?} and {b:?}"),
        }
    }

    /// Merges a sequence of values, returning `None` for an empty sequence.
    pub fn merge_all<'a>(vals: impl IntoIterator<Item = &'a AggValue>) -> Option<AggValue> {
        let mut it = vals.into_iter();
        let mut acc = it.next()?.clone();
        for v in it {
            acc.merge(v);
        }
        Some(acc)
    }

    /// The tree-size reading of this aggregate: a count, or the first
    /// count inside a multi-aggregate.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            AggValue::Count(n) => Some(*n),
            AggValue::Multi(xs) => xs.iter().find_map(|x| x.as_count()),
            _ => None,
        }
    }

    /// The `i`-th component of a multi-aggregate (or self for `i == 0` on
    /// plain aggregates).
    pub fn component(&self, i: usize) -> Option<&AggValue> {
        match self {
            AggValue::Multi(xs) => xs.get(i),
            other if i == 0 => Some(other),
            _ => None,
        }
    }

    /// The numeric reading: count, sum, min, max, or the resolved mean.
    pub fn as_f64(&self) -> f64 {
        match self {
            AggValue::Count(n) => *n as f64,
            AggValue::Sum(v) | AggValue::Min(v) | AggValue::Max(v) => *v,
            AggValue::Mean { sum, count } => {
                if *count == 0 {
                    0.0
                } else {
                    sum / *count as f64
                }
            }
            AggValue::Multi(xs) => xs.first().map(|x| x.as_f64()).unwrap_or(0.0),
        }
    }
}

/// The decision returned by a host when an anycast visits its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Keep walking the tree.
    Continue,
    /// The anycast is satisfied; return the payload to its origin.
    Stop,
}

/// Scribe wire messages; `P` is the embedding application's payload type.
///
/// Messages marked *(routed)* travel inside `PastryMsg::Route` toward the
/// topic's rendezvous key; the rest travel as `PastryMsg::Direct` between
/// specific nodes.
#[derive(Debug, Clone)]
pub enum ScribeMsg<P> {
    /// *(routed)* A subscription heading for the rendezvous root. Each
    /// intermediate node grafts the child and re-issues the join for itself
    /// — the tree is the union of the join paths.
    Join {
        /// The tree being joined.
        topic: TopicId,
        /// Site scope for isolation-scoped trees.
        scope: Option<SiteId>,
        /// The node to graft as a child of the interceptor.
        child: NodeInfo,
    },
    /// The interceptor/root tells the child it is now grafted.
    JoinAck {
        /// The tree joined.
        topic: TopicId,
    },
    /// A child detaches from its parent.
    Leave {
        /// The tree being left.
        topic: TopicId,
        /// The departing child.
        child: NodeAddr,
    },
    /// *(routed)* Multicast request heading for the root, which disseminates
    /// it down the tree.
    MulticastReq {
        /// Target tree.
        topic: TopicId,
        /// Scope of the tree.
        scope: Option<SiteId>,
        /// Application payload.
        payload: P,
    },
    /// Dissemination hop of a multicast, parent to child.
    MulticastData {
        /// Target tree.
        topic: TopicId,
        /// Application payload.
        payload: P,
    },
    /// *(routed)* Anycast entering the tree; the first member on the route
    /// takes over with a depth-first walk.
    Anycast {
        /// Target tree.
        topic: TopicId,
        /// Scope of the tree.
        scope: Option<SiteId>,
        /// Application payload (mutated by visits).
        payload: P,
        /// Node awaiting the result.
        origin: NodeAddr,
    },
    /// One DFS step of an anycast walk.
    AnycastStep {
        /// Target tree.
        topic: TopicId,
        /// Application payload (mutated by visits).
        payload: P,
        /// Node awaiting the result.
        origin: NodeAddr,
        /// Nodes already visited.
        visited: Vec<NodeAddr>,
        /// DFS stack of nodes still to visit.
        stack: Vec<NodeAddr>,
    },
    /// Final answer of an anycast, sent to its origin.
    AnycastResult {
        /// Target tree.
        topic: TopicId,
        /// Application payload after all visits.
        payload: P,
        /// Whether some visit accepted (returned [`Visit::Stop`]).
        satisfied: bool,
    },
    /// *(routed)* Asks the tree root to fill in its aggregate (e.g. tree
    /// size) and reply to `origin` (query protocol step 1-2, Fig. 7).
    ProbeRoot {
        /// Target tree.
        topic: TopicId,
        /// Scope of the tree.
        scope: Option<SiteId>,
        /// Application payload for the host to annotate.
        payload: P,
        /// Node awaiting the reply.
        origin: NodeAddr,
    },
    /// The root's answer to a [`ScribeMsg::ProbeRoot`].
    ProbeReply {
        /// Target tree.
        topic: TopicId,
        /// Annotated payload.
        payload: P,
        /// The root's current aggregate, if the tree exists.
        agg: Option<AggValue>,
        /// Whether the probed tree exists at the rendezvous node.
        exists: bool,
    },
    /// Periodic aggregate roll-up, child to parent.
    AggUpdate {
        /// Target tree.
        topic: TopicId,
        /// The child's merged subtree aggregate.
        value: AggValue,
    },
    /// NACK from a would-be parent that does not list the sender among its
    /// children (e.g. after a false-positive failure declaration dropped
    /// it). The orphan clears its stale parent pointer and re-joins.
    NotChild {
        /// The tree the sender is no longer attached to.
        topic: TopicId,
    },
    /// An application message between hosts, outside any tree.
    AppDirect(P),
    /// Root → leaf-set neighbour: a warm mirror of the root's rendezvous
    /// state (child set, merged aggregate, subscriber summary). Pushed
    /// every aggregate tick to the k leaf-set members nearest the topic
    /// key, so a successor root promotes from the cache instead of
    /// rebuilding the tree from scratch when the root dies.
    ReplicaSync {
        /// The mirrored tree.
        topic: TopicId,
        /// Scope of the tree.
        scope: Option<SiteId>,
        /// The root's children at push time.
        children: Vec<NodeAddr>,
        /// The root's merged aggregate at push time.
        agg: Option<AggValue>,
        /// Subscriber summary (the aggregate's count reading).
        subscribers: u64,
    },
}

impl<P: MessageSize> MessageSize for ScribeMsg<P> {
    fn wire_size(&self) -> usize {
        const ID: usize = 16;
        const ADDR: usize = 4;
        match self {
            ScribeMsg::Join { .. } => ID + 3 + 22,
            ScribeMsg::JoinAck { .. } => ID,
            ScribeMsg::Leave { .. } => ID + ADDR,
            ScribeMsg::MulticastReq { payload, .. } | ScribeMsg::MulticastData { payload, .. } => {
                ID + payload.wire_size()
            }
            ScribeMsg::Anycast { payload, .. } => ID + ADDR + payload.wire_size(),
            ScribeMsg::AnycastStep {
                payload,
                visited,
                stack,
                ..
            } => ID + ADDR + payload.wire_size() + (visited.len() + stack.len()) * ADDR,
            ScribeMsg::AnycastResult { payload, .. } => ID + 1 + payload.wire_size(),
            ScribeMsg::ProbeRoot { payload, .. } => ID + ADDR + payload.wire_size(),
            ScribeMsg::ProbeReply { payload, .. } => ID + 24 + 1 + payload.wire_size(),
            ScribeMsg::AggUpdate { .. } => ID + 24,
            ScribeMsg::NotChild { .. } => ID,
            ScribeMsg::AppDirect(p) => p.wire_size(),
            ScribeMsg::ReplicaSync { children, .. } => ID + 3 + 24 + 8 + children.len() * ADDR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_ids_are_stable_and_creator_sensitive() {
        assert_eq!(TopicId::new("GPU", "a"), TopicId::new("GPU", "a"));
        assert_ne!(TopicId::new("GPU", "a"), TopicId::new("GPU", "b"));
        assert_ne!(TopicId::new("GPU", "a"), TopicId::new("CPU", "a"));
    }

    #[test]
    fn scoped_topics_differ_per_site() {
        let a = TopicId::scoped("GPU", "rbay", SiteId(0));
        let b = TopicId::scoped("GPU", "rbay", SiteId(1));
        assert_ne!(a, b);
        assert_ne!(a, TopicId::new("GPU", "rbay"));
    }

    #[test]
    fn count_merge() {
        let mut a = AggValue::Count(3);
        a.merge(&AggValue::Count(4));
        assert_eq!(a.as_count(), Some(7));
    }

    #[test]
    fn min_max_sum_merge() {
        let mut mn = AggValue::Min(3.0);
        mn.merge(&AggValue::Min(-1.0));
        assert_eq!(mn.as_f64(), -1.0);
        let mut mx = AggValue::Max(3.0);
        mx.merge(&AggValue::Max(9.0));
        assert_eq!(mx.as_f64(), 9.0);
        let mut s = AggValue::Sum(1.5);
        s.merge(&AggValue::Sum(2.5));
        assert_eq!(s.as_f64(), 4.0);
    }

    #[test]
    fn mean_stays_composable() {
        // mean([1,2]) merged with mean([6]) == mean([1,2,6]).
        let mut a = AggValue::Mean { sum: 3.0, count: 2 };
        a.merge(&AggValue::Mean { sum: 6.0, count: 1 });
        assert_eq!(a.as_f64(), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn kind_mismatch_panics() {
        AggValue::Count(1).merge(&AggValue::Sum(1.0));
    }

    #[test]
    fn merge_all_handles_empty_and_order() {
        assert_eq!(AggValue::merge_all([]), None);
        let vals = [AggValue::Count(1), AggValue::Count(2), AggValue::Count(3)];
        assert_eq!(
            AggValue::merge_all(vals.iter()).unwrap().as_count(),
            Some(6)
        );
    }

    #[test]
    fn multi_merges_element_wise() {
        let mut a = AggValue::Multi(vec![
            AggValue::Count(2),
            AggValue::Mean {
                sum: 10.0,
                count: 2,
            },
            AggValue::Max(3.0),
        ]);
        a.merge(&AggValue::Multi(vec![
            AggValue::Count(1),
            AggValue::Mean {
                sum: 20.0,
                count: 1,
            },
            AggValue::Max(9.0),
        ]));
        assert_eq!(a.as_count(), Some(3));
        assert_eq!(a.component(1).unwrap().as_f64(), 10.0);
        assert_eq!(a.component(2).unwrap().as_f64(), 9.0);
        assert!(a.component(3).is_none());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn multi_arity_mismatch_panics() {
        AggValue::Multi(vec![AggValue::Count(1)]).merge(&AggValue::Multi(vec![
            AggValue::Count(1),
            AggValue::Count(2),
        ]));
    }

    #[test]
    fn as_count_rejects_other_kinds() {
        assert_eq!(AggValue::Sum(2.0).as_count(), None);
        assert_eq!(AggValue::Mean { sum: 0.0, count: 0 }.as_f64(), 0.0);
    }
}
