//! The Scribe protocol layer: tree membership, multicast, anycast, and
//! RBAY's aggregation extension.
//!
//! [`ScribeLayer`] holds per-topic tree state and is driven in two ways:
//!
//! * **Operations** (subscribe, multicast, anycast, probe, aggregate tick)
//!   are methods called by the embedding node with its Pastry state and a
//!   [`Net`] handle.
//! * **Messages** arrive through [`ScribeApp`], the [`PastryApp`] glue that
//!   intercepts routed joins/anycasts (building trees from the union of
//!   join paths) and dispatches direct tree messages.
//!
//! Application behaviour is injected through [`ScribeHost`]: visit
//! decisions, multicast consumption, and probe/anycast results.

use crate::types::{AggValue, ScribeMsg, TopicId, Visit};
use pastry::{Net, NodeInfo, PastryApp, PastryNode};
use simnet::obs::{ObsEvent, Recorder};
use simnet::{MessageSize, NodeAddr, SiteId};
use std::collections::{BTreeMap, BTreeSet};

/// Application callbacks for tree events.
///
/// Callbacks only mutate host state and return decisions; hosts that need to
/// launch follow-up operations queue them internally and drain the queue
/// after message dispatch returns (see `rbay-core`).
pub trait ScribeHost<P> {
    /// A multicast payload reached this (subscribed) node.
    fn on_multicast(&mut self, topic: TopicId, payload: &P);

    /// An anycast walk is visiting this (subscribed) node; mutate the
    /// payload and decide whether the walk stops here.
    fn on_anycast_visit(&mut self, topic: TopicId, payload: &mut P) -> Visit;

    /// An anycast this node originated has finished.
    fn on_anycast_result(&mut self, topic: TopicId, payload: P, satisfied: bool);

    /// A root probe this node originated has been answered.
    fn on_probe_reply(&mut self, topic: TopicId, payload: P, agg: Option<AggValue>, exists: bool);

    /// A direct application message arrived.
    fn on_direct(&mut self, from: NodeAddr, payload: P);

    /// The tree root is answering a probe; annotate the payload if desired.
    fn on_root_probe(&mut self, topic: TopicId, payload: &mut P) {
        let _ = (topic, payload);
    }

    /// This node completed its subscription (grafted, or became root).
    fn on_subscribed(&mut self, topic: TopicId) {
        let _ = topic;
    }
}

/// Per-topic tree state at one node.
#[derive(Debug, Clone, Default)]
pub struct TopicState {
    /// Upstream neighbour (`None` at the root or while a join is in
    /// flight).
    pub parent: Option<NodeAddr>,
    /// Downstream neighbours (the children table of paper §II.B.2).
    pub children: BTreeSet<NodeAddr>,
    /// Whether this node is a leaf-subscriber (vs a pure forwarder).
    pub subscribed: bool,
    /// Whether this node is the rendezvous root.
    pub is_root: bool,
    /// Site scope of the tree, for isolation-scoped topics.
    pub scope: Option<SiteId>,
    /// This node's own contribution to the tree aggregate.
    pub local_value: Option<AggValue>,
    /// Last aggregate reported by each child.
    pub child_agg: BTreeMap<NodeAddr, AggValue>,
    /// Aggregate ticks this node has run for this topic.
    pub agg_round: u64,
    /// Last tick each child was grafted or pushed an aggregate; children
    /// silent past [`STALE_AGG_ROUNDS`] are expired (see
    /// [`ScribeLayer::aggregate_tick`]).
    pub child_seen: BTreeMap<NodeAddr, u64>,
    /// Aggregate inherited from a [`ReplicaCache`] at promotion: the
    /// pre-crash whole-tree view, answered to probes while the promoted
    /// root's own child reports converge. Cleared once a child reports or
    /// after [`STALE_AGG_ROUNDS`] ticks.
    pub warm_agg: Option<AggValue>,
    /// The tick [`TopicState::warm_agg`] was installed at.
    pub warm_agg_round: u64,
}

/// Ticks a child may stay silent before its edge and cached aggregate are
/// expired. Attached children push every tick, so silence this long means
/// the child crashed or re-parented elsewhere while its `Leave` was lost.
pub const STALE_AGG_ROUNDS: u64 = 4;

/// Leaf-set members (nearest the topic key) the root mirrors its
/// rendezvous state to every aggregate tick. The successor rendezvous is
/// by definition the next-closest id to the key, so it is (almost always)
/// one of the k replicas and promotes warm.
pub const REPLICA_K: usize = 3;

/// Ticks a replica may go unrefreshed before it is dropped. The root
/// pushes every tick, so a replica this stale means the root died (and
/// someone else promoted) or this node fell out of the root's leaf set.
pub const REPLICA_TTL_ROUNDS: u64 = 8;

/// A warm mirror of a remote root's rendezvous state, held at one of the
/// k leaf-set members nearest the topic key (pushed via
/// [`ScribeMsg::ReplicaSync`], consumed by root promotion).
#[derive(Debug, Clone)]
pub struct ReplicaCache {
    /// The root that pushed this replica.
    pub root: NodeAddr,
    /// Scope of the mirrored tree.
    pub scope: Option<SiteId>,
    /// The root's children at push time.
    pub children: Vec<NodeAddr>,
    /// The root's merged aggregate at push time.
    pub agg: Option<AggValue>,
    /// Subscriber summary (the aggregate's count reading).
    pub subscribers: u64,
    /// Ticks since the last refresh; expired past
    /// [`REPLICA_TTL_ROUNDS`].
    pub age: u64,
}

impl TopicState {
    /// Whether the node participates in the tree at all.
    pub fn is_member(&self) -> bool {
        self.subscribed || self.is_root || !self.children.is_empty() || self.parent.is_some()
    }

    /// The merged aggregate of this node's subtree: its own contribution
    /// (when subscribed) plus the cached child reports.
    pub fn merged_agg(&self) -> Option<AggValue> {
        let own = if self.subscribed {
            self.local_value.clone()
        } else {
            None
        };
        AggValue::merge_all(own.iter().chain(self.child_agg.values()))
    }
}

/// Scribe tree state for one node, across all topics.
#[derive(Debug, Default)]
pub struct ScribeLayer {
    topics: BTreeMap<TopicId, TopicState>,
    /// Warm mirrors of remote roots' rendezvous state (see
    /// [`ReplicaCache`]); consumed on promotion, expired past
    /// [`REPLICA_TTL_ROUNDS`] unrefreshed ticks.
    replicas: BTreeMap<TopicId, ReplicaCache>,
    /// Observability-plane handle; disabled (a no-op) by default.
    obs: Recorder,
}

impl ScribeLayer {
    /// An empty layer.
    pub fn new() -> Self {
        ScribeLayer::default()
    }

    /// Installs an observability recorder (a clone of the federation-wide
    /// handle); tree-maintenance hooks stay no-ops while it is disabled.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Read-only view of a topic's state, if the node participates.
    pub fn topic(&self, topic: TopicId) -> Option<&TopicState> {
        self.topics.get(&topic)
    }

    /// Iterates over `(topic, state)` pairs this node participates in.
    pub fn topics(&self) -> impl Iterator<Item = (&TopicId, &TopicState)> {
        self.topics.iter()
    }

    /// Whether this node participates in `topic`.
    pub fn is_member(&self, topic: TopicId) -> bool {
        self.topics.get(&topic).is_some_and(|s| s.is_member())
    }

    /// The warm replica held for `topic`, if any.
    pub fn replica(&self, topic: TopicId) -> Option<&ReplicaCache> {
        self.replicas.get(&topic)
    }

    /// Iterates over the warm replicas of remote roots held at this node.
    pub fn replicas(&self) -> impl Iterator<Item = (&TopicId, &ReplicaCache)> {
        self.replicas.iter()
    }

    /// Promotes this node to root of `topic` from its warm replica, if one
    /// is cached: adopts the mirrored child set and re-points every child
    /// here with an immediate `JoinAck` (the child's handler detaches it
    /// from the dead root), and installs the mirrored aggregate as the
    /// probe answer until the children re-report. A node with no cache
    /// falls back to the cold rebuild path unchanged.
    fn promote_from_replica<P, N>(&mut self, me: NodeInfo, net: &mut N, topic: TopicId)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        let Some(rep) = self.replicas.remove(&topic) else {
            return;
        };
        let root = rep.root;
        let st = self.topics.entry(topic).or_default();
        if st.scope.is_none() {
            st.scope = rep.scope;
        }
        st.is_root = true;
        let round = st.agg_round;
        for c in rep.children {
            if c == me.addr || c == root {
                continue;
            }
            st.child_seen.insert(c, round);
            if st.children.insert(c) {
                self.obs.record_with(|at| ObsEvent::TreeGraft {
                    at,
                    parent: me.addr,
                    child: c,
                    topic: topic.key().as_u128(),
                });
            }
            net.send(c, pastry::PastryMsg::Direct(ScribeMsg::JoinAck { topic }));
        }
        let st = self.topics.get_mut(&topic).expect("just inserted");
        st.warm_agg = rep.agg;
        st.warm_agg_round = round;
        self.obs.count(me.addr, "replica_promote");
    }

    /// Subscribes this node to `topic`. If the node is the rendezvous root
    /// it attaches immediately; otherwise a JOIN is routed toward the
    /// topic key and the tree grows by the union of join paths.
    pub fn subscribe<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let st = self.topics.entry(topic).or_default();
        st.scope = scope;
        let was_attached = st.is_root || st.parent.is_some();
        if st.subscribed && was_attached {
            return;
        }
        st.subscribed = true;
        if was_attached {
            host.on_subscribed(topic);
            return;
        }
        match pastry.next_hop(topic.key(), scope) {
            None => {
                st.is_root = true;
                self.promote_from_replica::<P, N>(pastry.info(), net, topic);
                host.on_subscribed(topic);
            }
            Some(next) => {
                let child = pastry.info();
                net.send(
                    next.addr,
                    pastry::PastryMsg::Route {
                        key: topic.key(),
                        payload: ScribeMsg::Join {
                            topic,
                            scope,
                            child,
                        },
                        hops: 1,
                        scope,
                    },
                );
            }
        }
    }

    /// Unsubscribes from `topic`. Forwarder state is pruned lazily: a node
    /// with no children and no subscription leaves its parent too.
    pub fn unsubscribe<P, N>(&mut self, pastry: &mut PastryNode, net: &mut N, topic: TopicId)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        if let Some(st) = self.topics.get_mut(&topic) {
            st.subscribed = false;
            st.local_value = None;
        }
        self.maybe_prune::<P, N>(pastry, net, topic);
    }

    fn maybe_prune<P, N>(&mut self, pastry: &mut PastryNode, net: &mut N, topic: TopicId)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        let Some(st) = self.topics.get(&topic) else {
            return;
        };
        // A childless, unsubscribed root is pruned like any other node
        // (it has no parent, so no Leave goes out); a later Join simply
        // re-creates the root state at the rendezvous node. Keeping it
        // alive would leak topic state forever.
        if st.subscribed || !st.children.is_empty() {
            return;
        }
        if let Some(parent) = st.parent {
            net.send(
                parent,
                pastry::PastryMsg::Direct(ScribeMsg::Leave {
                    topic,
                    child: pastry.info().addr,
                }),
            );
        }
        self.obs.count(pastry.info().addr, "tree_prune");
        self.topics.remove(&topic);
    }

    /// Sets this node's contribution to the topic's aggregate (e.g.
    /// `Count(1)` for tree size).
    pub fn set_local_value(&mut self, topic: TopicId, value: AggValue) {
        if let Some(st) = self.topics.get_mut(&topic) {
            st.local_value = Some(value);
        }
    }

    /// Pushes merged subtree aggregates one level up every tree this node
    /// participates in (the paper's periodic `aggregate` primitive). Call
    /// from a periodic timer; after `O(depth)` ticks the root's aggregate
    /// is exact.
    pub fn aggregate_tick<P, N>(&mut self, pastry: &mut PastryNode, net: &mut N)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        let me = pastry.info().addr;
        // Expire children silent past the staleness bound: their cached
        // report would otherwise be merged rootward forever even though
        // the child crashed or moved to another parent (its Leave lost in
        // flight). A live expired child is NACKed into a clean re-join by
        // its next push.
        let mut emptied = Vec::new();
        let mut demoted = Vec::new();
        let mut rejoining = Vec::new();
        let mut promoted = Vec::new();
        for (topic, st) in &mut self.topics {
            st.agg_round += 1;
            let round = st.agg_round;
            // A warm aggregate inherited at promotion decays: once a child
            // reports (the live view is converging) or the staleness bound
            // passes, the root answers from its own subtree again.
            if st.warm_agg.is_some()
                && (!st.child_agg.is_empty()
                    || round.saturating_sub(st.warm_agg_round) > STALE_AGG_ROUNDS)
            {
                st.warm_agg = None;
            }
            // Stale-root demotion: in a healed overlay exactly one node has
            // no next hop toward the key (it is numerically closest), so a
            // root that *does* see a next hop is a fragment left over from a
            // false-positive partition. Demote it and re-join toward the
            // true rendezvous root so the fragments merge back.
            if st.is_root {
                if let Some(next) = pastry.next_hop(topic.key(), st.scope) {
                    if !crate::seeded_bug_active(4) {
                        st.is_root = false;
                        demoted.push((*topic, st.scope, next.addr));
                    }
                }
            } else if st.parent.is_none() && (st.subscribed || !st.children.is_empty()) {
                // Detached member (subscriber or forwarder with a live
                // subtree): the Join sent by an earlier repair — or its
                // JoinAck — may have been lost in flight. Keep re-joining
                // every tick until a parent is acquired; duplicate grafts
                // are idempotent.
                match pastry.next_hop(topic.key(), st.scope) {
                    None => {
                        st.is_root = true;
                        promoted.push(*topic);
                    }
                    Some(next) => rejoining.push((*topic, st.scope, next.addr)),
                }
            }
            let stale: Vec<NodeAddr> = st
                .child_seen
                .iter()
                .filter(|(_, seen)| round.saturating_sub(**seen) > STALE_AGG_ROUNDS)
                .map(|(c, _)| *c)
                .collect();
            for c in stale {
                st.children.remove(&c);
                st.child_agg.remove(&c);
                st.child_seen.remove(&c);
                self.obs.count(me, "stale_child_expire");
                self.obs.record_with(|at| ObsEvent::TreeLeave {
                    at,
                    parent: me,
                    child: c,
                    topic: topic.key().as_u128(),
                });
            }
            if !st.subscribed && !st.is_root && st.children.is_empty() {
                emptied.push(*topic);
            }
        }
        for topic in emptied {
            self.maybe_prune::<P, N>(pastry, net, topic);
        }
        for topic in promoted {
            self.promote_from_replica::<P, N>(pastry.info(), net, topic);
        }
        for _ in &demoted {
            self.obs.count(me, "root_demote");
        }
        for _ in &rejoining {
            self.obs.count(me, "rejoin_retry");
        }
        for (topic, scope, next) in demoted.into_iter().chain(rejoining) {
            let child = pastry.info();
            net.send(
                next,
                pastry::PastryMsg::Route {
                    key: topic.key(),
                    payload: ScribeMsg::Join {
                        topic,
                        scope,
                        child,
                    },
                    hops: 1,
                    scope,
                },
            );
        }
        for (topic, st) in &self.topics {
            if st.is_root {
                continue;
            }
            let (Some(parent), Some(value)) = (st.parent, st.merged_agg()) else {
                continue;
            };
            self.obs.record_with(|at| ObsEvent::AggSend {
                at,
                from: me,
                to: parent,
                topic: topic.key().as_u128(),
            });
            net.send(
                parent,
                pastry::PastryMsg::Direct(ScribeMsg::AggUpdate {
                    topic: *topic,
                    value,
                }),
            );
        }
        // Replica aging: a mirror unrefreshed past its TTL means the root
        // died (and a fresher copy was consumed elsewhere) or this node
        // left the root's neighbourhood; drop it rather than promote from
        // an arbitrarily stale view.
        let mut expired = 0u32;
        self.replicas.retain(|_, rep| {
            rep.age += 1;
            let keep = rep.age <= REPLICA_TTL_ROUNDS;
            if !keep {
                expired += 1;
            }
            keep
        });
        for _ in 0..expired {
            self.obs.count(me, "replica_expire");
        }
        // k-replicated rendezvous state: every root mirrors its child set,
        // aggregate, and subscriber summary to the k leaf-set members
        // nearest the topic key. The successor rendezvous is by definition
        // the next-closest id, so when this root dies the node the repair
        // converges on holds a warm replica.
        let mut pushes = Vec::new();
        for (topic, st) in &self.topics {
            if !st.is_root {
                continue;
            }
            let agg = st.merged_agg();
            let subscribers = agg
                .as_ref()
                .and_then(|a| a.as_count())
                .unwrap_or(u64::from(st.subscribed));
            let mut targets: Vec<NodeInfo> = match st.scope {
                Some(site) if site == pastry.info().site => {
                    pastry.site_leaf_set().members().copied().collect()
                }
                Some(site) => pastry
                    .leaf_set()
                    .members()
                    .filter(|i| i.site == site)
                    .copied()
                    .collect(),
                None => pastry.leaf_set().members().copied().collect(),
            };
            targets.retain(|i| i.addr != me);
            targets.sort_by(|a, b| {
                a.id.ring_distance(topic.key())
                    .cmp(&b.id.ring_distance(topic.key()))
                    .then(a.id.cmp(&b.id))
            });
            targets.truncate(REPLICA_K);
            let children: Vec<NodeAddr> = st.children.iter().copied().collect();
            for target in targets {
                pushes.push((
                    target.addr,
                    ScribeMsg::ReplicaSync {
                        topic: *topic,
                        scope: st.scope,
                        children: children.clone(),
                        agg: agg.clone(),
                        subscribers,
                    },
                ));
            }
        }
        for (to, msg) in pushes {
            self.obs.count(me, "replica_sync_send");
            net.send(to, pastry::PastryMsg::Direct(msg));
        }
    }

    /// The root's current view of the tree aggregate (valid at the root).
    /// A freshly promoted root answers from its inherited warm aggregate
    /// (the pre-crash whole-tree view) until its own child reports
    /// converge.
    pub fn root_aggregate(&self, topic: TopicId) -> Option<AggValue> {
        self.topics
            .get(&topic)
            .and_then(|st| st.warm_agg.clone().or_else(|| st.merged_agg()))
    }

    /// Multicasts `payload` to every subscriber of `topic` (dissemination
    /// from the root down the tree, paper §II.B.3).
    pub fn multicast<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        payload: P,
    ) where
        P: MessageSize + Clone,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        match pastry.next_hop(topic.key(), scope) {
            None => self.disseminate(net, host, topic, payload),
            Some(next) => net.send(
                next.addr,
                pastry::PastryMsg::Route {
                    key: topic.key(),
                    payload: ScribeMsg::MulticastReq {
                        topic,
                        scope,
                        payload,
                    },
                    hops: 1,
                    scope,
                },
            ),
        }
    }

    fn disseminate<P, N, H>(&mut self, net: &mut N, host: &mut H, topic: TopicId, payload: P)
    where
        P: MessageSize + Clone,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let Some(st) = self.topics.get(&topic) else {
            return;
        };
        for child in &st.children {
            net.send(
                *child,
                pastry::PastryMsg::Direct(ScribeMsg::MulticastData {
                    topic,
                    payload: payload.clone(),
                }),
            );
        }
        if st.subscribed {
            host.on_multicast(topic, &payload);
        }
    }

    /// Anycasts `payload` into `topic`: the walk enters at a tree member
    /// near this node (Pastry's local route convergence) and performs a
    /// distributed depth-first search until a visit accepts or the tree is
    /// exhausted; the result returns to this node via
    /// [`ScribeHost::on_anycast_result`].
    pub fn anycast<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        payload: P,
    ) where
        P: MessageSize + Clone,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let origin = pastry.info().addr;
        if self.is_member(topic) {
            self.process_walk(
                pastry,
                net,
                host,
                topic,
                payload,
                origin,
                Vec::new(),
                Vec::new(),
            );
            return;
        }
        match pastry.next_hop(topic.key(), scope) {
            None => {
                // We are the rendezvous node but the tree does not exist.
                host.on_anycast_result(topic, payload, false);
            }
            Some(next) => net.send(
                next.addr,
                pastry::PastryMsg::Route {
                    key: topic.key(),
                    payload: ScribeMsg::Anycast {
                        topic,
                        scope,
                        payload,
                        origin,
                    },
                    hops: 1,
                    scope,
                },
            ),
        }
    }

    /// Asks the root of `topic` for its aggregate (tree size in the query
    /// protocol); the reply arrives via [`ScribeHost::on_probe_reply`].
    pub fn probe_root<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        mut payload: P,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let origin = pastry.info().addr;
        match pastry.next_hop(topic.key(), scope) {
            None => {
                // A rendezvous that holds only a warm replica (the root
                // died; its tree state has not re-formed here yet) still
                // answers: the tree exists, with the mirrored aggregate.
                let replica = self.replicas.get(&topic);
                let exists = self.is_member(topic) || replica.is_some();
                let agg = self
                    .root_aggregate(topic)
                    .or_else(|| replica.and_then(|r| r.agg.clone()));
                host.on_root_probe(topic, &mut payload);
                host.on_probe_reply(topic, payload, agg, exists);
            }
            Some(next) => net.send(
                next.addr,
                pastry::PastryMsg::Route {
                    key: topic.key(),
                    payload: ScribeMsg::ProbeRoot {
                        topic,
                        scope,
                        payload,
                        origin,
                    },
                    hops: 1,
                    scope,
                },
            ),
        }
    }

    /// Sends an application payload directly to another node.
    pub fn send_direct<P, N>(&mut self, net: &mut N, to: NodeAddr, payload: P)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        net.send(to, pastry::PastryMsg::Direct(ScribeMsg::AppDirect(payload)));
    }

    /// Reacts to a failed node: detaches it everywhere and re-joins any
    /// tree whose parent was lost.
    pub fn handle_failure<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        addr: NodeAddr,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        // Root failover: if the failed node is the root of a tree this
        // node mirrors, and the repair now converges here (no next hop
        // toward the key), promote from the warm replica immediately —
        // the tree answers again within the same maintenance round.
        let mirrored: Vec<(TopicId, Option<SiteId>)> = self
            .replicas
            .iter()
            .filter(|(_, rep)| rep.root == addr)
            .map(|(t, rep)| (*t, rep.scope))
            .collect();
        for (topic, scope) in mirrored {
            if pastry.next_hop(topic.key(), scope).is_none() {
                self.promote_from_replica::<P, N>(pastry.info(), net, topic);
                let st = self.topics.get_mut(&topic).expect("promoted");
                st.children.remove(&addr);
                st.child_agg.remove(&addr);
                st.child_seen.remove(&addr);
            }
        }
        let affected: Vec<TopicId> = self.topics.keys().copied().collect();
        for topic in affected {
            let st = self.topics.get_mut(&topic).expect("listed topic exists");
            if st.children.remove(&addr) {
                let me = pastry.info().addr;
                self.obs.record_with(|at| ObsEvent::TreeLeave {
                    at,
                    parent: me,
                    child: addr,
                    topic: topic.key().as_u128(),
                });
            }
            let st = self.topics.get_mut(&topic).expect("listed topic exists");
            st.child_agg.remove(&addr);
            if st.parent == Some(addr) {
                st.parent = None;
                let scope = st.scope;
                let rejoin = st.is_member();
                self.obs.count(pastry.info().addr, "parent_lost");
                // Tell the presumed-dead parent too: if the declaration
                // was a false positive it is still alive and would
                // otherwise keep this node as a stale child, counting its
                // subtree twice once it re-attaches elsewhere. A really
                // dead parent simply never receives this.
                if !crate::seeded_bug_active(1) {
                    net.send(
                        addr,
                        pastry::PastryMsg::Direct(ScribeMsg::Leave {
                            topic,
                            child: pastry.info().addr,
                        }),
                    );
                }
                if rejoin {
                    // Re-route a join for this subtree.
                    let was_subscribed = st.subscribed;
                    st.subscribed = true; // subscribe() requires intent; restore after
                    self.resubscribe::<P, N, H>(pastry, net, host, topic, scope, was_subscribed);
                }
            }
        }
    }

    fn resubscribe<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        was_subscribed: bool,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        match pastry.next_hop(topic.key(), scope) {
            None => {
                let st = self.topics.get_mut(&topic).expect("topic exists");
                st.is_root = true;
                st.subscribed = was_subscribed;
                self.promote_from_replica::<P, N>(pastry.info(), net, topic);
                host.on_subscribed(topic);
            }
            Some(next) => {
                let st = self.topics.get_mut(&topic).expect("topic exists");
                st.subscribed = was_subscribed;
                let child = pastry.info();
                net.send(
                    next.addr,
                    pastry::PastryMsg::Route {
                        key: topic.key(),
                        payload: ScribeMsg::Join {
                            topic,
                            scope,
                            child,
                        },
                        hops: 1,
                        scope,
                    },
                );
            }
        }
    }

    /// Grafts `child` under this node (`me`) for `topic`, acknowledging it.
    fn graft<P, N>(
        &mut self,
        net: &mut N,
        me: NodeAddr,
        topic: TopicId,
        scope: Option<SiteId>,
        child: NodeInfo,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        let st = self.topics.entry(topic).or_default();
        st.scope = scope;
        let round = st.agg_round;
        st.child_seen.insert(child.addr, round);
        if st.children.insert(child.addr) {
            self.obs.record_with(|at| ObsEvent::TreeGraft {
                at,
                parent: me,
                child: child.addr,
                topic: topic.key().as_u128(),
            });
        }
        net.send(
            child.addr,
            pastry::PastryMsg::Direct(ScribeMsg::JoinAck { topic }),
        );
    }

    /// One step of the distributed DFS: visit self (if a member and
    /// unvisited), extend the frontier with tree neighbours, and either
    /// hand the walk to the next node or return the result to the origin.
    #[allow(clippy::too_many_arguments)]
    fn process_walk<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        mut payload: P,
        origin: NodeAddr,
        mut visited: Vec<NodeAddr>,
        mut stack: Vec<NodeAddr>,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let me = pastry.info().addr;
        if let Some(st) = self.topics.get(&topic) {
            if st.is_member() && !visited.contains(&me) {
                visited.push(me);
                if st.subscribed && host.on_anycast_visit(topic, &mut payload) == Visit::Stop {
                    net.send(
                        origin,
                        pastry::PastryMsg::Direct(ScribeMsg::AnycastResult {
                            topic,
                            payload,
                            satisfied: true,
                        }),
                    );
                    return;
                }
                // Extend the frontier with unexplored tree neighbours.
                for n in st.children.iter().copied().chain(st.parent) {
                    if !visited.contains(&n) && !stack.contains(&n) {
                        stack.push(n);
                    }
                }
            }
        }
        while let Some(next) = stack.pop() {
            if visited.contains(&next) {
                continue;
            }
            net.send(
                next,
                pastry::PastryMsg::Direct(ScribeMsg::AnycastStep {
                    topic,
                    payload,
                    origin,
                    visited,
                    stack,
                }),
            );
            return;
        }
        net.send(
            origin,
            pastry::PastryMsg::Direct(ScribeMsg::AnycastResult {
                topic,
                payload,
                satisfied: false,
            }),
        );
    }
}

/// Glue implementing [`PastryApp`] for a Scribe layer plus its host. Build
/// one per dispatch:
///
/// ```ignore
/// let mut app = ScribeApp { layer: &mut scribe, host: &mut host };
/// pastry.on_message(&mut net, &mut app, from, msg);
/// ```
pub struct ScribeApp<'a, H> {
    /// The node's Scribe state.
    pub layer: &'a mut ScribeLayer,
    /// The node's application.
    pub host: &'a mut H,
}

impl<'a, P, H> PastryApp<ScribeMsg<P>> for ScribeApp<'a, H>
where
    P: MessageSize + Clone,
    H: ScribeHost<P>,
{
    fn deliver<N: Net<ScribeMsg<P>>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        _key: pastry::NodeId,
        payload: ScribeMsg<P>,
        _hops: u16,
    ) {
        match payload {
            ScribeMsg::Join {
                topic,
                scope,
                child,
            } => {
                // We are the rendezvous root for this tree.
                self.layer
                    .graft::<P, N>(net, node.info().addr, topic, scope, child);
                let st = self.layer.topics.get_mut(&topic).expect("grafted");
                if !st.is_root {
                    st.is_root = true;
                    // A successor rendezvous promotes warm: adopt the dead
                    // root's mirrored children instead of waiting for each
                    // to rediscover the tree.
                    self.layer
                        .promote_from_replica::<P, N>(node.info(), net, topic);
                }
            }
            ScribeMsg::MulticastReq { topic, payload, .. } => {
                self.layer.disseminate(net, self.host, topic, payload);
            }
            ScribeMsg::Anycast {
                topic,
                payload,
                origin,
                ..
            } => {
                if self.layer.is_member(topic) {
                    self.layer.process_walk(
                        node,
                        net,
                        self.host,
                        topic,
                        payload,
                        origin,
                        Vec::new(),
                        Vec::new(),
                    );
                } else {
                    net.send(
                        origin,
                        pastry::PastryMsg::Direct(ScribeMsg::AnycastResult {
                            topic,
                            payload,
                            satisfied: false,
                        }),
                    );
                }
            }
            ScribeMsg::ProbeRoot {
                topic,
                mut payload,
                origin,
                ..
            } => {
                // Answer from the warm replica when the root's state has
                // not re-formed here yet (root dead or mid-repair): the
                // tree exists, with the mirrored aggregate.
                let replica = self.layer.replicas.get(&topic);
                let exists = self.layer.is_member(topic) || replica.is_some();
                let agg = self
                    .layer
                    .root_aggregate(topic)
                    .or_else(|| replica.and_then(|r| r.agg.clone()));
                self.host.on_root_probe(topic, &mut payload);
                net.send(
                    origin,
                    pastry::PastryMsg::Direct(ScribeMsg::ProbeReply {
                        topic,
                        payload,
                        agg,
                        exists,
                    }),
                );
            }
            // Direct-only variants cannot arrive via routing; ignore
            // defensively.
            _ => {}
        }
    }

    fn forward<N: Net<ScribeMsg<P>>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        _key: pastry::NodeId,
        payload: ScribeMsg<P>,
        _next: &NodeInfo,
    ) -> Option<ScribeMsg<P>> {
        match payload {
            ScribeMsg::Join {
                topic,
                scope,
                child,
            } => {
                // Union-of-paths tree construction: graft the child here.
                // If we are already in the tree the join stops; otherwise we
                // become a forwarder and join on behalf of our new subtree.
                let already = self.layer.is_member(topic);
                self.layer
                    .graft::<P, N>(net, node.info().addr, topic, scope, child);
                if already {
                    None
                } else {
                    Some(ScribeMsg::Join {
                        topic,
                        scope,
                        child: node.info(),
                    })
                }
            }
            ScribeMsg::Anycast {
                topic,
                payload,
                origin,
                ..
            } if self.layer.is_member(topic) => {
                // Local route convergence dropped the walk at a nearby
                // member; take over the DFS here.
                self.layer.process_walk(
                    node,
                    net,
                    self.host,
                    topic,
                    payload,
                    origin,
                    Vec::new(),
                    Vec::new(),
                );
                None
            }
            other => Some(other),
        }
    }

    fn receive_direct<N: Net<ScribeMsg<P>>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        from: NodeAddr,
        payload: ScribeMsg<P>,
    ) {
        match payload {
            ScribeMsg::JoinAck { topic } => {
                if let Some(st) = self.layer.topics.get_mut(&topic) {
                    let old = st.parent.replace(from);
                    if let Some(old) = old {
                        if old != from && !crate::seeded_bug_active(1) {
                            // Duplicate/stale ack re-parented us: detach
                            // from the previous parent, or we would sit in
                            // two children sets at once (multicast
                            // duplicates and aggregate double-counting).
                            net.send(
                                old,
                                pastry::PastryMsg::Direct(ScribeMsg::Leave {
                                    topic,
                                    child: node.info().addr,
                                }),
                            );
                        }
                    }
                    let me = node.info().addr;
                    self.layer.obs.record_with(|at| ObsEvent::TreeParent {
                        at,
                        node: me,
                        topic: topic.key().as_u128(),
                        old,
                        new: from,
                    });
                    if st.subscribed {
                        self.host.on_subscribed(topic);
                    }
                }
            }
            ScribeMsg::Leave { topic, child } => {
                if let Some(st) = self.layer.topics.get_mut(&topic) {
                    if st.children.remove(&child) {
                        let me = node.info().addr;
                        self.layer.obs.record_with(|at| ObsEvent::TreeLeave {
                            at,
                            parent: me,
                            child,
                            topic: topic.key().as_u128(),
                        });
                    }
                    st.child_agg.remove(&child);
                }
                self.layer.maybe_prune::<P, N>(node, net, topic);
            }
            ScribeMsg::MulticastData { topic, payload } => {
                self.layer.disseminate(net, self.host, topic, payload);
            }
            ScribeMsg::AnycastStep {
                topic,
                payload,
                origin,
                visited,
                stack,
            } => {
                self.layer
                    .process_walk(node, net, self.host, topic, payload, origin, visited, stack);
            }
            ScribeMsg::AnycastResult {
                topic,
                payload,
                satisfied,
            } => {
                self.host.on_anycast_result(topic, payload, satisfied);
            }
            ScribeMsg::ProbeReply {
                topic,
                payload,
                agg,
                exists,
            } => {
                self.host.on_probe_reply(topic, payload, agg, exists);
            }
            ScribeMsg::AggUpdate { topic, value } => {
                let accepted = match self.layer.topics.get_mut(&topic) {
                    Some(st) if st.children.contains(&from) => {
                        st.child_agg.insert(from, value);
                        let round = st.agg_round;
                        st.child_seen.insert(from, round);
                        true
                    }
                    _ => false,
                };
                let me = node.info().addr;
                if accepted {
                    self.layer.obs.count(me, "agg_update_recv");
                } else {
                    // The sender believes we are its parent but we do not
                    // list it as a child (typically after a false-positive
                    // failure declaration dropped it). NACK so the orphan
                    // clears its stale parent pointer and re-joins instead
                    // of silently falling out of the aggregate forever.
                    self.layer.obs.record_with(|at| ObsEvent::NotChild {
                        at,
                        node: me,
                        orphan: from,
                        topic: topic.key().as_u128(),
                    });
                    net.send(
                        from,
                        pastry::PastryMsg::Direct(ScribeMsg::NotChild { topic }),
                    );
                }
            }
            ScribeMsg::NotChild { topic } => {
                if crate::seeded_bug_active(2) {
                    return;
                }
                let Some(st) = self.layer.topics.get_mut(&topic) else {
                    return;
                };
                // Only react if the NACK comes from the node we currently
                // believe is our parent; a stale NACK from an old parent
                // must not detach us from a good one.
                if st.parent != Some(from) {
                    return;
                }
                st.parent = None;
                let me = node.info().addr;
                self.layer.obs.count(me, "orphan_rejoin");
                if st.is_member() {
                    let scope = st.scope;
                    let was_subscribed = st.subscribed;
                    st.subscribed = true; // subscribe() requires intent; restore after
                    self.layer.resubscribe::<P, N, H>(
                        node,
                        net,
                        self.host,
                        topic,
                        scope,
                        was_subscribed,
                    );
                } else {
                    self.layer.maybe_prune::<P, N>(node, net, topic);
                }
            }
            ScribeMsg::ReplicaSync {
                topic,
                scope,
                children,
                agg,
                subscribers,
            } => {
                let me = node.info().addr;
                // A node that is itself the root must not cache a stale
                // mirror of its own tree (the push raced a promotion).
                if from == me || self.layer.topics.get(&topic).is_some_and(|st| st.is_root) {
                    return;
                }
                self.layer.replicas.insert(
                    topic,
                    ReplicaCache {
                        root: from,
                        scope,
                        children,
                        agg,
                        subscribers,
                        age: 0,
                    },
                );
                self.layer.obs.count(me, "replica_sync_recv");
            }
            ScribeMsg::AppDirect(p) => {
                self.host.on_direct(from, p);
            }
            // Routed-only variants cannot arrive directly; ignore.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastry::{NodeId, PastryMsg};
    use std::collections::VecDeque;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);
    impl MessageSize for P {}

    #[derive(Default)]
    struct RecNet {
        sent: VecDeque<(NodeAddr, PastryMsg<ScribeMsg<P>>)>,
    }
    impl Net<ScribeMsg<P>> for RecNet {
        fn send(&mut self, to: NodeAddr, msg: PastryMsg<ScribeMsg<P>>) {
            self.sent.push_back((to, msg));
        }
    }

    #[derive(Default)]
    struct RecHost {
        multicasts: Vec<(TopicId, P)>,
        visits: u32,
        stop_after: u32,
        results: Vec<(P, bool)>,
        subscribed: Vec<TopicId>,
    }
    impl ScribeHost<P> for RecHost {
        fn on_multicast(&mut self, topic: TopicId, payload: &P) {
            self.multicasts.push((topic, payload.clone()));
        }
        fn on_anycast_visit(&mut self, _topic: TopicId, _payload: &mut P) -> Visit {
            self.visits += 1;
            if self.visits >= self.stop_after {
                Visit::Stop
            } else {
                Visit::Continue
            }
        }
        fn on_anycast_result(&mut self, _topic: TopicId, payload: P, satisfied: bool) {
            self.results.push((payload, satisfied));
        }
        fn on_probe_reply(&mut self, _t: TopicId, _p: P, _a: Option<AggValue>, _e: bool) {}
        fn on_direct(&mut self, _from: NodeAddr, _payload: P) {}
        fn on_subscribed(&mut self, topic: TopicId) {
            self.subscribed.push(topic);
        }
    }

    fn mk_pastry(addr: u32) -> PastryNode {
        PastryNode::new(NodeInfo {
            id: NodeId::hash_of(format!("n{addr}").as_bytes()),
            addr: NodeAddr(addr),
            site: SiteId(0),
        })
    }

    #[test]
    fn lone_subscriber_becomes_root() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        let st = layer.topic(t).unwrap();
        assert!(st.is_root && st.subscribed);
        assert_eq!(host.subscribed, vec![t]);
        assert!(net.sent.is_empty());
    }

    #[test]
    fn subscribe_routes_join_toward_topic_key() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        // Teach pastry a far-away peer so the topic key routes off-node.
        let t = TopicId::new("GPU", "test");
        let peer = NodeInfo {
            id: NodeId(t.key().as_u128().wrapping_add(1)),
            addr: NodeAddr(1),
            site: SiteId(0),
        };
        pastry.insert_peer(&net, peer);
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        let (to, msg) = net.sent.pop_front().expect("join sent");
        assert_eq!(to, NodeAddr(1));
        assert!(matches!(
            msg,
            PastryMsg::Route {
                payload: ScribeMsg::Join { .. },
                ..
            }
        ));
        // Not yet attached.
        assert!(host.subscribed.is_empty());
    }

    #[test]
    fn join_ack_sets_parent_and_notifies() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        let peer = NodeInfo {
            id: NodeId(t.key().as_u128().wrapping_add(1)),
            addr: NodeAddr(1),
            site: SiteId(0),
        };
        pastry.insert_peer(&net, peer);
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(1),
            PastryMsg::Direct(ScribeMsg::JoinAck { topic: t }),
        );
        assert_eq!(layer.topic(t).unwrap().parent, Some(NodeAddr(1)));
        assert_eq!(host.subscribed, vec![t]);
    }

    #[test]
    fn root_multicast_reaches_children_and_self() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        // Graft two children manually.
        for c in [7u32, 9] {
            layer.graft::<P, _>(
                &mut net,
                NodeAddr(0),
                t,
                None,
                NodeInfo {
                    id: NodeId(c as u128),
                    addr: NodeAddr(c),
                    site: SiteId(0),
                },
            );
        }
        net.sent.clear(); // drop the acks
        layer.multicast(&mut pastry, &mut net, &mut host, t, None, P(5));
        let dests: Vec<NodeAddr> = net.sent.iter().map(|(to, _)| *to).collect();
        assert_eq!(dests, vec![NodeAddr(7), NodeAddr(9)]);
        assert_eq!(host.multicasts, vec![(t, P(5))]);
    }

    #[test]
    fn aggregation_merges_children_and_local() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.set_local_value(t, AggValue::Count(1));
        // Fake child reports.
        let st = layer.topics.get_mut(&t).unwrap();
        st.children.insert(NodeAddr(1));
        st.children.insert(NodeAddr(2));
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        for (c, n) in [(1u32, 4u64), (2, 5)] {
            pastry.on_message(
                &mut net,
                &mut app,
                NodeAddr(c),
                PastryMsg::Direct(ScribeMsg::AggUpdate {
                    topic: t,
                    value: AggValue::Count(n),
                }),
            );
        }
        assert_eq!(layer.root_aggregate(t).unwrap().as_count(), Some(10));
    }

    #[test]
    fn agg_update_from_non_child_is_ignored() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.set_local_value(t, AggValue::Count(1));
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(42),
            PastryMsg::Direct(ScribeMsg::AggUpdate {
                topic: t,
                value: AggValue::Count(99),
            }),
        );
        assert_eq!(layer.root_aggregate(t).unwrap().as_count(), Some(1));
        // The stranger gets a NotChild NACK so it can clear its stale
        // parent pointer and re-join.
        let (to, msg) = net.sent.pop_front().expect("NACK sent");
        assert_eq!(to, NodeAddr(42));
        assert!(matches!(msg, PastryMsg::Direct(ScribeMsg::NotChild { .. })));
    }

    #[test]
    fn stale_join_ack_reparent_sends_leave_to_old_parent() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                subscribed: true,
                ..TopicState::default()
            },
        );
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(5),
            PastryMsg::Direct(ScribeMsg::JoinAck { topic: t }),
        );
        assert_eq!(layer.topic(t).unwrap().parent, Some(NodeAddr(5)));
        let (to, msg) = net.sent.pop_front().expect("leave to old parent");
        assert_eq!(to, NodeAddr(3));
        assert!(matches!(
            msg,
            PastryMsg::Direct(ScribeMsg::Leave {
                child: NodeAddr(0),
                ..
            })
        ));
        assert!(net.sent.is_empty());
    }

    #[test]
    fn duplicate_join_ack_from_same_parent_is_quiet() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                ..TopicState::default()
            },
        );
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(3),
            PastryMsg::Direct(ScribeMsg::JoinAck { topic: t }),
        );
        assert_eq!(layer.topic(t).unwrap().parent, Some(NodeAddr(3)));
        assert!(net.sent.is_empty());
    }

    #[test]
    fn not_child_nack_clears_parent_and_rejoins() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        let peer = NodeInfo {
            id: NodeId(t.key().as_u128().wrapping_add(1)),
            addr: NodeAddr(9),
            site: SiteId(0),
        };
        pastry.insert_peer(&net, peer);
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                subscribed: true,
                ..TopicState::default()
            },
        );
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(3),
            PastryMsg::Direct(ScribeMsg::NotChild { topic: t }),
        );
        assert_eq!(layer.topic(t).unwrap().parent, None);
        let (_, msg) = net.sent.pop_front().expect("rejoin sent");
        assert!(matches!(
            msg,
            PastryMsg::Route {
                payload: ScribeMsg::Join { .. },
                ..
            }
        ));
    }

    #[test]
    fn not_child_from_non_parent_is_ignored() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                subscribed: true,
                ..TopicState::default()
            },
        );
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(5),
            PastryMsg::Direct(ScribeMsg::NotChild { topic: t }),
        );
        assert_eq!(layer.topic(t).unwrap().parent, Some(NodeAddr(3)));
        assert!(net.sent.is_empty());
    }

    #[test]
    fn not_child_on_bare_state_prunes_without_rejoin() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        // Pure forwarder whose only tie to the tree was the (stale) parent.
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                ..TopicState::default()
            },
        );
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(3),
            PastryMsg::Direct(ScribeMsg::NotChild { topic: t }),
        );
        assert!(layer.topic(t).is_none(), "nothing left to participate with");
        assert!(net.sent.is_empty());
    }

    #[test]
    fn unsubscribed_childless_root_prunes_topic_state() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        assert!(layer.topic(t).unwrap().is_root);
        layer.unsubscribe::<P, _>(&mut pastry, &mut net, t);
        assert!(
            layer.topic(t).is_none(),
            "childless unsubscribed root must not leak topic state"
        );
        assert!(net.sent.is_empty(), "a root has no parent to notify");
    }

    #[test]
    fn root_with_children_survives_unsubscribe() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.graft::<P, _>(
            &mut net,
            NodeAddr(0),
            t,
            None,
            NodeInfo {
                id: NodeId(7),
                addr: NodeAddr(7),
                site: SiteId(0),
            },
        );
        net.sent.clear();
        layer.unsubscribe::<P, _>(&mut pastry, &mut net, t);
        let st = layer.topic(t).expect("still the rendezvous for a child");
        assert!(st.is_root && !st.subscribed);
        assert!(st.children.contains(&NodeAddr(7)));
    }

    /// Delivers every queued message between a hand-built set of nodes
    /// until the network drains.
    fn pump(nodes: &mut [(PastryNode, ScribeLayer, RecHost)], nets: &mut [RecNet]) {
        loop {
            let mut moved = false;
            for j in 0..nets.len() {
                let msgs: Vec<_> = nets[j].sent.drain(..).collect();
                for (to, msg) in msgs {
                    moved = true;
                    let (pastry, layer, host) = &mut nodes[to.index()];
                    let mut app = ScribeApp { layer, host };
                    pastry.on_message(&mut nets[to.index()], &mut app, NodeAddr(j as u32), msg);
                }
            }
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn forced_reparent_keeps_root_aggregate_exact() {
        let t = TopicId::new("GPU", "test");
        let n = 4usize;
        let mut nodes: Vec<(PastryNode, ScribeLayer, RecHost)> = (0..n as u32)
            .map(|i| (mk_pastry(i), ScribeLayer::new(), RecHost::default()))
            .collect();
        let mut nets: Vec<RecNet> = (0..n).map(|_| RecNet::default()).collect();

        // Hand-built tree: root 0 (subscribed) with children {1, 2};
        // node 1 (subscribed) owns child 3; node 2 is a pure forwarder;
        // node 3 (subscribed) hangs under 1.
        let mut root = TopicState {
            is_root: true,
            subscribed: true,
            local_value: Some(AggValue::Count(1)),
            ..TopicState::default()
        };
        root.children.extend([NodeAddr(1), NodeAddr(2)]);
        nodes[0].1.topics.insert(t, root);
        let mut mid = TopicState {
            parent: Some(NodeAddr(0)),
            subscribed: true,
            local_value: Some(AggValue::Count(1)),
            ..TopicState::default()
        };
        mid.children.insert(NodeAddr(3));
        mid.child_agg.insert(NodeAddr(3), AggValue::Count(1));
        nodes[1].1.topics.insert(t, mid);
        nodes[2].1.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(0)),
                ..TopicState::default()
            },
        );
        nodes[3].1.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(1)),
                subscribed: true,
                local_value: Some(AggValue::Count(1)),
                ..TopicState::default()
            },
        );

        // A transient repair made node 2 graft node 3 and send a duplicate
        // JoinAck: node 3 must detach from its old parent 1 or it sits in
        // two children sets and the root aggregate double-counts it.
        nodes[2]
            .1
            .topics
            .get_mut(&t)
            .unwrap()
            .children
            .insert(NodeAddr(3));
        {
            let (pastry, layer, host) = &mut nodes[3];
            let mut app = ScribeApp { layer, host };
            pastry.on_message(
                &mut nets[3],
                &mut app,
                NodeAddr(2),
                PastryMsg::Direct(ScribeMsg::JoinAck { topic: t }),
            );
        }
        pump(&mut nodes, &mut nets);

        // Two aggregate rounds propagate the leaf values to the root.
        for _ in 0..2 {
            for (j, net) in nets.iter_mut().enumerate() {
                let (pastry, layer, _) = &mut nodes[j];
                layer.aggregate_tick(pastry, net);
            }
            pump(&mut nodes, &mut nets);
        }

        // Exactly three subscribers (0, 1, 3): the root aggregate must be
        // exact, not 4 (double-counting node 3 via both parents).
        assert_eq!(nodes[0].1.root_aggregate(t).unwrap().as_count(), Some(3));
    }

    #[test]
    fn anycast_on_lone_root_visits_self_then_satisfies() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        host.stop_after = 1;
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.anycast(&mut pastry, &mut net, &mut host, t, None, P(1));
        // Result goes to origin (self) as a direct message.
        let (to, msg) = net.sent.pop_front().unwrap();
        assert_eq!(to, NodeAddr(0));
        assert!(matches!(
            msg,
            PastryMsg::Direct(ScribeMsg::AnycastResult {
                satisfied: true,
                ..
            })
        ));
        assert_eq!(host.visits, 1);
    }

    #[test]
    fn anycast_exhaustion_reports_unsatisfied() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        host.stop_after = u32::MAX;
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.anycast(&mut pastry, &mut net, &mut host, t, None, P(1));
        let (_, msg) = net.sent.pop_front().unwrap();
        assert!(matches!(
            msg,
            PastryMsg::Direct(ScribeMsg::AnycastResult {
                satisfied: false,
                ..
            })
        ));
    }

    #[test]
    fn unsubscribe_prunes_and_sends_leave() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        // Simulate an attached non-root member.
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                subscribed: true,
                ..TopicState::default()
            },
        );
        let _ = &mut host;
        layer.unsubscribe::<P, _>(&mut pastry, &mut net, t);
        assert!(layer.topic(t).is_none());
        let (to, msg) = net.sent.pop_front().unwrap();
        assert_eq!(to, NodeAddr(3));
        assert!(matches!(msg, PastryMsg::Direct(ScribeMsg::Leave { .. })));
    }

    #[test]
    fn forwarder_with_children_does_not_prune() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let mut net = RecNet::default();
        let t = TopicId::new("GPU", "test");
        let mut st = TopicState {
            parent: Some(NodeAddr(3)),
            subscribed: true,
            ..TopicState::default()
        };
        st.children.insert(NodeAddr(8));
        layer.topics.insert(t, st);
        layer.unsubscribe::<P, _>(&mut pastry, &mut net, t);
        assert!(layer.topic(t).is_some(), "still a forwarder");
        assert!(net.sent.is_empty());
    }

    #[test]
    fn parent_failure_triggers_rejoin() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        let peer = NodeInfo {
            id: NodeId(t.key().as_u128().wrapping_add(1)),
            addr: NodeAddr(9),
            site: SiteId(0),
        };
        pastry.insert_peer(&net, peer);
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                subscribed: true,
                ..TopicState::default()
            },
        );
        layer.handle_failure(&mut pastry, &mut net, &mut host, NodeAddr(3));
        assert_eq!(layer.topic(t).unwrap().parent, None);
        // A Leave goes to the presumed-dead parent first (a false-positive
        // declaration must not leave a stale edge behind), then the rejoin.
        let (to, msg) = net.sent.pop_front().expect("leave sent");
        assert_eq!(to, NodeAddr(3));
        assert!(matches!(
            msg,
            PastryMsg::Direct(ScribeMsg::Leave {
                child: NodeAddr(0),
                ..
            })
        ));
        let (_, msg) = net.sent.pop_front().expect("rejoin sent");
        assert!(matches!(
            msg,
            PastryMsg::Route {
                payload: ScribeMsg::Join { .. },
                ..
            }
        ));
    }

    /// Delivers a `ReplicaSync` from `root` to the node behind `layer`.
    #[allow(clippy::too_many_arguments)]
    fn deliver_replica_sync(
        pastry: &mut PastryNode,
        layer: &mut ScribeLayer,
        net: &mut RecNet,
        host: &mut RecHost,
        root: NodeAddr,
        t: TopicId,
        children: Vec<NodeAddr>,
        agg: Option<AggValue>,
    ) {
        let subscribers = agg.as_ref().and_then(|a| a.as_count()).unwrap_or(0);
        let mut app = ScribeApp { layer, host };
        pastry.on_message(
            net,
            &mut app,
            root,
            PastryMsg::Direct(ScribeMsg::ReplicaSync {
                topic: t,
                scope: None,
                children,
                agg,
                subscribers,
            }),
        );
    }

    #[test]
    fn root_crash_promotes_replica_with_warm_state() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        deliver_replica_sync(
            &mut pastry,
            &mut layer,
            &mut net,
            &mut host,
            NodeAddr(9),
            t,
            vec![NodeAddr(1), NodeAddr(2)],
            Some(AggValue::Count(3)),
        );
        let rep = layer.replica(t).expect("replica cached");
        assert_eq!(rep.root, NodeAddr(9));
        // The root dies; this node (no peers, so it is the rendezvous for
        // every key) must promote from the warm mirror within the same
        // failure-handling step.
        layer.handle_failure(&mut pastry, &mut net, &mut host, NodeAddr(9));
        let st = layer.topic(t).expect("promoted state");
        assert!(st.is_root, "successor must become root");
        assert_eq!(
            st.children.iter().copied().collect::<Vec<_>>(),
            vec![NodeAddr(1), NodeAddr(2)],
            "mirrored child set adopted"
        );
        assert!(layer.replica(t).is_none(), "replica consumed by promotion");
        // The inherited aggregate answers probes while the live roll-up
        // converges.
        assert_eq!(
            layer.root_aggregate(t).and_then(|a| a.as_count()),
            Some(3),
            "warm aggregate served"
        );
        // Both adopted children were re-acked so their parent pointers
        // flip to the new root.
        let acked: Vec<NodeAddr> = net
            .sent
            .iter()
            .filter_map(|(to, m)| {
                matches!(m, PastryMsg::Direct(ScribeMsg::JoinAck { .. })).then_some(*to)
            })
            .collect();
        assert_eq!(acked, vec![NodeAddr(1), NodeAddr(2)]);
    }

    #[test]
    fn expired_replica_falls_back_to_cold_rebuild() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        deliver_replica_sync(
            &mut pastry,
            &mut layer,
            &mut net,
            &mut host,
            NodeAddr(9),
            t,
            vec![NodeAddr(1)],
            Some(AggValue::Count(2)),
        );
        // k failures in a row: the root never refreshes the mirror, so it
        // ages past its TTL and is dropped rather than promoted stale.
        for _ in 0..=REPLICA_TTL_ROUNDS {
            layer.aggregate_tick::<P, _>(&mut pastry, &mut net);
        }
        assert!(layer.replica(t).is_none(), "stale replica expired");
        // A late Join still rebuilds the tree from scratch at the
        // rendezvous — cold, with no inherited aggregate.
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(1),
            PastryMsg::Route {
                key: t.key(),
                payload: ScribeMsg::Join {
                    topic: t,
                    scope: None,
                    child: NodeInfo {
                        id: NodeId::hash_of(b"n1"),
                        addr: NodeAddr(1),
                        site: SiteId(0),
                    },
                },
                hops: 1,
                scope: None,
            },
        );
        let st = layer.topic(t).expect("rebuilt state");
        assert!(st.is_root);
        assert!(st.children.contains(&NodeAddr(1)));
        assert!(st.warm_agg.is_none(), "cold rebuild has no warm aggregate");
    }

    #[test]
    fn replica_sync_is_refused_by_a_current_root() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        assert!(layer.topic(t).unwrap().is_root);
        deliver_replica_sync(
            &mut pastry,
            &mut layer,
            &mut net,
            &mut host,
            NodeAddr(9),
            t,
            vec![NodeAddr(1)],
            Some(AggValue::Count(1)),
        );
        assert!(
            layer.replica(t).is_none(),
            "a root must not mirror a stale view of its own tree"
        );
    }

    #[test]
    fn probe_at_unpromoted_replica_holder_answers_from_mirror() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        deliver_replica_sync(
            &mut pastry,
            &mut layer,
            &mut net,
            &mut host,
            NodeAddr(9),
            t,
            vec![NodeAddr(1), NodeAddr(2)],
            Some(AggValue::Count(3)),
        );
        // A tree-size probe routed here mid-repair (the old root is dead,
        // this node has not promoted yet) must still report the tree as
        // existing, with the mirrored aggregate.
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(5),
            PastryMsg::Route {
                key: t.key(),
                payload: ScribeMsg::ProbeRoot {
                    topic: t,
                    scope: None,
                    payload: P(0),
                    origin: NodeAddr(5),
                },
                hops: 1,
                scope: None,
            },
        );
        let reply = net
            .sent
            .iter()
            .find_map(|(to, m)| match m {
                PastryMsg::Direct(ScribeMsg::ProbeReply { agg, exists, .. }) => {
                    Some((*to, agg.clone(), *exists))
                }
                _ => None,
            })
            .expect("probe reply sent");
        assert_eq!(reply.0, NodeAddr(5));
        assert!(reply.2, "tree exists while mid-repair");
        assert_eq!(reply.1.and_then(|a| a.as_count()), Some(3));
    }
}

#[cfg(test)]
mod no_tree_tests {
    use super::*;
    use pastry::{NodeId, PastryNode};
    use std::collections::VecDeque;

    #[derive(Debug, Clone, PartialEq)]
    struct P;
    impl simnet::MessageSize for P {}
    #[derive(Default)]
    struct RecNet {
        sent: VecDeque<(NodeAddr, pastry::PastryMsg<ScribeMsg<P>>)>,
    }
    impl Net<ScribeMsg<P>> for RecNet {
        fn send(&mut self, to: NodeAddr, msg: pastry::PastryMsg<ScribeMsg<P>>) {
            self.sent.push_back((to, msg));
        }
    }
    struct NullHost;
    impl ScribeHost<P> for NullHost {
        fn on_multicast(&mut self, _t: TopicId, _p: &P) {
            panic!("no members exist; nothing may be delivered");
        }
        fn on_anycast_visit(&mut self, _t: TopicId, _p: &mut P) -> Visit {
            Visit::Continue
        }
        fn on_anycast_result(&mut self, _t: TopicId, _p: P, _s: bool) {}
        fn on_probe_reply(&mut self, _t: TopicId, _p: P, _a: Option<AggValue>, _e: bool) {}
        fn on_direct(&mut self, _f: NodeAddr, _p: P) {}
    }

    /// Multicasting into a tree that does not exist at its rendezvous node
    /// is a harmless no-op (the root-side disseminate finds no state).
    #[test]
    fn multicast_into_missing_tree_is_a_noop() {
        let mut pastry = PastryNode::new(crate::layer::tests_support_info(4));
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), NullHost);
        let t = TopicId::new("ghost", "nobody");
        // This lone node is the rendezvous for every key.
        layer.multicast(&mut pastry, &mut net, &mut host, t, None, P);
        assert!(net.sent.is_empty());
        assert!(layer.topic(t).is_none());
        let _ = NodeId(0);
    }
}

#[cfg(test)]
pub(crate) fn tests_support_info(addr: u32) -> pastry::NodeInfo {
    pastry::NodeInfo {
        id: pastry::NodeId::hash_of(format!("sup{addr}").as_bytes()),
        addr: NodeAddr(addr),
        site: simnet::SiteId(0),
    }
}
