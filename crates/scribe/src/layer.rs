//! The Scribe protocol layer: tree membership, multicast, anycast, and
//! RBAY's aggregation extension.
//!
//! [`ScribeLayer`] holds per-topic tree state and is driven in two ways:
//!
//! * **Operations** (subscribe, multicast, anycast, probe, aggregate tick)
//!   are methods called by the embedding node with its Pastry state and a
//!   [`Net`] handle.
//! * **Messages** arrive through [`ScribeApp`], the [`PastryApp`] glue that
//!   intercepts routed joins/anycasts (building trees from the union of
//!   join paths) and dispatches direct tree messages.
//!
//! Application behaviour is injected through [`ScribeHost`]: visit
//! decisions, multicast consumption, and probe/anycast results.

use crate::types::{AggValue, ScribeMsg, TopicId, Visit};
use pastry::{Net, NodeInfo, PastryApp, PastryNode};
use simnet::{MessageSize, NodeAddr, SiteId};
use std::collections::{BTreeMap, BTreeSet};

/// Application callbacks for tree events.
///
/// Callbacks only mutate host state and return decisions; hosts that need to
/// launch follow-up operations queue them internally and drain the queue
/// after message dispatch returns (see `rbay-core`).
pub trait ScribeHost<P> {
    /// A multicast payload reached this (subscribed) node.
    fn on_multicast(&mut self, topic: TopicId, payload: &P);

    /// An anycast walk is visiting this (subscribed) node; mutate the
    /// payload and decide whether the walk stops here.
    fn on_anycast_visit(&mut self, topic: TopicId, payload: &mut P) -> Visit;

    /// An anycast this node originated has finished.
    fn on_anycast_result(&mut self, topic: TopicId, payload: P, satisfied: bool);

    /// A root probe this node originated has been answered.
    fn on_probe_reply(&mut self, topic: TopicId, payload: P, agg: Option<AggValue>, exists: bool);

    /// A direct application message arrived.
    fn on_direct(&mut self, from: NodeAddr, payload: P);

    /// The tree root is answering a probe; annotate the payload if desired.
    fn on_root_probe(&mut self, topic: TopicId, payload: &mut P) {
        let _ = (topic, payload);
    }

    /// This node completed its subscription (grafted, or became root).
    fn on_subscribed(&mut self, topic: TopicId) {
        let _ = topic;
    }
}

/// Per-topic tree state at one node.
#[derive(Debug, Clone, Default)]
pub struct TopicState {
    /// Upstream neighbour (`None` at the root or while a join is in
    /// flight).
    pub parent: Option<NodeAddr>,
    /// Downstream neighbours (the children table of paper §II.B.2).
    pub children: BTreeSet<NodeAddr>,
    /// Whether this node is a leaf-subscriber (vs a pure forwarder).
    pub subscribed: bool,
    /// Whether this node is the rendezvous root.
    pub is_root: bool,
    /// Site scope of the tree, for isolation-scoped topics.
    pub scope: Option<SiteId>,
    /// This node's own contribution to the tree aggregate.
    pub local_value: Option<AggValue>,
    /// Last aggregate reported by each child.
    pub child_agg: BTreeMap<NodeAddr, AggValue>,
}

impl TopicState {
    /// Whether the node participates in the tree at all.
    pub fn is_member(&self) -> bool {
        self.subscribed || self.is_root || !self.children.is_empty() || self.parent.is_some()
    }

    /// The merged aggregate of this node's subtree: its own contribution
    /// (when subscribed) plus the cached child reports.
    pub fn merged_agg(&self) -> Option<AggValue> {
        let own = if self.subscribed {
            self.local_value.clone()
        } else {
            None
        };
        AggValue::merge_all(own.iter().chain(self.child_agg.values()))
    }
}

/// Scribe tree state for one node, across all topics.
#[derive(Debug, Default)]
pub struct ScribeLayer {
    topics: BTreeMap<TopicId, TopicState>,
}

impl ScribeLayer {
    /// An empty layer.
    pub fn new() -> Self {
        ScribeLayer::default()
    }

    /// Read-only view of a topic's state, if the node participates.
    pub fn topic(&self, topic: TopicId) -> Option<&TopicState> {
        self.topics.get(&topic)
    }

    /// Iterates over `(topic, state)` pairs this node participates in.
    pub fn topics(&self) -> impl Iterator<Item = (&TopicId, &TopicState)> {
        self.topics.iter()
    }

    /// Whether this node participates in `topic`.
    pub fn is_member(&self, topic: TopicId) -> bool {
        self.topics.get(&topic).is_some_and(|s| s.is_member())
    }

    /// Subscribes this node to `topic`. If the node is the rendezvous root
    /// it attaches immediately; otherwise a JOIN is routed toward the
    /// topic key and the tree grows by the union of join paths.
    pub fn subscribe<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let st = self.topics.entry(topic).or_default();
        st.scope = scope;
        let was_attached = st.is_root || st.parent.is_some();
        if st.subscribed && was_attached {
            return;
        }
        st.subscribed = true;
        if was_attached {
            host.on_subscribed(topic);
            return;
        }
        match pastry.next_hop(topic.key(), scope) {
            None => {
                st.is_root = true;
                host.on_subscribed(topic);
            }
            Some(next) => {
                let child = pastry.info();
                net.send(
                    next.addr,
                    pastry::PastryMsg::Route {
                        key: topic.key(),
                        payload: ScribeMsg::Join {
                            topic,
                            scope,
                            child,
                        },
                        hops: 1,
                        scope,
                    },
                );
            }
        }
    }

    /// Unsubscribes from `topic`. Forwarder state is pruned lazily: a node
    /// with no children and no subscription leaves its parent too.
    pub fn unsubscribe<P, N>(&mut self, pastry: &mut PastryNode, net: &mut N, topic: TopicId)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        if let Some(st) = self.topics.get_mut(&topic) {
            st.subscribed = false;
            st.local_value = None;
        }
        self.maybe_prune::<P, N>(pastry, net, topic);
    }

    fn maybe_prune<P, N>(&mut self, pastry: &mut PastryNode, net: &mut N, topic: TopicId)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        let Some(st) = self.topics.get(&topic) else {
            return;
        };
        if st.subscribed || st.is_root || !st.children.is_empty() {
            return;
        }
        if let Some(parent) = st.parent {
            net.send(
                parent,
                pastry::PastryMsg::Direct(ScribeMsg::Leave {
                    topic,
                    child: pastry.info().addr,
                }),
            );
        }
        self.topics.remove(&topic);
    }

    /// Sets this node's contribution to the topic's aggregate (e.g.
    /// `Count(1)` for tree size).
    pub fn set_local_value(&mut self, topic: TopicId, value: AggValue) {
        if let Some(st) = self.topics.get_mut(&topic) {
            st.local_value = Some(value);
        }
    }

    /// Pushes merged subtree aggregates one level up every tree this node
    /// participates in (the paper's periodic `aggregate` primitive). Call
    /// from a periodic timer; after `O(depth)` ticks the root's aggregate
    /// is exact.
    pub fn aggregate_tick<P, N>(&mut self, pastry: &mut PastryNode, net: &mut N)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        let _ = pastry;
        for (topic, st) in &self.topics {
            if st.is_root {
                continue;
            }
            let (Some(parent), Some(value)) = (st.parent, st.merged_agg()) else {
                continue;
            };
            net.send(
                parent,
                pastry::PastryMsg::Direct(ScribeMsg::AggUpdate {
                    topic: *topic,
                    value,
                }),
            );
        }
    }

    /// The root's current view of the tree aggregate (valid at the root).
    pub fn root_aggregate(&self, topic: TopicId) -> Option<AggValue> {
        self.topics.get(&topic).and_then(|st| st.merged_agg())
    }

    /// Multicasts `payload` to every subscriber of `topic` (dissemination
    /// from the root down the tree, paper §II.B.3).
    pub fn multicast<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        payload: P,
    ) where
        P: MessageSize + Clone,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        match pastry.next_hop(topic.key(), scope) {
            None => self.disseminate(net, host, topic, payload),
            Some(next) => net.send(
                next.addr,
                pastry::PastryMsg::Route {
                    key: topic.key(),
                    payload: ScribeMsg::MulticastReq {
                        topic,
                        scope,
                        payload,
                    },
                    hops: 1,
                    scope,
                },
            ),
        }
    }

    fn disseminate<P, N, H>(&mut self, net: &mut N, host: &mut H, topic: TopicId, payload: P)
    where
        P: MessageSize + Clone,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let Some(st) = self.topics.get(&topic) else {
            return;
        };
        for child in &st.children {
            net.send(
                *child,
                pastry::PastryMsg::Direct(ScribeMsg::MulticastData {
                    topic,
                    payload: payload.clone(),
                }),
            );
        }
        if st.subscribed {
            host.on_multicast(topic, &payload);
        }
    }

    /// Anycasts `payload` into `topic`: the walk enters at a tree member
    /// near this node (Pastry's local route convergence) and performs a
    /// distributed depth-first search until a visit accepts or the tree is
    /// exhausted; the result returns to this node via
    /// [`ScribeHost::on_anycast_result`].
    pub fn anycast<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        payload: P,
    ) where
        P: MessageSize + Clone,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let origin = pastry.info().addr;
        if self.is_member(topic) {
            self.process_walk(
                pastry,
                net,
                host,
                topic,
                payload,
                origin,
                Vec::new(),
                Vec::new(),
            );
            return;
        }
        match pastry.next_hop(topic.key(), scope) {
            None => {
                // We are the rendezvous node but the tree does not exist.
                host.on_anycast_result(topic, payload, false);
            }
            Some(next) => net.send(
                next.addr,
                pastry::PastryMsg::Route {
                    key: topic.key(),
                    payload: ScribeMsg::Anycast {
                        topic,
                        scope,
                        payload,
                        origin,
                    },
                    hops: 1,
                    scope,
                },
            ),
        }
    }

    /// Asks the root of `topic` for its aggregate (tree size in the query
    /// protocol); the reply arrives via [`ScribeHost::on_probe_reply`].
    pub fn probe_root<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        mut payload: P,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let origin = pastry.info().addr;
        match pastry.next_hop(topic.key(), scope) {
            None => {
                let exists = self.is_member(topic);
                let agg = self.root_aggregate(topic);
                host.on_root_probe(topic, &mut payload);
                host.on_probe_reply(topic, payload, agg, exists);
            }
            Some(next) => net.send(
                next.addr,
                pastry::PastryMsg::Route {
                    key: topic.key(),
                    payload: ScribeMsg::ProbeRoot {
                        topic,
                        scope,
                        payload,
                        origin,
                    },
                    hops: 1,
                    scope,
                },
            ),
        }
    }

    /// Sends an application payload directly to another node.
    pub fn send_direct<P, N>(&mut self, net: &mut N, to: NodeAddr, payload: P)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        net.send(to, pastry::PastryMsg::Direct(ScribeMsg::AppDirect(payload)));
    }

    /// Reacts to a failed node: detaches it everywhere and re-joins any
    /// tree whose parent was lost.
    pub fn handle_failure<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        addr: NodeAddr,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let affected: Vec<TopicId> = self.topics.keys().copied().collect();
        for topic in affected {
            let st = self.topics.get_mut(&topic).expect("listed topic exists");
            st.children.remove(&addr);
            st.child_agg.remove(&addr);
            if st.parent == Some(addr) {
                st.parent = None;
                let scope = st.scope;
                let rejoin = st.is_member();
                if rejoin {
                    // Re-route a join for this subtree.
                    let was_subscribed = st.subscribed;
                    st.subscribed = true; // subscribe() requires intent; restore after
                    self.resubscribe::<P, N, H>(pastry, net, host, topic, scope, was_subscribed);
                }
            }
        }
    }

    fn resubscribe<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        scope: Option<SiteId>,
        was_subscribed: bool,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        match pastry.next_hop(topic.key(), scope) {
            None => {
                let st = self.topics.get_mut(&topic).expect("topic exists");
                st.is_root = true;
                st.subscribed = was_subscribed;
                host.on_subscribed(topic);
            }
            Some(next) => {
                let st = self.topics.get_mut(&topic).expect("topic exists");
                st.subscribed = was_subscribed;
                let child = pastry.info();
                net.send(
                    next.addr,
                    pastry::PastryMsg::Route {
                        key: topic.key(),
                        payload: ScribeMsg::Join {
                            topic,
                            scope,
                            child,
                        },
                        hops: 1,
                        scope,
                    },
                );
            }
        }
    }

    /// Grafts `child` under this node for `topic`, acknowledging it.
    fn graft<P, N>(&mut self, net: &mut N, topic: TopicId, scope: Option<SiteId>, child: NodeInfo)
    where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
    {
        let st = self.topics.entry(topic).or_default();
        st.scope = scope;
        st.children.insert(child.addr);
        net.send(
            child.addr,
            pastry::PastryMsg::Direct(ScribeMsg::JoinAck { topic }),
        );
    }

    /// One step of the distributed DFS: visit self (if a member and
    /// unvisited), extend the frontier with tree neighbours, and either
    /// hand the walk to the next node or return the result to the origin.
    #[allow(clippy::too_many_arguments)]
    fn process_walk<P, N, H>(
        &mut self,
        pastry: &mut PastryNode,
        net: &mut N,
        host: &mut H,
        topic: TopicId,
        mut payload: P,
        origin: NodeAddr,
        mut visited: Vec<NodeAddr>,
        mut stack: Vec<NodeAddr>,
    ) where
        P: MessageSize,
        N: Net<ScribeMsg<P>>,
        H: ScribeHost<P>,
    {
        let me = pastry.info().addr;
        if let Some(st) = self.topics.get(&topic) {
            if st.is_member() && !visited.contains(&me) {
                visited.push(me);
                if st.subscribed && host.on_anycast_visit(topic, &mut payload) == Visit::Stop {
                    net.send(
                        origin,
                        pastry::PastryMsg::Direct(ScribeMsg::AnycastResult {
                            topic,
                            payload,
                            satisfied: true,
                        }),
                    );
                    return;
                }
                // Extend the frontier with unexplored tree neighbours.
                for n in st.children.iter().copied().chain(st.parent) {
                    if !visited.contains(&n) && !stack.contains(&n) {
                        stack.push(n);
                    }
                }
            }
        }
        while let Some(next) = stack.pop() {
            if visited.contains(&next) {
                continue;
            }
            net.send(
                next,
                pastry::PastryMsg::Direct(ScribeMsg::AnycastStep {
                    topic,
                    payload,
                    origin,
                    visited,
                    stack,
                }),
            );
            return;
        }
        net.send(
            origin,
            pastry::PastryMsg::Direct(ScribeMsg::AnycastResult {
                topic,
                payload,
                satisfied: false,
            }),
        );
    }
}

/// Glue implementing [`PastryApp`] for a Scribe layer plus its host. Build
/// one per dispatch:
///
/// ```ignore
/// let mut app = ScribeApp { layer: &mut scribe, host: &mut host };
/// pastry.on_message(&mut net, &mut app, from, msg);
/// ```
pub struct ScribeApp<'a, H> {
    /// The node's Scribe state.
    pub layer: &'a mut ScribeLayer,
    /// The node's application.
    pub host: &'a mut H,
}

impl<'a, P, H> PastryApp<ScribeMsg<P>> for ScribeApp<'a, H>
where
    P: MessageSize + Clone,
    H: ScribeHost<P>,
{
    fn deliver<N: Net<ScribeMsg<P>>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        _key: pastry::NodeId,
        payload: ScribeMsg<P>,
        _hops: u16,
    ) {
        match payload {
            ScribeMsg::Join {
                topic,
                scope,
                child,
            } => {
                // We are the rendezvous root for this tree.
                self.layer.graft::<P, N>(net, topic, scope, child);
                let st = self.layer.topics.get_mut(&topic).expect("grafted");
                if !st.is_root {
                    st.is_root = true;
                }
            }
            ScribeMsg::MulticastReq { topic, payload, .. } => {
                self.layer.disseminate(net, self.host, topic, payload);
            }
            ScribeMsg::Anycast {
                topic,
                payload,
                origin,
                ..
            } => {
                if self.layer.is_member(topic) {
                    self.layer.process_walk(
                        node,
                        net,
                        self.host,
                        topic,
                        payload,
                        origin,
                        Vec::new(),
                        Vec::new(),
                    );
                } else {
                    net.send(
                        origin,
                        pastry::PastryMsg::Direct(ScribeMsg::AnycastResult {
                            topic,
                            payload,
                            satisfied: false,
                        }),
                    );
                }
            }
            ScribeMsg::ProbeRoot {
                topic,
                mut payload,
                origin,
                ..
            } => {
                let exists = self.layer.is_member(topic);
                let agg = self.layer.root_aggregate(topic);
                self.host.on_root_probe(topic, &mut payload);
                net.send(
                    origin,
                    pastry::PastryMsg::Direct(ScribeMsg::ProbeReply {
                        topic,
                        payload,
                        agg,
                        exists,
                    }),
                );
            }
            // Direct-only variants cannot arrive via routing; ignore
            // defensively.
            _ => {}
        }
    }

    fn forward<N: Net<ScribeMsg<P>>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        _key: pastry::NodeId,
        payload: ScribeMsg<P>,
        _next: &NodeInfo,
    ) -> Option<ScribeMsg<P>> {
        match payload {
            ScribeMsg::Join {
                topic,
                scope,
                child,
            } => {
                // Union-of-paths tree construction: graft the child here.
                // If we are already in the tree the join stops; otherwise we
                // become a forwarder and join on behalf of our new subtree.
                let already = self.layer.is_member(topic);
                self.layer.graft::<P, N>(net, topic, scope, child);
                if already {
                    None
                } else {
                    Some(ScribeMsg::Join {
                        topic,
                        scope,
                        child: node.info(),
                    })
                }
            }
            ScribeMsg::Anycast {
                topic,
                payload,
                origin,
                ..
            } if self.layer.is_member(topic) => {
                // Local route convergence dropped the walk at a nearby
                // member; take over the DFS here.
                self.layer.process_walk(
                    node,
                    net,
                    self.host,
                    topic,
                    payload,
                    origin,
                    Vec::new(),
                    Vec::new(),
                );
                None
            }
            other => Some(other),
        }
    }

    fn receive_direct<N: Net<ScribeMsg<P>>>(
        &mut self,
        node: &mut PastryNode,
        net: &mut N,
        from: NodeAddr,
        payload: ScribeMsg<P>,
    ) {
        match payload {
            ScribeMsg::JoinAck { topic } => {
                if let Some(st) = self.layer.topics.get_mut(&topic) {
                    st.parent = Some(from);
                    if st.subscribed {
                        self.host.on_subscribed(topic);
                    }
                }
            }
            ScribeMsg::Leave { topic, child } => {
                if let Some(st) = self.layer.topics.get_mut(&topic) {
                    st.children.remove(&child);
                    st.child_agg.remove(&child);
                }
                self.layer.maybe_prune::<P, N>(node, net, topic);
            }
            ScribeMsg::MulticastData { topic, payload } => {
                self.layer.disseminate(net, self.host, topic, payload);
            }
            ScribeMsg::AnycastStep {
                topic,
                payload,
                origin,
                visited,
                stack,
            } => {
                self.layer
                    .process_walk(node, net, self.host, topic, payload, origin, visited, stack);
            }
            ScribeMsg::AnycastResult {
                topic,
                payload,
                satisfied,
            } => {
                self.host.on_anycast_result(topic, payload, satisfied);
            }
            ScribeMsg::ProbeReply {
                topic,
                payload,
                agg,
                exists,
            } => {
                self.host.on_probe_reply(topic, payload, agg, exists);
            }
            ScribeMsg::AggUpdate { topic, value } => {
                if let Some(st) = self.layer.topics.get_mut(&topic) {
                    if st.children.contains(&from) {
                        st.child_agg.insert(from, value);
                    }
                }
            }
            ScribeMsg::AppDirect(p) => {
                self.host.on_direct(from, p);
            }
            // Routed-only variants cannot arrive directly; ignore.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastry::{NodeId, PastryMsg};
    use std::collections::VecDeque;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);
    impl MessageSize for P {}

    #[derive(Default)]
    struct RecNet {
        sent: VecDeque<(NodeAddr, PastryMsg<ScribeMsg<P>>)>,
    }
    impl Net<ScribeMsg<P>> for RecNet {
        fn send(&mut self, to: NodeAddr, msg: PastryMsg<ScribeMsg<P>>) {
            self.sent.push_back((to, msg));
        }
    }

    #[derive(Default)]
    struct RecHost {
        multicasts: Vec<(TopicId, P)>,
        visits: u32,
        stop_after: u32,
        results: Vec<(P, bool)>,
        subscribed: Vec<TopicId>,
    }
    impl ScribeHost<P> for RecHost {
        fn on_multicast(&mut self, topic: TopicId, payload: &P) {
            self.multicasts.push((topic, payload.clone()));
        }
        fn on_anycast_visit(&mut self, _topic: TopicId, _payload: &mut P) -> Visit {
            self.visits += 1;
            if self.visits >= self.stop_after {
                Visit::Stop
            } else {
                Visit::Continue
            }
        }
        fn on_anycast_result(&mut self, _topic: TopicId, payload: P, satisfied: bool) {
            self.results.push((payload, satisfied));
        }
        fn on_probe_reply(&mut self, _t: TopicId, _p: P, _a: Option<AggValue>, _e: bool) {}
        fn on_direct(&mut self, _from: NodeAddr, _payload: P) {}
        fn on_subscribed(&mut self, topic: TopicId) {
            self.subscribed.push(topic);
        }
    }

    fn mk_pastry(addr: u32) -> PastryNode {
        PastryNode::new(NodeInfo {
            id: NodeId::hash_of(format!("n{addr}").as_bytes()),
            addr: NodeAddr(addr),
            site: SiteId(0),
        })
    }

    #[test]
    fn lone_subscriber_becomes_root() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        let st = layer.topic(t).unwrap();
        assert!(st.is_root && st.subscribed);
        assert_eq!(host.subscribed, vec![t]);
        assert!(net.sent.is_empty());
    }

    #[test]
    fn subscribe_routes_join_toward_topic_key() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        // Teach pastry a far-away peer so the topic key routes off-node.
        let t = TopicId::new("GPU", "test");
        let peer = NodeInfo {
            id: NodeId(t.key().as_u128().wrapping_add(1)),
            addr: NodeAddr(1),
            site: SiteId(0),
        };
        pastry.insert_peer(&net, peer);
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        let (to, msg) = net.sent.pop_front().expect("join sent");
        assert_eq!(to, NodeAddr(1));
        assert!(matches!(
            msg,
            PastryMsg::Route {
                payload: ScribeMsg::Join { .. },
                ..
            }
        ));
        // Not yet attached.
        assert!(host.subscribed.is_empty());
    }

    #[test]
    fn join_ack_sets_parent_and_notifies() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        let peer = NodeInfo {
            id: NodeId(t.key().as_u128().wrapping_add(1)),
            addr: NodeAddr(1),
            site: SiteId(0),
        };
        pastry.insert_peer(&net, peer);
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(1),
            PastryMsg::Direct(ScribeMsg::JoinAck { topic: t }),
        );
        assert_eq!(layer.topic(t).unwrap().parent, Some(NodeAddr(1)));
        assert_eq!(host.subscribed, vec![t]);
    }

    #[test]
    fn root_multicast_reaches_children_and_self() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        // Graft two children manually.
        for c in [7u32, 9] {
            layer.graft::<P, _>(
                &mut net,
                t,
                None,
                NodeInfo {
                    id: NodeId(c as u128),
                    addr: NodeAddr(c),
                    site: SiteId(0),
                },
            );
        }
        net.sent.clear(); // drop the acks
        layer.multicast(&mut pastry, &mut net, &mut host, t, None, P(5));
        let dests: Vec<NodeAddr> = net.sent.iter().map(|(to, _)| *to).collect();
        assert_eq!(dests, vec![NodeAddr(7), NodeAddr(9)]);
        assert_eq!(host.multicasts, vec![(t, P(5))]);
    }

    #[test]
    fn aggregation_merges_children_and_local() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.set_local_value(t, AggValue::Count(1));
        // Fake child reports.
        let st = layer.topics.get_mut(&t).unwrap();
        st.children.insert(NodeAddr(1));
        st.children.insert(NodeAddr(2));
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        for (c, n) in [(1u32, 4u64), (2, 5)] {
            pastry.on_message(
                &mut net,
                &mut app,
                NodeAddr(c),
                PastryMsg::Direct(ScribeMsg::AggUpdate {
                    topic: t,
                    value: AggValue::Count(n),
                }),
            );
        }
        assert_eq!(layer.root_aggregate(t).unwrap().as_count(), Some(10));
    }

    #[test]
    fn agg_update_from_non_child_is_ignored() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.set_local_value(t, AggValue::Count(1));
        let mut app = ScribeApp {
            layer: &mut layer,
            host: &mut host,
        };
        pastry.on_message(
            &mut net,
            &mut app,
            NodeAddr(42),
            PastryMsg::Direct(ScribeMsg::AggUpdate {
                topic: t,
                value: AggValue::Count(99),
            }),
        );
        assert_eq!(layer.root_aggregate(t).unwrap().as_count(), Some(1));
    }

    #[test]
    fn anycast_on_lone_root_visits_self_then_satisfies() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        host.stop_after = 1;
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.anycast(&mut pastry, &mut net, &mut host, t, None, P(1));
        // Result goes to origin (self) as a direct message.
        let (to, msg) = net.sent.pop_front().unwrap();
        assert_eq!(to, NodeAddr(0));
        assert!(matches!(
            msg,
            PastryMsg::Direct(ScribeMsg::AnycastResult {
                satisfied: true,
                ..
            })
        ));
        assert_eq!(host.visits, 1);
    }

    #[test]
    fn anycast_exhaustion_reports_unsatisfied() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        host.stop_after = u32::MAX;
        let t = TopicId::new("GPU", "test");
        layer.subscribe(&mut pastry, &mut net, &mut host, t, None);
        layer.anycast(&mut pastry, &mut net, &mut host, t, None, P(1));
        let (_, msg) = net.sent.pop_front().unwrap();
        assert!(matches!(
            msg,
            PastryMsg::Direct(ScribeMsg::AnycastResult {
                satisfied: false,
                ..
            })
        ));
    }

    #[test]
    fn unsubscribe_prunes_and_sends_leave() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        // Simulate an attached non-root member.
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                subscribed: true,
                ..TopicState::default()
            },
        );
        let _ = &mut host;
        layer.unsubscribe::<P, _>(&mut pastry, &mut net, t);
        assert!(layer.topic(t).is_none());
        let (to, msg) = net.sent.pop_front().unwrap();
        assert_eq!(to, NodeAddr(3));
        assert!(matches!(msg, PastryMsg::Direct(ScribeMsg::Leave { .. })));
    }

    #[test]
    fn forwarder_with_children_does_not_prune() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let mut net = RecNet::default();
        let t = TopicId::new("GPU", "test");
        let mut st = TopicState {
            parent: Some(NodeAddr(3)),
            subscribed: true,
            ..TopicState::default()
        };
        st.children.insert(NodeAddr(8));
        layer.topics.insert(t, st);
        layer.unsubscribe::<P, _>(&mut pastry, &mut net, t);
        assert!(layer.topic(t).is_some(), "still a forwarder");
        assert!(net.sent.is_empty());
    }

    #[test]
    fn parent_failure_triggers_rejoin() {
        let mut pastry = mk_pastry(0);
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), RecHost::default());
        let t = TopicId::new("GPU", "test");
        let peer = NodeInfo {
            id: NodeId(t.key().as_u128().wrapping_add(1)),
            addr: NodeAddr(9),
            site: SiteId(0),
        };
        pastry.insert_peer(&net, peer);
        layer.topics.insert(
            t,
            TopicState {
                parent: Some(NodeAddr(3)),
                subscribed: true,
                ..TopicState::default()
            },
        );
        layer.handle_failure(&mut pastry, &mut net, &mut host, NodeAddr(3));
        assert_eq!(layer.topic(t).unwrap().parent, None);
        let (_, msg) = net.sent.pop_front().expect("rejoin sent");
        assert!(matches!(
            msg,
            PastryMsg::Route {
                payload: ScribeMsg::Join { .. },
                ..
            }
        ));
    }
}

#[cfg(test)]
mod no_tree_tests {
    use super::*;
    use pastry::{NodeId, PastryNode};
    use std::collections::VecDeque;

    #[derive(Debug, Clone, PartialEq)]
    struct P;
    impl simnet::MessageSize for P {}
    #[derive(Default)]
    struct RecNet {
        sent: VecDeque<(NodeAddr, pastry::PastryMsg<ScribeMsg<P>>)>,
    }
    impl Net<ScribeMsg<P>> for RecNet {
        fn send(&mut self, to: NodeAddr, msg: pastry::PastryMsg<ScribeMsg<P>>) {
            self.sent.push_back((to, msg));
        }
    }
    struct NullHost;
    impl ScribeHost<P> for NullHost {
        fn on_multicast(&mut self, _t: TopicId, _p: &P) {
            panic!("no members exist; nothing may be delivered");
        }
        fn on_anycast_visit(&mut self, _t: TopicId, _p: &mut P) -> Visit {
            Visit::Continue
        }
        fn on_anycast_result(&mut self, _t: TopicId, _p: P, _s: bool) {}
        fn on_probe_reply(&mut self, _t: TopicId, _p: P, _a: Option<AggValue>, _e: bool) {}
        fn on_direct(&mut self, _f: NodeAddr, _p: P) {}
    }

    /// Multicasting into a tree that does not exist at its rendezvous node
    /// is a harmless no-op (the root-side disseminate finds no state).
    #[test]
    fn multicast_into_missing_tree_is_a_noop() {
        let mut pastry = PastryNode::new(crate::layer::tests_support_info(4));
        let mut layer = ScribeLayer::new();
        let (mut net, mut host) = (RecNet::default(), NullHost);
        let t = TopicId::new("ghost", "nobody");
        // This lone node is the rendezvous for every key.
        layer.multicast(&mut pastry, &mut net, &mut host, t, None, P);
        assert!(net.sent.is_empty());
        assert!(layer.topic(t).is_none());
        let _ = NodeId(0);
    }
}

#[cfg(test)]
pub(crate) fn tests_support_info(addr: u32) -> pastry::NodeInfo {
    pastry::NodeInfo {
        id: pastry::NodeId::hash_of(format!("sup{addr}").as_bytes()),
        addr: NodeAddr(addr),
        site: simnet::SiteId(0),
    }
}
