//! Seeded-mutant switchboard for the mutation-smoke suite.
//!
//! PR 4 fixed four tree-repair bugs. Each fix site also consults this
//! module; with the `seeded-bugs` feature enabled, `rbay-check`'s
//! mutation tests can re-introduce one bug at a time and assert the
//! checker finds it within a bounded step budget. Without the feature
//! every query compiles to `false` and the sites are unchanged.
//!
//! Bug ids:
//! 1. reparent omits the `Leave` to the old parent (double-counted
//!    aggregate: the member stays in two children sets). Gates both
//!    omitted-`Leave` sites: the stale-`JoinAck` reparent and the
//!    `handle_failure` notice to a falsely-declared parent;
//! 2. `NotChild` NACK ignored (permanently orphaned subscriber: the
//!    child keeps a parent that disowned it);
//! 3. peers are never unsuspected on receipt of traffic (live peers get
//!    permanently evicted after one missed heartbeat) — site lives in
//!    `rbay-core`, which queries through this switchboard;
//! 4. fragment-root demotion disabled (two live roots per topic after a
//!    partition heals).

#[cfg(feature = "seeded-bugs")]
use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(feature = "seeded-bugs")]
static ACTIVE_BUG: AtomicU8 = AtomicU8::new(0);

/// Whether seeded bug `id` (1–4) is currently active. Always `false`
/// without the `seeded-bugs` feature.
#[cfg(feature = "seeded-bugs")]
pub fn seeded_bug_active(id: u8) -> bool {
    ACTIVE_BUG.load(Ordering::Relaxed) == id
}

/// Whether seeded bug `id` (1–4) is currently active. Always `false`
/// without the `seeded-bugs` feature.
#[cfg(not(feature = "seeded-bugs"))]
pub fn seeded_bug_active(_id: u8) -> bool {
    false
}

/// Activates seeded bug `id` process-wide (0 disarms). The switch is a
/// process-global, so mutation tests must run the four bugs
/// sequentially, not in parallel `#[test]`s.
#[cfg(feature = "seeded-bugs")]
pub fn set_seeded_bug(id: u8) {
    ACTIVE_BUG.store(id, Ordering::Relaxed);
}
