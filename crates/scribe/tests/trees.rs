//! End-to-end Scribe tests over simnet: tree construction from join paths,
//! multicast coverage, anycast DFS, aggregation convergence, and scoped
//! (per-site) trees.

use pastry::{seed_overlay, NodeId, NodeInfo, PastryMsg, PastryNode, SimNet};
use scribe::{AggValue, ScribeApp, ScribeHost, ScribeLayer, ScribeMsg, TopicId, Visit};
use simnet::{Actor, Context, MessageSize, NodeAddr, SimDuration, Simulation, SiteId, Topology};
use std::collections::HashSet;

#[derive(Debug, Clone, PartialEq)]
struct P(u64);
impl MessageSize for P {}

#[derive(Default)]
struct Host {
    multicasts: Vec<(TopicId, P)>,
    accept: bool,
    visits: u64,
    results: Vec<(TopicId, P, bool)>,
    probes: Vec<(TopicId, Option<AggValue>, bool)>,
    subscribed: Vec<TopicId>,
}

impl ScribeHost<P> for Host {
    fn on_multicast(&mut self, topic: TopicId, payload: &P) {
        self.multicasts.push((topic, payload.clone()));
    }
    fn on_anycast_visit(&mut self, _topic: TopicId, payload: &mut P) -> Visit {
        self.visits += 1;
        payload.0 += 1; // count visits in the payload as RBAY fills buffers
        if self.accept {
            Visit::Stop
        } else {
            Visit::Continue
        }
    }
    fn on_anycast_result(&mut self, topic: TopicId, payload: P, satisfied: bool) {
        self.results.push((topic, payload, satisfied));
    }
    fn on_probe_reply(&mut self, topic: TopicId, _payload: P, agg: Option<AggValue>, exists: bool) {
        self.probes.push((topic, agg, exists));
    }
    fn on_direct(&mut self, _from: NodeAddr, _payload: P) {}
    fn on_subscribed(&mut self, topic: TopicId) {
        self.subscribed.push(topic);
    }
}

struct Node {
    pastry: PastryNode,
    scribe: ScribeLayer,
    host: Host,
}

impl Actor for Node {
    type Msg = PastryMsg<ScribeMsg<P>>;
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        let Node {
            pastry,
            scribe,
            host,
        } = self;
        let mut net = SimNet::new(ctx);
        let mut app = ScribeApp {
            layer: scribe,
            host,
        };
        pastry.on_message(&mut net, &mut app, from, msg);
    }
}

fn build_sim(topo: Topology, seed: u64) -> Simulation<Node> {
    let t2 = topo.clone();
    let mut sim = Simulation::new(topo, seed, move |addr| Node {
        pastry: PastryNode::new(NodeInfo {
            id: NodeId::hash_of(format!("node:{}", addr.0).as_bytes()),
            addr,
            site: t2.site_of(addr),
        }),
        scribe: ScribeLayer::new(),
        host: Host::default(),
    });
    let mut nodes: Vec<PastryNode> = sim
        .actors()
        .map(|(_, a)| PastryNode::new(a.pastry.info()))
        .collect();
    let rtts = sim.topology().clone();
    seed_overlay(&mut nodes, |a, b| rtts.rtt_ms(a, b));
    for (i, n) in nodes.into_iter().enumerate() {
        sim.actor_mut(NodeAddr(i as u32)).pastry = n;
    }
    sim
}

fn subscribe_all(sim: &mut Simulation<Node>, topic: TopicId, members: &[NodeAddr]) {
    for &m in members {
        let now = sim.now();
        sim.schedule_call(now, m, move |a, ctx| {
            let Node {
                pastry,
                scribe,
                host,
            } = a;
            let mut net = SimNet::new(ctx);
            scribe.subscribe(pastry, &mut net, host, topic, None);
            scribe.set_local_value(topic, AggValue::Count(1));
        });
    }
    sim.run_until_idle();
}

/// The tree spans exactly the subscribers: every subscriber is attached and
/// following parents always reaches the root.
#[test]
fn join_paths_form_a_spanning_tree() {
    let mut sim = build_sim(Topology::single_site(120, 0.5), 1);
    let topic = TopicId::new("GPU", "rbay");
    let members: Vec<NodeAddr> = (0..60).map(|i| NodeAddr(i * 2)).collect();
    subscribe_all(&mut sim, topic, &members);

    // Exactly one root, and it is a tree member.
    let roots: Vec<NodeAddr> = sim
        .actors()
        .filter(|(_, a)| a.scribe.topic(topic).is_some_and(|s| s.is_root))
        .map(|(addr, _)| addr)
        .collect();
    assert_eq!(roots.len(), 1, "exactly one root, got {roots:?}");
    let root = roots[0];

    // The root is the node whose id is closest to the topic key.
    let infos: Vec<NodeInfo> = sim.actors().map(|(_, a)| a.pastry.info()).collect();
    let oracle = infos
        .iter()
        .map(|e| e.id)
        .reduce(|best, id| {
            if id.closer_to(topic.key(), best) {
                id
            } else {
                best
            }
        })
        .unwrap();
    assert_eq!(sim.actor(root).pastry.id(), oracle);

    // Every subscriber reaches the root by following parent pointers, with
    // no cycles.
    for &m in &members {
        let mut cur = m;
        let mut seen = HashSet::new();
        loop {
            assert!(seen.insert(cur), "cycle through {cur}");
            let st = sim.actor(cur).scribe.topic(topic).expect("member state");
            if st.is_root {
                break;
            }
            cur = st.parent.expect("attached member has a parent");
        }
    }

    // Parent/child tables are consistent.
    for (addr, a) in sim.actors() {
        if let Some(st) = a.scribe.topic(topic) {
            if let Some(p) = st.parent {
                assert!(
                    sim.actor(p)
                        .scribe
                        .topic(topic)
                        .is_some_and(|ps| ps.children.contains(&addr)),
                    "{addr} not in its parent's children table"
                );
            }
        }
    }
}

#[test]
fn multicast_reaches_every_subscriber_exactly_once() {
    let mut sim = build_sim(Topology::single_site(80, 0.5), 2);
    let topic = TopicId::new("Matlab", "rbay");
    let members: Vec<NodeAddr> = (0..40).map(NodeAddr).collect();
    subscribe_all(&mut sim, topic, &members);

    let now = sim.now();
    sim.schedule_call(now, NodeAddr(70), move |a, ctx| {
        let Node {
            pastry,
            scribe,
            host,
        } = a;
        let mut net = SimNet::new(ctx);
        scribe.multicast(pastry, &mut net, host, topic, None, P(99));
    });
    sim.run_until_idle();

    for &m in &members {
        let got = &sim.actor(m).host.multicasts;
        assert_eq!(got.len(), 1, "{m} got {} copies", got.len());
        assert_eq!(got[0], (topic, P(99)));
    }
    // Non-subscribers saw nothing.
    for (addr, a) in sim.actors() {
        if !members.contains(&addr) {
            assert!(a.host.multicasts.is_empty(), "{addr} is not a subscriber");
        }
    }
}

#[test]
fn anycast_stops_at_first_accepting_member() {
    let mut sim = build_sim(Topology::single_site(60, 0.5), 3);
    let topic = TopicId::new("CPU<10%", "rbay");
    let members: Vec<NodeAddr> = (10..30).map(NodeAddr).collect();
    subscribe_all(&mut sim, topic, &members);
    for &m in &members {
        sim.actor_mut(m).host.accept = true;
    }
    let now = sim.now();
    sim.schedule_call(now, NodeAddr(0), move |a, ctx| {
        let Node {
            pastry,
            scribe,
            host,
        } = a;
        let mut net = SimNet::new(ctx);
        scribe.anycast(pastry, &mut net, host, topic, None, P(0));
    });
    sim.run_until_idle();
    let origin = sim.actor(NodeAddr(0));
    assert_eq!(origin.host.results.len(), 1);
    let (t, p, satisfied) = &origin.host.results[0];
    assert_eq!(*t, topic);
    assert!(*satisfied);
    assert_eq!(p.0, 1, "exactly one visit before acceptance");
    let total_visits: u64 = sim.actors().map(|(_, a)| a.host.visits).sum();
    assert_eq!(total_visits, 1);
}

#[test]
fn anycast_exhausts_tree_when_nobody_accepts() {
    let mut sim = build_sim(Topology::single_site(40, 0.5), 4);
    let topic = TopicId::new("GPU", "rbay");
    let members: Vec<NodeAddr> = (0..12).map(NodeAddr).collect();
    subscribe_all(&mut sim, topic, &members);
    // accept stays false everywhere.
    let now = sim.now();
    sim.schedule_call(now, NodeAddr(30), move |a, ctx| {
        let Node {
            pastry,
            scribe,
            host,
        } = a;
        let mut net = SimNet::new(ctx);
        scribe.anycast(pastry, &mut net, host, topic, None, P(0));
    });
    sim.run_until_idle();
    let origin = sim.actor(NodeAddr(30));
    assert_eq!(origin.host.results.len(), 1);
    let (_, p, satisfied) = &origin.host.results[0];
    assert!(!*satisfied);
    // Every subscriber was visited exactly once (forwarder-only nodes are
    // walked through but not "visited" by the host).
    assert_eq!(p.0, members.len() as u64, "all subscribers visited");
}

#[test]
fn anycast_into_missing_tree_is_unsatisfied() {
    let mut sim = build_sim(Topology::single_site(20, 0.5), 5);
    let topic = TopicId::new("nonexistent", "rbay");
    let now = sim.now();
    sim.schedule_call(now, NodeAddr(3), move |a, ctx| {
        let Node {
            pastry,
            scribe,
            host,
        } = a;
        let mut net = SimNet::new(ctx);
        scribe.anycast(pastry, &mut net, host, topic, None, P(0));
    });
    sim.run_until_idle();
    let origin = sim.actor(NodeAddr(3));
    assert_eq!(origin.host.results.len(), 1);
    assert!(!origin.host.results[0].2);
}

#[test]
fn aggregation_converges_to_tree_size() {
    let mut sim = build_sim(Topology::single_site(100, 0.5), 6);
    let topic = TopicId::new("m3.large", "rbay");
    let members: Vec<NodeAddr> = (0..37).map(NodeAddr).collect();
    subscribe_all(&mut sim, topic, &members);

    // Run several aggregation rounds: every member pushes up once per round.
    for _ in 0..6 {
        for (addr, _) in sim
            .actors()
            .map(|(a, n)| (a, n.pastry.info()))
            .collect::<Vec<_>>()
        {
            let now = sim.now();
            sim.schedule_call(now, addr, |a, ctx| {
                let Node { pastry, scribe, .. } = a;
                let mut net = SimNet::new(ctx);
                scribe.aggregate_tick(pastry, &mut net);
            });
        }
        sim.run_for(SimDuration::from_millis(200));
    }
    sim.run_until_idle();

    let root = sim
        .actors()
        .find(|(_, a)| a.scribe.topic(topic).is_some_and(|s| s.is_root))
        .expect("root exists");
    let agg = root.1.scribe.root_aggregate(topic).expect("aggregate");
    assert_eq!(agg.as_count(), Some(37), "root sees the exact tree size");
}

#[test]
fn probe_root_returns_tree_size_and_existence() {
    let mut sim = build_sim(Topology::single_site(50, 0.5), 7);
    let topic = TopicId::new("c3.8xlarge", "rbay");
    let members: Vec<NodeAddr> = (5..25).map(NodeAddr).collect();
    subscribe_all(&mut sim, topic, &members);
    for _ in 0..5 {
        for i in 0..50u32 {
            let now = sim.now();
            sim.schedule_call(now, NodeAddr(i), |a, ctx| {
                let Node { pastry, scribe, .. } = a;
                let mut net = SimNet::new(ctx);
                scribe.aggregate_tick(pastry, &mut net);
            });
        }
        sim.run_for(SimDuration::from_millis(100));
    }
    sim.run_until_idle();

    let now = sim.now();
    sim.schedule_call(now, NodeAddr(49), move |a, ctx| {
        let Node {
            pastry,
            scribe,
            host,
        } = a;
        let mut net = SimNet::new(ctx);
        scribe.probe_root(pastry, &mut net, host, topic, None, P(0));
    });
    // Probe a tree that does not exist, too.
    let missing = TopicId::new("no-such-tree", "rbay");
    sim.schedule_call(now, NodeAddr(49), move |a, ctx| {
        let Node {
            pastry,
            scribe,
            host,
        } = a;
        let mut net = SimNet::new(ctx);
        scribe.probe_root(pastry, &mut net, host, missing, None, P(1));
    });
    sim.run_until_idle();

    let probes = &sim.actor(NodeAddr(49)).host.probes;
    assert_eq!(probes.len(), 2);
    let by_topic = |t: TopicId| probes.iter().find(|(pt, _, _)| *pt == t).unwrap();
    let (_, agg, exists) = by_topic(topic);
    assert!(*exists);
    assert_eq!(agg.as_ref().unwrap().as_count(), Some(20));
    let (_, agg2, exists2) = by_topic(missing);
    assert!(!*exists2);
    assert!(agg2.is_none());
}

#[test]
fn scoped_trees_use_per_site_rendezvous() {
    let mut sim = build_sim(Topology::aws_ec2_8_sites(10), 8);
    // A site-1 scoped tree: all members and the root stay in site 1.
    let topic = TopicId::scoped("t2.micro", "rbay", SiteId(1));
    let members: Vec<NodeAddr> = sim.topology().nodes_of_site(SiteId(1));
    for &m in &members {
        let now = sim.now();
        sim.schedule_call(now, m, move |a, ctx| {
            let Node {
                pastry,
                scribe,
                host,
            } = a;
            let mut net = SimNet::new(ctx);
            scribe.subscribe(pastry, &mut net, host, topic, Some(SiteId(1)));
        });
    }
    sim.run_until_idle();
    // All participants of the topic are site-1 nodes.
    for (addr, a) in sim.actors() {
        if a.scribe.topic(topic).is_some() {
            assert_eq!(
                sim.topology().site_of(addr),
                SiteId(1),
                "{addr} participates but is outside the scope"
            );
        }
    }
    // Exactly one root among the site's nodes.
    let roots = sim
        .actors()
        .filter(|(_, a)| a.scribe.topic(topic).is_some_and(|s| s.is_root))
        .count();
    assert_eq!(roots, 1);
}
