//! Property tests for the aggregation extension: for arbitrary membership
//! sets and arbitrary per-member contributions of any composable kind, the
//! root's aggregate after convergence equals the direct fold over the
//! members.

use pastry::{seed_overlay, NodeId, NodeInfo, PastryMsg, PastryNode, SimNet};
use proptest::prelude::*;
use scribe::{AggValue, ScribeApp, ScribeHost, ScribeLayer, ScribeMsg, TopicId, Visit};
use simnet::{Actor, Context, MessageSize, NodeAddr, SimDuration, Simulation, Topology};

#[derive(Debug, Clone, PartialEq)]
struct P;
impl MessageSize for P {}

struct NullHost;
impl ScribeHost<P> for NullHost {
    fn on_multicast(&mut self, _t: TopicId, _p: &P) {}
    fn on_anycast_visit(&mut self, _t: TopicId, _p: &mut P) -> Visit {
        Visit::Continue
    }
    fn on_anycast_result(&mut self, _t: TopicId, _p: P, _s: bool) {}
    fn on_probe_reply(&mut self, _t: TopicId, _p: P, _a: Option<AggValue>, _e: bool) {}
    fn on_direct(&mut self, _f: NodeAddr, _p: P) {}
}

struct Node {
    pastry: PastryNode,
    scribe: ScribeLayer,
    host: NullHost,
}

impl Actor for Node {
    type Msg = PastryMsg<ScribeMsg<P>>;
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        let Node {
            pastry,
            scribe,
            host,
        } = self;
        let mut net = SimNet::new(ctx);
        let mut app = ScribeApp {
            layer: scribe,
            host,
        };
        pastry.on_message(&mut net, &mut app, from, msg);
    }
}

fn converged_root_aggregate(
    n_nodes: usize,
    members: &[(usize, AggValue)],
    seed: u64,
) -> Option<AggValue> {
    let topo = Topology::single_site(n_nodes, 0.3);
    let mut sim = Simulation::new(topo, seed, |addr| Node {
        pastry: PastryNode::new(NodeInfo {
            id: NodeId::hash_of(format!("agg:{}", addr.0).as_bytes()),
            addr,
            site: simnet::SiteId(0),
        }),
        scribe: ScribeLayer::new(),
        host: NullHost,
    });
    let mut nodes: Vec<PastryNode> = sim
        .actors()
        .map(|(_, a)| PastryNode::new(a.pastry.info()))
        .collect();
    seed_overlay(&mut nodes, |_, _| 0.0);
    for (i, n) in nodes.into_iter().enumerate() {
        sim.actor_mut(NodeAddr(i as u32)).pastry = n;
    }
    let topic = TopicId::new("prop-tree", "agg");
    for (m, v) in members.iter().cloned() {
        let now = sim.now();
        sim.schedule_call(now, NodeAddr(m as u32), move |a, ctx| {
            let Node {
                pastry,
                scribe,
                host,
            } = a;
            let mut net = SimNet::new(ctx);
            scribe.subscribe(pastry, &mut net, host, topic, None);
            scribe.set_local_value(topic, v);
        });
    }
    sim.run_until_idle();
    // Enough tick rounds to cover any tree depth.
    for _ in 0..8 {
        for i in 0..n_nodes as u32 {
            let now = sim.now();
            sim.schedule_call(now, NodeAddr(i), |a, ctx| {
                let mut net = SimNet::new(ctx);
                a.scribe.aggregate_tick::<P, _>(&mut a.pastry, &mut net);
            });
        }
        sim.run_for(SimDuration::from_millis(50));
    }
    sim.run_until_idle();
    let agg = sim
        .actors()
        .find(|(_, a)| a.scribe.topic(topic).is_some_and(|s| s.is_root))
        .and_then(|(_, a)| a.scribe.root_aggregate(topic));
    agg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Count aggregation: the root sees exactly the subscriber count.
    #[test]
    fn root_count_equals_membership(
        seed in 0u64..500,
        n in 8usize..60,
        member_bits in proptest::collection::vec(any::<bool>(), 8..60),
    ) {
        let members: Vec<(usize, AggValue)> = member_bits
            .iter()
            .enumerate()
            .filter(|(i, b)| **b && *i < n)
            .map(|(i, _)| (i, AggValue::Count(1)))
            .collect();
        prop_assume!(!members.is_empty());
        let agg = converged_root_aggregate(n, &members, seed).expect("root exists");
        prop_assert_eq!(agg.as_count(), Some(members.len() as u64));
    }

    /// Sum aggregation matches the direct fold over contributions.
    #[test]
    fn root_sum_equals_direct_fold(
        seed in 0u64..500,
        vals in proptest::collection::vec(-1000i32..1000, 2..20),
    ) {
        let n = 40usize;
        let members: Vec<(usize, AggValue)> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| (i * 2 % n, AggValue::Sum(*v as f64)))
            .collect();
        // Dedup node indices (later assignments overwrite local values).
        let mut seen = std::collections::BTreeMap::new();
        for (m, v) in members {
            seen.insert(m, v);
        }
        let members: Vec<(usize, AggValue)> = seen.into_iter().collect();
        let expect: f64 = members
            .iter()
            .map(|(_, v)| match v {
                AggValue::Sum(x) => *x,
                _ => unreachable!(),
            })
            .sum();
        let agg = converged_root_aggregate(n, &members, seed).expect("root exists");
        prop_assert!((agg.as_f64() - expect).abs() < 1e-9);
    }

    /// Min/Max aggregation matches the direct fold.
    #[test]
    fn root_extrema_match_direct_fold(
        seed in 0u64..500,
        vals in proptest::collection::vec(-1e6f64..1e6, 2..16),
    ) {
        let n = 32usize;
        let min_members: Vec<(usize, AggValue)> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| (i, AggValue::Min(*v)))
            .collect();
        let expect = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let agg = converged_root_aggregate(n, &min_members, seed).expect("root exists");
        prop_assert_eq!(agg.as_f64(), expect);
    }
}
