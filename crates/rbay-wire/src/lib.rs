//! rbay-wire: the binary wire protocol and socket transport for the RBAY
//! federation.
//!
//! Until now every message in this codebase was a Rust enum moving through
//! `simnet`'s in-memory event queue — nothing could leave the process. The
//! paper's deployment is the opposite: 16,000 agents as real processes
//! exchanging bytes over TCP across 8 regions. This crate makes the
//! message plane real while keeping the protocol code untouched:
//!
//! * [`codec`] — a self-contained length-prefixed binary format: the
//!   [`Wire`] trait, varint integers, length-prefixed strings, a
//!   protocol-version frame header, and a bounds-checked [`Reader`] whose
//!   decode path is total (hostile bytes yield [`WireError`], never a
//!   panic or unbounded allocation).
//! * [`impls`] — `Wire` for the full cross-node message surface owned by
//!   `simnet`/`pastry`/`scribe`/`rbay-query`: `PastryMsg`, `ScribeMsg`,
//!   `AggValue`, `AttrValue`, and the query AST. (`RbayPayload` and
//!   `RbayEvent` implement `Wire` in `rbay-core` itself — the orphan rule
//!   puts impls next to whichever side is local.)
//! * [`transport`] — the [`Transport`] trait: message delivery + clock +
//!   timers, the only I/O surface the protocol actors need.
//! * [`buf`] — zero-copy inbound framing: [`FrameBuf`] views into shared
//!   read buffers and the [`FrameAssembler`] that carves socket reads
//!   into frame runs.
//! * [`tcp`] — the real backend: [`tcp::TcpBus`], a single-threaded
//!   nonblocking event loop (vendored `epoll-shim`) with per-connection
//!   write coalescing, bounded staging queues, and `[from][to]`-headered
//!   peer frames so one bus can host many packed members; and
//!   [`tcp::TcpTransport`].
//!
//! The simnet backend lives in `rbay-core` (`SimTransport`), so tier-1
//! simulation behavior is bit-for-bit unchanged; the `rbay-node` daemon
//! and `cluster` harness in `rbay-bench` run the same actors over real
//! loopback sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod codec;
pub mod impls;
pub mod tcp;
pub mod transport;

pub use buf::{FrameAssembler, FrameBuf};
pub use codec::{
    decode_frame, encode_frame, read_frame, write_frame, Reader, Wire, WireError, CANON_NAN_BITS,
    MAX_DEPTH, MAX_FRAME_LEN, WIRE_VERSION,
};
pub use tcp::{DropStats, Hello, Inbound, Resolver, TcpBus, TcpTransport};
pub use transport::Transport;
