//! rbay-wire: the binary wire protocol and socket transport for the RBAY
//! federation.
//!
//! Until now every message in this codebase was a Rust enum moving through
//! `simnet`'s in-memory event queue — nothing could leave the process. The
//! paper's deployment is the opposite: 16,000 agents as real processes
//! exchanging bytes over TCP across 8 regions. This crate makes the
//! message plane real while keeping the protocol code untouched:
//!
//! * [`codec`] — a self-contained length-prefixed binary format: the
//!   [`Wire`] trait, varint integers, length-prefixed strings, a
//!   protocol-version frame header, and a bounds-checked [`Reader`] whose
//!   decode path is total (hostile bytes yield [`WireError`], never a
//!   panic or unbounded allocation).
//! * [`impls`] — `Wire` for the full cross-node message surface owned by
//!   `simnet`/`pastry`/`scribe`/`rbay-query`: `PastryMsg`, `ScribeMsg`,
//!   `AggValue`, `AttrValue`, and the query AST. (`RbayPayload` and
//!   `RbayEvent` implement `Wire` in `rbay-core` itself — the orphan rule
//!   puts impls next to whichever side is local.)
//! * [`transport`] — the [`Transport`] trait: message delivery + clock +
//!   timers, the only I/O surface the protocol actors need.
//! * [`tcp`] — the real backend: [`tcp::TcpBus`] (listener + thread-per-
//!   peer readers and writers, bounded queues, reconnect-on-error) and
//!   [`tcp::TcpTransport`].
//!
//! The simnet backend lives in `rbay-core` (`SimTransport`), so tier-1
//! simulation behavior is bit-for-bit unchanged; the `rbay-node` daemon
//! and `cluster` harness in `rbay-bench` run the same actors over real
//! loopback sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod impls;
pub mod tcp;
pub mod transport;

pub use codec::{
    decode_frame, encode_frame, read_frame, write_frame, Reader, Wire, WireError, CANON_NAN_BITS,
    MAX_DEPTH, MAX_FRAME_LEN, WIRE_VERSION,
};
pub use tcp::{Hello, Inbound, Resolver, TcpBus, TcpTransport};
pub use transport::Transport;
