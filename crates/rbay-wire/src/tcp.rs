//! Real-socket backend: a [`TcpBus`] moving length-prefixed frames between
//! OS processes over `std::net::TcpStream`, and a [`TcpTransport`] that
//! implements [`Transport`] on top of it with a wall-clock timer wheel.
//!
//! Threading model (one bus per daemon):
//!
//! * one **listener** thread accepts inbound connections;
//! * one **reader** thread per inbound connection: reads the hello frame
//!   identifying the peer, then pushes every subsequent frame into a
//!   *bounded* inbound queue (blocking when full — backpressure reaches
//!   the peer through TCP flow control);
//! * one **writer** thread per outbound peer, fed by a bounded channel:
//!   connects lazily, sends its own hello, and on a write error reconnects
//!   once before dropping the frame. A saturated outbound channel also
//!   drops frames (`try_send`) — loss, not blocking, because every overlay
//!   protocol above already tolerates loss (heartbeats, rejoin, repair).
//!
//! Only raw `Vec<u8>` frames cross threads; encoding and decoding of typed
//! messages (which may hold non-`Send` state such as `Rc<Query>`) stay on
//! the daemon's main thread.

use crate::codec::{
    decode_frame, encode_frame, read_frame, write_frame, Reader, Wire, WireError, MAX_FRAME_LEN,
};
use crate::transport::Transport;
use simnet::{NodeAddr, SimDuration, SimTime, TimerToken};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Capacity of the shared inbound frame queue (frames, not bytes).
const INBOUND_QUEUE: usize = 4096;
/// Capacity of each per-peer outbound frame queue.
const OUTBOUND_QUEUE: usize = 1024;

/// First frame on every connection: who is calling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hello {
    /// A federation peer identified by its overlay address.
    Peer(NodeAddr),
    /// A control client (the `cluster` harness); carries no address.
    Ctrl,
}

impl Wire for Hello {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Hello::Peer(addr) => {
                out.push(0);
                addr.encode_into(out);
            }
            Hello::Ctrl => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => Hello::Peer(NodeAddr::decode(r)?),
            1 => Hello::Ctrl,
            tag => return Err(WireError::BadTag { what: "Hello", tag }),
        })
    }
}

/// One frame delivered by the bus to the daemon's main loop.
#[derive(Debug)]
pub enum Inbound {
    /// A protocol frame from a federation peer (still encoded — decode on
    /// the main thread).
    Peer {
        /// Overlay address the peer announced in its hello.
        from: NodeAddr,
        /// The raw frame body.
        frame: Vec<u8>,
    },
    /// A frame from a control client.
    Ctrl {
        /// Bus-local id of the control connection, for [`TcpBus::send_ctrl`].
        conn: u64,
        /// The raw frame body.
        frame: Vec<u8>,
    },
    /// A control connection closed.
    CtrlClosed {
        /// Bus-local id of the closed connection.
        conn: u64,
    },
}

/// Maps overlay addresses to socket addresses (e.g. `127.0.0.1:base+i`).
pub type Resolver = Arc<dyn Fn(NodeAddr) -> Option<SocketAddr> + Send + Sync>;

struct BusInner {
    my_addr: NodeAddr,
    resolver: Resolver,
    /// Outbound frame queues, one writer thread per peer, created lazily.
    peers: Mutex<HashMap<NodeAddr, SyncSender<Vec<u8>>>>,
    /// Write halves of live control connections.
    ctrl_conns: Mutex<HashMap<u64, TcpStream>>,
    /// Frames silently dropped on saturated or broken outbound paths.
    dropped: Mutex<u64>,
}

/// A shared handle to one daemon's socket machinery. Cheap to clone.
#[derive(Clone)]
pub struct TcpBus {
    inner: Arc<BusInner>,
}

impl TcpBus {
    /// Binds `listen`, spawns the listener thread, and returns the bus
    /// plus the inbound frame queue its reader threads feed.
    pub fn start(
        listen: SocketAddr,
        my_addr: NodeAddr,
        resolver: Resolver,
    ) -> std::io::Result<(TcpBus, Receiver<Inbound>)> {
        let listener = TcpListener::bind(listen)?;
        let (tx, rx) = sync_channel::<Inbound>(INBOUND_QUEUE);
        let bus = TcpBus {
            inner: Arc::new(BusInner {
                my_addr,
                resolver,
                peers: Mutex::new(HashMap::new()),
                ctrl_conns: Mutex::new(HashMap::new()),
                dropped: Mutex::new(0),
            }),
        };
        let accept_bus = bus.clone();
        thread::Builder::new()
            .name(format!("rbay-accept-{}", my_addr.0))
            .spawn(move || accept_loop(listener, accept_bus, tx))
            .expect("spawn listener thread");
        Ok((bus, rx))
    }

    /// The overlay address this bus answers for.
    pub fn my_addr(&self) -> NodeAddr {
        self.inner.my_addr
    }

    /// Queues an already-encoded frame for `to`, spawning that peer's
    /// writer thread on first use. Drops the frame (and counts it) if the
    /// peer's queue is full or its writer has exited.
    pub fn send_to(&self, to: NodeAddr, frame: Vec<u8>) {
        let mut peers = self.inner.peers.lock().expect("peers lock");
        let tx = peers.entry(to).or_insert_with(|| {
            let (tx, rx) = sync_channel::<Vec<u8>>(OUTBOUND_QUEUE);
            let inner = Arc::clone(&self.inner);
            thread::Builder::new()
                .name(format!("rbay-writer-{}-{}", self.inner.my_addr.0, to.0))
                .spawn(move || writer_loop(inner, to, rx))
                .expect("spawn writer thread");
            tx
        });
        match tx.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.count_drop(),
            Err(TrySendError::Disconnected(_)) => {
                // Writer exited (it never does on send errors, so this is a
                // shutdown race); forget it so a fresh one starts next send.
                peers.remove(&to);
                self.count_drop();
            }
        }
    }

    /// Writes a frame back on a control connection. Errors (including an
    /// unknown/closed connection) are reported, not fatal.
    pub fn send_ctrl(&self, conn: u64, frame: &[u8]) -> std::io::Result<()> {
        let mut conns = self.inner.ctrl_conns.lock().expect("ctrl lock");
        let stream = conns.get_mut(&conn).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "ctrl conn closed")
        })?;
        write_frame(stream, frame)
    }

    /// Frames dropped so far on saturated or broken outbound paths.
    pub fn dropped_frames(&self) -> u64 {
        *self.inner.dropped.lock().expect("dropped lock")
    }

    fn count_drop(&self) {
        *self.inner.dropped.lock().expect("dropped lock") += 1;
    }
}

fn accept_loop(listener: TcpListener, bus: TcpBus, tx: SyncSender<Inbound>) {
    let mut next_ctrl: u64 = 0;
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let conn_id = next_ctrl;
        next_ctrl += 1;
        let tx = tx.clone();
        let bus = bus.clone();
        let name = format!("rbay-reader-{}-{}", bus.inner.my_addr.0, conn_id);
        let _ = thread::Builder::new()
            .name(name)
            .spawn(move || reader_loop(stream, conn_id, bus, tx));
    }
}

fn reader_loop(mut stream: TcpStream, conn_id: u64, bus: TcpBus, tx: SyncSender<Inbound>) {
    // First frame must be a hello; a connection speaking anything else
    // (wrong version, garbage) is dropped on the floor.
    let hello = match read_frame(&mut stream, MAX_FRAME_LEN) {
        Ok(Some(frame)) => match decode_frame::<Hello>(&frame) {
            Ok(h) => h,
            Err(_) => return,
        },
        _ => return,
    };
    match hello {
        Hello::Peer(from) => loop {
            match read_frame(&mut stream, MAX_FRAME_LEN) {
                Ok(Some(frame)) => {
                    // Blocking send: a full inbound queue stalls this
                    // reader, which stalls the peer via TCP flow control.
                    if tx.send(Inbound::Peer { from, frame }).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        },
        Hello::Ctrl => {
            if let Ok(clone) = stream.try_clone() {
                bus.inner
                    .ctrl_conns
                    .lock()
                    .expect("ctrl lock")
                    .insert(conn_id, clone);
            }
            while let Ok(Some(frame)) = read_frame(&mut stream, MAX_FRAME_LEN) {
                if tx
                    .send(Inbound::Ctrl {
                        conn: conn_id,
                        frame,
                    })
                    .is_err()
                {
                    break;
                }
            }
            bus.inner
                .ctrl_conns
                .lock()
                .expect("ctrl lock")
                .remove(&conn_id);
            let _ = tx.send(Inbound::CtrlClosed { conn: conn_id });
        }
    }
}

fn writer_loop(inner: Arc<BusInner>, to: NodeAddr, rx: Receiver<Vec<u8>>) {
    let mut conn: Option<TcpStream> = None;
    let hello = encode_frame(&Hello::Peer(inner.my_addr));
    while let Ok(frame) = rx.recv() {
        // Up to two attempts per frame: reconnect-on-error, then drop.
        let mut sent = false;
        for _ in 0..2 {
            if conn.is_none() {
                conn = connect(&inner, to, &hello);
            }
            let Some(stream) = conn.as_mut() else { break };
            match write_frame(stream, &frame) {
                Ok(()) => {
                    sent = true;
                    break;
                }
                Err(_) => conn = None,
            }
        }
        if !sent {
            *inner.dropped.lock().expect("dropped lock") += 1;
        }
    }
}

fn connect(inner: &BusInner, to: NodeAddr, hello: &[u8]) -> Option<TcpStream> {
    let sock = (inner.resolver)(to)?;
    let mut stream = TcpStream::connect(sock).ok()?;
    let _ = stream.set_nodelay(true);
    write_frame(&mut stream, hello).ok()?;
    let _ = stream.flush();
    Some(stream)
}

/// [`Transport`] over a [`TcpBus`]: encodes messages into frames on the
/// calling (main) thread, and keeps a wall-clock timer wheel the daemon's
/// event loop drains with [`TcpTransport::due_timers`].
pub struct TcpTransport<M> {
    bus: TcpBus,
    epoch: Instant,
    /// Authoritative deadline per token; the heap below may hold stale
    /// duplicates that are skipped on pop (lazy re-arm semantics).
    deadlines: HashMap<TimerToken, SimTime>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, TimerToken)>>,
    _msg: std::marker::PhantomData<fn(M)>,
}

impl<M: Wire> TcpTransport<M> {
    /// Wraps a bus; the transport's clock starts at zero now.
    pub fn new(bus: TcpBus) -> Self {
        TcpTransport {
            bus,
            epoch: Instant::now(),
            deadlines: HashMap::new(),
            heap: std::collections::BinaryHeap::new(),
            _msg: std::marker::PhantomData,
        }
    }

    /// The underlying bus.
    pub fn bus(&self) -> &TcpBus {
        &self.bus
    }

    /// Tokens whose deadline has passed, each delivered once.
    pub fn due_timers(&mut self) -> Vec<TimerToken> {
        let now = self.now();
        let mut due = Vec::new();
        while let Some(std::cmp::Reverse((at, token))) = self.heap.peek().copied() {
            if at > now {
                break;
            }
            self.heap.pop();
            // Only fire if this entry is the token's live deadline.
            if self.deadlines.get(&token) == Some(&at) {
                self.deadlines.remove(&token);
                due.push(token);
            }
        }
        due
    }

    /// The earliest live deadline, if any — lets the event loop sleep
    /// exactly until the next timer.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.deadlines.values().min().copied()
    }
}

impl<M: Wire> Transport<M> for TcpTransport<M> {
    fn send(&mut self, to: NodeAddr, msg: M) {
        self.bus.send_to(to, encode_frame(&msg));
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let at = SimTime::from_micros(self.now().as_micros() + delay.as_micros());
        self.deadlines.insert(token, at);
        self.heap.push(std::cmp::Reverse((at, token)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair(a: u16, b: u16) -> (Resolver, SocketAddr, SocketAddr) {
        let sa: SocketAddr = format!("127.0.0.1:{a}").parse().unwrap();
        let sb: SocketAddr = format!("127.0.0.1:{b}").parse().unwrap();
        let resolver: Resolver = Arc::new(move |addr: NodeAddr| match addr.0 {
            0 => Some(sa),
            1 => Some(sb),
            _ => None,
        });
        (resolver, sa, sb)
    }

    #[test]
    fn frames_flow_between_two_buses() {
        let (resolver, sa, sb) = loopback_pair(39301, 39302);
        let (bus_a, _rx_a) = TcpBus::start(sa, NodeAddr(0), resolver.clone()).unwrap();
        let (_bus_b, rx_b) = TcpBus::start(sb, NodeAddr(1), resolver).unwrap();

        let mut tr: TcpTransport<u64> = TcpTransport::new(bus_a);
        tr.send(NodeAddr(1), 4242);
        match rx_b
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap()
        {
            Inbound::Peer { from, frame } => {
                assert_eq!(from, NodeAddr(0));
                assert_eq!(decode_frame::<u64>(&frame).unwrap(), 4242);
            }
            other => panic!("unexpected inbound: {other:?}"),
        }
    }

    #[test]
    fn ctrl_connections_round_trip_replies() {
        let sa: SocketAddr = "127.0.0.1:39303".parse().unwrap();
        let resolver: Resolver = Arc::new(|_| None);
        let (bus, rx) = TcpBus::start(sa, NodeAddr(0), resolver).unwrap();

        let mut client = TcpStream::connect(sa).unwrap();
        write_frame(&mut client, &encode_frame(&Hello::Ctrl)).unwrap();
        write_frame(&mut client, &encode_frame(&77u64)).unwrap();

        let conn = match rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap() {
            Inbound::Ctrl { conn, frame } => {
                assert_eq!(decode_frame::<u64>(&frame).unwrap(), 77);
                conn
            }
            other => panic!("unexpected inbound: {other:?}"),
        };
        bus.send_ctrl(conn, &encode_frame(&88u64)).unwrap();
        let reply = read_frame(&mut client, MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(decode_frame::<u64>(&reply).unwrap(), 88);
    }

    #[test]
    fn timer_wheel_rearms_and_fires_in_order() {
        let sa: SocketAddr = "127.0.0.1:39304".parse().unwrap();
        let resolver: Resolver = Arc::new(|_| None);
        let (bus, _rx) = TcpBus::start(sa, NodeAddr(0), resolver).unwrap();
        let mut tr: TcpTransport<u64> = TcpTransport::new(bus);

        tr.set_timer(SimDuration::from_micros(0), TimerToken(1));
        tr.set_timer(SimDuration::from_secs(3600), TimerToken(2));
        // Re-arm token 1 far in the future: the old deadline must not fire.
        tr.set_timer(SimDuration::from_secs(3600), TimerToken(1));
        assert!(tr.due_timers().is_empty());

        tr.set_timer(SimDuration::from_micros(0), TimerToken(2));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(tr.due_timers(), vec![TimerToken(2)]);
        assert!(tr.next_deadline().is_some(), "token 1 still pending");
    }
}
